"""E1 / Figure 1 -- the General Scenario, end to end.

Reproduces the paper's only figure as a running system: handheld →
base station → sensor network, with the grid behind the uplink.  All
four query classes are answered in one session against a burning
building; the table reports what the Decision Maker chose and what each
answer cost.  The whole session runs under the SLO engine, so the
flagship scenario closes with a grid health verdict (it must be
HEALTHY: no objective breached, no alert fired).
"""

from repro.workloads import fire_scenario

QUERIES = [
    ("simple", "SELECT value FROM sensors WHERE sensor_id = 24"),
    ("aggregate", "SELECT AVG(value) FROM sensors WHERE room = 5"),
    ("complex", "SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05"),
    ("continuous", "SELECT MAX(value) FROM sensors EPOCH DURATION 10 FOR 30"),
]


def run_scenario():
    runtime = fire_scenario(n_sensors=49, area_m=60.0, seed=7)
    evaluator = runtime.attach_slos(until_s=600.0)
    runtime.sim.run(until=120.0)  # fire develops
    rows = []
    for label, text in QUERIES:
        outcomes = runtime.query(text)
        for o in outcomes:
            rows.append([
                label if o.epoch_index == 0 else f"  epoch{o.epoch_index}",
                o.model,
                o.success,
                o.time_s,
                o.energy_j * 1e3,
                o.rel_error,
            ])
    evaluator.tick()  # close the books before the verdict
    return runtime, evaluator, rows


def test_fig1_general_scenario(benchmark, table, once, record):
    runtime, evaluator, rows = once(benchmark, run_scenario)
    table(
        "E1 / Fig.1: General Scenario -- all four query classes, one session",
        ["query class", "model", "ok", "time (s)", "energy (mJ)", "rel. err"],
        rows,
    )
    # every query class must be answered successfully
    assert all(r[2] for r in rows)
    # the exact-accuracy complex query must have been partitioned off-sensor
    complex_row = next(r for r in rows if r[0] == "complex")
    assert complex_row[1] in ("grid", "centralized", "handheld")
    assert complex_row[5] < 0.05
    # no sensor died answering four queries
    assert runtime.deployment.dead_sensor_count() == 0

    # the SLO engine watched the whole session and found nothing to page
    health = evaluator.health()
    assert health.verdict == "healthy", (health, evaluator.timeline)
    assert not evaluator.timeline
    assert evaluator.monitor.counters().get("slo.evaluations", 0.0) > 0

    # persist the headline metrics into the bench trajectory
    first = {r[0]: r for r in rows}
    for label in ("simple", "aggregate", "complex", "continuous"):
        record("E1", f"time_s[{label}]", first[label][3], unit="s",
               direction="lower", seed=7, n_sensors=49)
        record("E1", f"energy_mj[{label}]", first[label][4], unit="mJ",
               direction="lower", seed=7, n_sensors=49)
