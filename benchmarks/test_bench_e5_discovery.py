"""E5 -- discovery expressiveness: semantic matcher vs syntactic baselines.

"[Jini-era systems] are either tied to a language, or describe services
entirely in syntactic terms ... they return 'exact' matches and can only
handle equality constraints.  This leads to a loss of expressive power."

Protocol: one service population is advertised to all four systems; a
batch of constrained, preference-carrying requests is posed to each.
Ground truth per request: the services whose category is subsumed by the
requested one and whose attributes satisfy every constraint, ranked by
the preferences.  We report recall of the relevant set, precision of
what was returned, and top-1 agreement with the preference-optimal
service.  The ablation row drops the degree lattice (flat fuzzy
scoring).
"""

import numpy as np

from repro.discovery import (
    Constraint,
    Preference,
    ReplicatedRegistry,
    SemanticMatcher,
    ServiceRegistry,
    ServiceRequest,
    build_service_ontology,
)
from repro.discovery.protocols import BluetoothSDP, JiniLookup, SLPDirectory
from repro.workloads import ServicePopulation

N_SERVICES = 120
N_REQUESTS = 40
TOP_K = 10


def build_world(seed=31):
    rng = np.random.default_rng(seed)
    population = [g.description for g in ServicePopulation(rng).generate(N_SERVICES)]
    ontology = build_service_ontology()
    systems = {
        "semantic": ServiceRegistry(SemanticMatcher(ontology)),
        "semantic-flat": ServiceRegistry(SemanticMatcher(ontology, use_degrees=False)),
    }
    jini, sdp, slp = JiniLookup(), BluetoothSDP(), SLPDirectory()
    for d in population:
        for reg in systems.values():
            reg.advertise(d)
        jini.register(d)
        sdp.register(d)
        slp.register(d)
    return ontology, population, systems, jini, sdp, slp, rng


def make_requests(rng):
    """Constrained printer/miner/sensor requests with preferences."""
    requests = []
    categories = ["PrinterService", "ColorPrinterService", "DecisionTreeService",
                  "TemperatureSensorService", "FourierSpectrumService"]
    for _ in range(N_REQUESTS):
        cat = categories[int(rng.integers(len(categories)))]
        constraints = [Constraint("cost_per_use", "<=", float(rng.uniform(0.3, 0.9)))]
        if "Printer" in cat and rng.random() < 0.5:
            constraints.append(Constraint("cost_per_page", "<=", float(rng.uniform(0.1, 0.4))))
        requests.append(ServiceRequest(
            category=cat,
            constraints=tuple(constraints),
            preferences=(Preference("queue_length", "minimize"),),
        ))
    return requests


def ground_truth(ontology, population, request):
    """Relevant services (subsumption + constraints), preference-ranked."""
    relevant = []
    for d in population:
        if not ontology.has_class(d.category):
            continue
        if not ontology.subsumes(request.category, d.category):
            continue
        if any(not c.satisfied_by(d.attributes) for c in request.constraints):
            continue
        relevant.append(d)
    relevant.sort(key=lambda d: (d.attributes.get("queue_length", 99), d.name))
    return relevant


def evaluate(returned_names, truth):
    truth_names = [d.name for d in truth]
    truth_set = set(truth_names)
    if not truth_set:
        return None
    returned = returned_names[:TOP_K]
    hit = len([n for n in returned if n in truth_set])
    recall = hit / min(len(truth_set), TOP_K)
    precision = hit / len(returned) if returned else 0.0
    top1 = 1.0 if returned and returned[0] == truth_names[0] else 0.0
    return recall, precision, top1


def run_experiment():
    ontology, population, systems, jini, sdp, slp, rng = build_world()
    requests = make_requests(rng)
    scores = {name: [] for name in
              ["semantic", "semantic-flat", "jini", "sdp", "slp"]}
    for req in requests:
        truth = ground_truth(ontology, population, req)
        for name, reg in systems.items():
            res = evaluate([m.service.name for m in reg.search(req, top_k=TOP_K)], truth)
            if res:
                scores[name].append(res)
        # Jini: exact interface string; no constraints expressible
        res = evaluate([s.name for s in jini.lookup(req.category)], truth)
        if res:
            scores["jini"].append(res)
        # SDP: the class UUID of the exact category; nothing else
        res = evaluate(
            [s.name for s in sdp.lookup(ServicePopulation.class_uuid(req.category))], truth
        )
        if res:
            scores["sdp"].append(res)
        # SLP: exact type + whatever constraints are pure equalities (none here)
        res = evaluate([s.name for s in slp.lookup(req.category)], truth)
        if res:
            scores["slp"].append(res)
    return scores


def test_e5_discovery_quality(benchmark, table, once):
    scores = once(benchmark, run_experiment)
    rows = []
    summary = {}
    for name, triples in scores.items():
        arr = np.array(triples)
        recall, precision, top1 = arr.mean(axis=0)
        summary[name] = (recall, precision, top1)
        rows.append([name, recall, precision, top1, len(triples)])
    table(
        f"E5: discovery quality over {N_REQUESTS} constrained requests (top-{TOP_K})",
        ["system", "recall", "precision", "top-1", "requests"],
        rows,
        fmt="{:>16}",
    )

    # the paper's expressiveness claim, quantified
    assert summary["semantic"][0] > summary["jini"][0]       # recall
    assert summary["semantic"][1] > summary["jini"][1]       # precision
    assert summary["semantic"][2] > summary["jini"][2]       # ranking
    assert summary["semantic"][0] > summary["sdp"][0]
    assert summary["semantic"][2] > summary["slp"][2]
    # semantic ranking must be excellent in absolute terms
    assert summary["semantic"][0] > 0.9
    assert summary["semantic"][2] > 0.8
    # ablation: dropping the degree lattice must not help
    assert summary["semantic"][2] >= summary["semantic-flat"][2]


# ----------------------------------------------------------------------
# E5 extension: the sharded, replicated registry answers identically
# ----------------------------------------------------------------------
SHARD_CONFIGS = [(1, 1), (2, 2), (4, 2), (8, 3)]


def run_replicated_equivalence():
    """Every (n_shards, R) config must return byte-identical ranked
    results to the unsharded registry -- including with any single
    replica down when R >= 2."""
    rng = np.random.default_rng(31)
    from repro.workloads import ServicePopulation

    population = [g.description for g in ServicePopulation(rng).generate(N_SERVICES)]
    ontology = build_service_ontology()
    matcher = SemanticMatcher(ontology)
    plain = ServiceRegistry(matcher)
    for d in population:
        plain.advertise(d)
    requests = make_requests(rng)
    reference = [
        [(m.service.name, m.degree, round(m.score, 12))
         for m in plain.search(req, top_k=TOP_K)]
        for req in requests
    ]

    rows = []
    for n_shards, replication in SHARD_CONFIGS:
        rep = ReplicatedRegistry(matcher, n_shards, replication)
        for d in population:
            rep.advertise(d)
        answers = [
            [(m.service.name, m.degree, round(m.score, 12))
             for m in rep.search(req, top_k=TOP_K)]
            for req in requests
        ]
        identical = answers == reference
        degraded_identical = True
        if replication >= 2:
            for shard in range(n_shards):
                rep.mark_down(shard)
                degraded = [
                    [(m.service.name, m.degree, round(m.score, 12))
                     for m in rep.search(req, top_k=TOP_K)]
                    for req in requests
                ]
                degraded_identical = degraded_identical and degraded == reference
                rep.mark_up(shard)
        rows.append([f"{n_shards}x{replication}", len(rep), identical,
                     degraded_identical if replication >= 2 else "n/a"])
    return rows


def test_e5_replicated_lookup_equivalence(benchmark, table, once):
    rows = once(benchmark, run_replicated_equivalence)
    table(
        f"E5 (replicated): lookup equivalence over {N_REQUESTS} requests",
        ["shards x R", "services", "identical", "1-replica-down identical"],
        rows,
        fmt="{:>26}",
    )
    for row in rows:
        assert row[2] is True, f"config {row[0]} diverged from the unsharded registry"
        assert row[3] in (True, "n/a"), f"config {row[0]} lost answers with a replica down"
