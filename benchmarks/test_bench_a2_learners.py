"""Ablation A2 -- which "standard machine learning technique"?

The paper prescribes "standard machine learning techniques ... on the
data" without choosing one.  This ablation runs the E4 protocol with the
Decision Maker's two learners (kNN, CART regression tree) and with
feedback disabled (estimate-greedy), all on identical workloads.
Expected shape: both learners converge to estimate-greedy-or-better late
costs; neither collapses; disabling feedback loses nothing *only*
because the analytic estimates here are well calibrated -- the learners'
value shows in their late-phase parity despite starting from exploration.
"""

import numpy as np

from repro.core import (
    EstimateGreedyPolicy,
    KNNRegressor,
    LearnedPolicy,
    PervasiveGridRuntime,
    RegressionTree,
    default_objective,
)
from repro.network.radio import RadioModel
from repro.workloads import QueryWorkload

N_QUERIES = 45
SEED = 33


def make_runtime(policy):
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01,
                       loss_prob=0.03, range_m=16.0)
    return PervasiveGridRuntime(n_sensors=49, area_m=60.0, seed=SEED,
                                policy=policy, radio=radio, grid_resolution=24)


def run_policy(policy):
    texts = [
        QueryWorkload(np.random.default_rng(88), n_sensors=49,
                      mix=(0.3, 0.5, 0.2, 0.0), cost_prob=0.0).next_text()
        for _ in range(N_QUERIES)
    ]
    runtime = make_runtime(policy)
    costs = []
    for text in texts:
        out = runtime.query(text)[0]
        costs.append(default_objective(out.energy_j, out.time_s) if out.success else 1e3)
        runtime.sim.run(until=runtime.sim.now + 10.0)
    return costs


def run_experiment():
    policies = {
        "estimate-greedy (no learning)": EstimateGreedyPolicy(),
        "learned: kNN": LearnedPolicy(learner_factory=lambda: KNNRegressor(k=5),
                                      rng=np.random.default_rng(2),
                                      epsilon=0.3, epsilon_decay=0.93),
        "learned: regression tree": LearnedPolicy(
            learner_factory=lambda: RegressionTree(refit_every=4),
            rng=np.random.default_rng(2), epsilon=0.3, epsilon_decay=0.93),
    }
    return {name: run_policy(p) for name, p in policies.items()}


def test_a2_learner_ablation(benchmark, table, once):
    results = once(benchmark, run_experiment)
    rows = []
    third = N_QUERIES // 3
    for name, costs in results.items():
        rows.append([name, sum(costs),
                     float(np.mean(costs[:third])), float(np.mean(costs[-third:]))])
    table(
        f"A2: learner choice for the Decision Maker ({N_QUERIES} queries)",
        ["policy", "total cost", "early mean", "late mean"],
        rows,
        fmt="{:>30}",
    )

    greedy_late = np.mean(results["estimate-greedy (no learning)"][-third:])
    for name in ("learned: kNN", "learned: regression tree"):
        costs = results[name]
        late = np.mean(costs[-third:])
        # each learner converges: late phase no worse than 10% above greedy
        assert late <= greedy_late * 1.10
        # and improves over its own exploration phase
        assert late <= np.mean(costs[:third]) * 1.05
