"""E12 -- the stream-mining composite task, end to end.

§3's worked example: "generating decision trees, computing their Fourier
spectra, choosing the dominant components, and combining them to create
a single tree."  The point of the technique (Kargupta & Park [17]) is
that mobile devices ship a handful of Fourier coefficients instead of
raw data or whole models.

Protocol: a labelled stream is partitioned across k "devices"; each
learns a tree; the spectra are averaged, truncated to a coefficient
budget and reconstructed into one model.  We report accuracy vs a
single-partition tree, the majority-vote ensemble, and a tree trained
centrally on ALL data (the upper bound that would require shipping
everything), plus the wire cost of each option.  The composite task also
runs through the full composition machinery to time it.
"""

import numpy as np

from repro.datamining import (
    DecisionTree,
    LabeledStream,
    MajorityVote,
    accuracy,
    combine_via_fourier,
    partition_stream,
)

D = 10
K_PARTITIONS = 4
N_TRAIN = 1200
N_TEST = 1000
COEFF_BUDGETS = (8, 16, 32, 64, 128)
RAW_BITS_PER_EXAMPLE = (D + 1) * 8.0


def run_experiment(seed=3):
    stream = LabeledStream(D, np.random.default_rng(seed), noise=0.05)
    X, y = stream.batch(N_TRAIN)
    X_test, y_test = stream.batch(N_TEST)
    parts = partition_stream(X, y, K_PARTITIONS)
    trees = [DecisionTree(max_depth=5).fit(Xp, yp) for Xp, yp in parts]
    predictors = [t.predict for t in trees]

    single = accuracy(trees[0].predict, X_test, y_test)
    vote = accuracy(MajorityVote(predictors).predict, X_test, y_test)
    central = accuracy(DecisionTree(max_depth=5).fit(X, y).predict, X_test, y_test)

    combined = {}
    for k in COEFF_BUDGETS:
        fn = combine_via_fourier(predictors, D, k_coefficients=k)
        combined[k] = (accuracy(fn.predict, X_test, y_test), fn.size_bits())

    raw_bits = N_TRAIN * RAW_BITS_PER_EXAMPLE
    return single, vote, central, combined, raw_bits


def test_e12_stream_mining(benchmark, table, once):
    single, vote, central, combined, raw_bits = once(benchmark, run_experiment)
    rows = [
        ["single-partition tree", single, float("nan")],
        ["majority vote (k models)", vote, float("nan")],
        ["centralized tree (all data)", central, raw_bits],
    ]
    for k in COEFF_BUDGETS:
        acc, bits = combined[k]
        rows.append([f"fourier-combined ({k} coeffs)", acc, bits])
    table(
        f"E12: stream mining over {K_PARTITIONS} partitions, d={D} features",
        ["method", "accuracy", "bits shipped"],
        rows,
        fmt="{:>30}",
    )

    best_acc, best_bits = combined[max(COEFF_BUDGETS)]
    # combining beats any single partition's model
    assert best_acc > single
    # and approaches the majority vote it approximates
    assert best_acc >= vote - 0.02
    # at a tiny fraction of the centralized option's wire cost
    assert best_bits < raw_bits / 10
    # accuracy grows (weakly) with the coefficient budget
    accs = [combined[k][0] for k in COEFF_BUDGETS]
    assert accs[-1] >= accs[0]
    # even 16 coefficients already beat the single-partition model
    assert combined[16][0] > single - 0.05
