"""E6 -- composite-service availability under churn.

"Services may be coming up and going down frequently in those
environments ... The composition platform should degrade gracefully as
more and more services become unavailable."

Protocol: redundant providers for the stream-mining pipeline live on
hosts subject to exponential on/off churn.  A host going down takes its
agent off the platform and withdraws its advertisements (the registry
integration); coming back re-registers both.  A sequence of compositions
runs at each availability level, for both coordination modes.  Expected
shape: success degrades *gracefully* (no cliff at high availability),
retries/rebinds absorb much of the churn, and the centralized manager's
precise failure attribution gives it an edge at low availability.
"""

import numpy as np

from repro.agents import AgentPlatform
from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ServiceProviderAgent,
    build_pervasive_domain,
)
from repro.discovery import SemanticMatcher, ServiceDescription, ServiceRegistry, build_service_ontology
from repro.network import Topology
from repro.network.churn import ChurnProcess
from repro.simkernel import RandomStreams, Simulator

N_COMPOSITIONS = 30
MEAN_UP_S = 120.0
GAP_S = 60.0

PROVIDER_SPEC = [
    ("DecisionTreeService", 3),
    ("FourierSpectrumService", 3),
    ("EnsembleCombinerService", 2),
]


class ChurnWorld:
    """Platform + registry + churned provider hosts."""

    def __init__(self, mode: str, availability: float, seed: int = 0):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        self.manager = CompositionManager(
            "mgr", self.sim, Binder(self.registry), mode=mode,
            timeout_s=120.0, max_retries=3,
        )
        self.platform.register(self.manager)
        self.planner = HTNPlanner(build_pervasive_domain())

        self.providers = []
        n_hosts = sum(n for _, n in PROVIDER_SPEC)
        topo = Topology(np.zeros((n_hosts, 2)), range_m=1.0)
        host = 0
        for category, count in PROVIDER_SPEC:
            for i in range(count):
                name = f"{category.lower()}-{i}"
                desc = ServiceDescription(name=f"svc-{name}", category=category,
                                          host_node=host, ops=3e9)
                agent = ServiceProviderAgent(name, desc, self.sim)
                self.platform.register(agent)
                self.registry.advertise(desc)
                self.providers.append((host, name, desc, agent))
                host += 1

        mean_down = MEAN_UP_S * (1.0 - availability) / availability
        self.churn = ChurnProcess(
            self.sim, topo, nodes=list(range(n_hosts)),
            rng=self.streams.get("churn"),
            mean_up_s=MEAN_UP_S, mean_down_s=mean_down,
            on_change=self._on_change,
        )
        self.churn.start()

    def _on_change(self, host: int, up: bool) -> None:
        host_idx, name, desc, agent = self.providers[host]
        if up:
            if not self.platform.is_registered(name):
                self.platform.register(agent)
            self.registry.advertise(desc)
        else:
            if self.platform.is_registered(name):
                self.platform.unregister(name)
            self.registry.withdraw_host(host)

    def run(self):
        results = []
        graph_params = {"n_partitions": 2}
        for i in range(N_COMPOSITIONS):
            graph = self.planner.plan("analyze-stream", graph_params)
            got = []
            self.manager.execute(graph, got.append)
            # drive until this composition resolves
            while not got:
                if not self.sim.step():
                    break
            if got:
                results.append(got[0])
            self.sim.run(until=self.sim.now + GAP_S)
        return results


def run_sweep():
    rows = {}
    for mode in ("centralized", "distributed"):
        for availability in (0.95, 0.8, 0.6, 0.4):
            world = ChurnWorld(mode, availability, seed=17)
            results = world.run()
            ok = [r for r in results if r.success]
            rows[(mode, availability)] = {
                "success": len(ok) / len(results) if results else 0.0,
                "mean_attempts": float(np.mean([r.attempts for r in results])),
                "mean_rebinds": float(np.mean([r.rebinds for r in results])),
                "mean_latency": float(np.mean([r.latency_s for r in ok])) if ok else float("nan"),
            }
    return rows


def test_e6_composition_under_churn(benchmark, table, once):
    rows = once(benchmark, run_sweep)
    out = []
    for (mode, availability), stats in sorted(rows.items()):
        out.append([mode, availability, stats["success"], stats["mean_attempts"],
                    stats["mean_rebinds"], stats["mean_latency"]])
    table(
        f"E6: composite-service success vs host availability ({N_COMPOSITIONS} runs each)",
        ["mode", "availability", "success", "attempts", "rebinds", "latency (s)"],
        out,
        fmt="{:>14}",
    )

    for mode in ("centralized", "distributed"):
        series = [rows[(mode, a)]["success"] for a in (0.95, 0.8, 0.6, 0.4)]
        # high availability: nearly everything completes
        assert series[0] >= 0.9
        # graceful degradation: success declines but never collapses to 0
        # at 60% availability with 3x redundancy and retries
        assert series[2] > 0.4
        # monotone-ish decline (allow one inversion from retry luck)
        inversions = sum(1 for a, b in zip(series, series[1:]) if b > a + 0.1)
        assert inversions <= 1
    # retries work harder as availability drops
    assert rows[("centralized", 0.4)]["mean_attempts"] > rows[("centralized", 0.95)]["mean_attempts"]
