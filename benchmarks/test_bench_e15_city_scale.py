"""E15 -- city-scale workload management (10^5 queries, mixed priorities).

The paper's pervasive grid serves "millions of users" walking around a
city with handheld devices.  This experiment drives the workload layer
at city scale: four independent districts (trial worlds), each with 500
heterogeneous grid sites and 250 simulated handheld users, submit
25,000 queries apiece -- 100,000 end to end -- through the
:class:`~repro.wms.service.WorkloadManager`'s central task queue and
pilot fleet.  Each district runs two phases:

* **burst**: every priority class floods 2,000 queries at t=0.  While
  all three classes are still backlogged, a probe snapshots per-class
  drained work; the Jain index over weight-normalized shares
  (``drained_c / weight_c``) measures how faithfully the fair-share
  drain tracks the 6/3/1 weights (1.0 = perfect).
* **steady**: the remaining 19,000 queries arrive in base-station
  batches at ~70% of fleet capacity, then the district drains.

Headline metrics: sustained queries per simulated second, queue-latency
p50/p95/p99 read from the bounded-telemetry sketch of
``wms.queue_latency`` (the merged monitor, so percentiles cover all
10^5 queries), and the mean Jain fairness index.  Everything except the
wall-clock row (keyed by worker count) is bit-identical at any
``--workers N`` -- the queue service consults no RNG, the per-world ops
draws are seeded, and the monitor merge is seed-ordered -- so E15
extends the CI determinism gate.
"""

import numpy as np

from repro.grid.resource import GridResource
from repro.observability.sketch import TelemetryConfig
from repro.parallel import TrialResult, cell_specs, run_trials
from repro.simkernel import Monitor, Simulator
from repro.wms import DEFAULT_CLASSES, Task, WorkloadManager

N_WORLDS = 4
N_SITES = 500           # per world: 2,000 sites city-wide
N_HANDHELDS = 250       # per world: 1,000 users city-wide
BURST_PER_CLASS = 2000  # phase A: 6,000 queries per world
STEADY_BATCHES = 200    # phase B: 200 batches x 95 = 19,000 per world
STEADY_BATCH = 95
STEADY_START_S = 5.0
STEADY_EVERY_S = 0.05
PROBE_AT_S = 0.6        # all three classes still backlogged here
QUERIES_PER_WORLD = 3 * BURST_PER_CLASS + STEADY_BATCHES * STEADY_BATCH
SEED = 15

#: City-scale telemetry must stay bounded: small raw tails, sketch tail.
TELEMETRY = TelemetryConfig(histogram_max_raw=256, series_max_raw=256)


def _sites(sim):
    # heterogeneous fleet: rates 1e6..1e7 ops/s, deterministic layout
    return [GridResource(sim, f"site{i}", 1e6 * (1 + i % 10))
            for i in range(N_SITES)]


def _ops(rng):
    # per-query grid work: uniform around 1e6 ops (mean service ~0.2 s
    # on a mid-fleet site)
    return float(rng.uniform(5e5, 1.5e6))


def jain_index(shares):
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), 1.0 = equal."""
    x = np.asarray(list(shares), dtype=float)
    if not len(x) or not x.any():
        return 0.0
    return float(x.sum() ** 2 / (len(x) * (x * x).sum()))


def run_district(spec):
    """One city district: 500 sites, 250 users, 25,000 queries."""
    rng = np.random.default_rng(spec.seed)
    sim = Simulator()
    monitor = Monitor()
    monitor.configure(TELEMETRY)
    wm = WorkloadManager(sim, _sites(sim), monitor=monitor)
    class_names = [c.name for c in DEFAULT_CLASSES]

    def handheld(i):
        return f"handheld{i % N_HANDHELDS}"

    # -- phase A: the burst, one flood per priority class --------------
    burst = [Task(ops=_ops(rng), priority_class=name, owner=handheld(i))
             for name in class_names for i in range(BURST_PER_CLASS)]
    wm.submit_bulk(burst)

    probe = {}

    def take_probe():
        stats = wm.queue.class_stats()
        assert all(s["waiting"] > 0 for s in stats.values()), (
            "fairness probe must land while every class is backlogged")
        probe.update({name: s["ops_completed"] / s["weight"]
                      for name, s in stats.items()})

    sim.schedule(PROBE_AT_S, take_probe, label="e15.probe")

    # -- phase B: steady base-station batches at ~70% of capacity ------
    def flush_batch(k):
        wm.submit_bulk([
            Task(ops=_ops(rng), priority_class=class_names[i % 3],
                 owner=handheld(k * STEADY_BATCH + i))
            for i in range(STEADY_BATCH)
        ])
        if k + 1 < STEADY_BATCHES:
            sim.schedule(STEADY_EVERY_S, lambda: flush_batch(k + 1),
                         label="e15.batch")

    sim.schedule(STEADY_START_S, lambda: flush_batch(0), label="e15.batch")
    sim.run()

    stats = wm.stats()
    completed = sum(s["completed"] for s in stats["classes"].values())
    return TrialResult(
        monitor=monitor,
        metrics={
            "completed": completed,
            "failed": sum(s["failed"] for s in stats["classes"].values()),
            "jain": jain_index(probe.values()),
            "sim_time_s": sim.now,
            "starved": monitor.counters().get("wms.tasks_starved", 0.0),
        },
        sim_time_s=sim.now,
    )


def run_sweep(workers: int = 1):
    specs = cell_specs([{"district": d} for d in range(N_WORLDS)], seed=SEED)
    sweep = run_trials(run_district, specs, workers=workers)
    cells = {o.spec.params["district"]: o.metrics for o in sweep.outcomes}
    return cells, sweep


def test_e15_city_scale(benchmark, table, once, record, workers):
    cells, sweep = once(benchmark, lambda: run_sweep(workers))

    table(
        "E15: city-scale WMS, 4 districts x 25,000 queries",
        ["district", "completed", "failed", "jain", "sim s"],
        [[d, int(c["completed"]), int(c["failed"]), c["jain"], c["sim_time_s"]]
         for d, c in sorted(cells.items())],
    )

    total = sum(c["completed"] for c in cells.values())
    assert total == N_WORLDS * QUERIES_PER_WORLD == 100_000, (
        "E15 must run 10^5 queries end to end")
    assert all(c["failed"] == 0 for c in cells.values())
    assert all(c["starved"] == 0.0 for c in cells.values()), (
        "fair share must prevent starvation episodes")

    # fairness: the weighted drain tracks the 6/3/1 weights closely
    jains = [cells[d]["jain"] for d in sorted(cells)]
    mean_jain = sum(jains) / len(jains)
    assert mean_jain > 0.95, f"fair-share drain drifted: Jain {mean_jain:.3f}"

    # latency percentiles over all 10^5 queries, via the merged sketch
    latency = sweep.monitor.histogram("wms.queue_latency")
    p50, p95, p99 = (latency.percentile(q) for q in (50, 95, 99))
    assert 0.0 <= p50 <= p95 <= p99
    assert p99 < 10.0, f"burst backlog must drain: p99 {p99:.2f}s"

    sim_s = sum(c["sim_time_s"] for c in cells.values())
    qps = total / sim_s
    assert qps > 100.0

    record("E15", "queries_completed", float(total), unit="1",
           direction="higher", seed=SEED, n_sites=N_WORLDS * N_SITES)
    record("E15", "sustained_qps", qps, unit="1/s", direction="higher",
           seed=SEED, n_sites=N_WORLDS * N_SITES)
    for name, value in (("queue_latency_p50", p50),
                        ("queue_latency_p95", p95),
                        ("queue_latency_p99", p99)):
        record("E15", name, value, unit="s", direction="lower", seed=SEED,
               n_sites=N_WORLDS * N_SITES)
    record("E15", "jain_fairness", mean_jain, unit="1", direction="higher",
           seed=SEED, n_classes=len(DEFAULT_CLASSES))

    # wall-clock facts are keyed by worker count so determinism gates
    # never compare them across serial/parallel runs
    record("E15", "wall_clock_per_sim_second", sweep.trial_wall_s / sim_s,
           unit="s/s", direction="either", workers=sweep.workers)
