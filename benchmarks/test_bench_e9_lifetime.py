"""E9 -- network lifetime under continuous queries.

"In sensor networks, preserving the energy of the sensors is of prime
importance." + the EPOCH clause: continuous queries run for hours; the
execution model determines how long the network survives.

Protocol: tiny batteries, a continuous AVG query with a 10 s epoch, run
until the network dies, per execution model.  We report epochs completed
before the first sensor death and before half the sensors die (the two
standard lifetime definitions).  Expected shape: in-network aggregation
(tree) lasts a multiple of raw shipping (centralized/grid); clustering
sits between (head duty rotates, spreading the drain).
"""

from repro.core import PervasiveGridRuntime, StaticPolicy

MODELS = ("centralized", "tree", "cluster", "region")
BATTERY_J = 0.02
QUERY = "SELECT AVG(value) FROM sensors EPOCH DURATION 10 FOR 20000"


def run_until_death(model_name: str):
    runtime = PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, seed=19, policy=StaticPolicy(model_name),
        battery_j=BATTERY_J, grid_resolution=16,
    )
    dep = runtime.deployment
    epochs_done = 0
    first_death_epoch = None
    half_death_epoch = None

    def on_epoch(outcome):
        nonlocal epochs_done, first_death_epoch, half_death_epoch
        if outcome.success and outcome.model == model_name:
            epochs_done += 1
        dead = dep.dead_sensor_count()
        if dead >= 1 and first_death_epoch is None:
            first_death_epoch = epochs_done
        if dead >= dep.n_sensors // 2 and half_death_epoch is None:
            half_death_epoch = epochs_done

    done = []
    runtime.submit(QUERY, done.append, on_epoch=on_epoch)
    while not done and half_death_epoch is None:
        if not runtime.sim.step():
            break
    return {
        "epochs": epochs_done,
        "first_death": first_death_epoch,
        "half_death": half_death_epoch,
        "mean_residual": dep.min_sensor_fraction_remaining(),
    }


def run_sweep():
    return {name: run_until_death(name) for name in MODELS}


def test_e9_network_lifetime(benchmark, table, once):
    stats = once(benchmark, run_sweep)
    rows = []
    for name in MODELS:
        s = stats[name]
        rows.append([
            name,
            s["epochs"],
            s["first_death"] if s["first_death"] is not None else ">cap",
            s["half_death"] if s["half_death"] is not None else ">cap",
        ])
    table(
        f"E9: continuous AVG query, {BATTERY_J*1e3:.0f} mJ batteries -- lifetime in epochs",
        ["model", "epochs run", "first death", "half dead"],
        rows,
        fmt="{:>14}",
    )

    first = {name: (stats[name]["first_death"] or 10**9) for name in MODELS}
    epochs = {name: stats[name]["epochs"] for name in MODELS}
    # the TAG claim: in-network aggregation lengthens network lifetime.
    # "epochs run" counts epochs answered before the network could no
    # longer serve the query -- the useful-lifetime metric.
    assert first["tree"] > 2 * first["centralized"]
    assert epochs["tree"] > 3 * epochs["centralized"]
    # every in-network variant beats raw shipping
    assert epochs["cluster"] > epochs["centralized"]
    assert epochs["region"] > epochs["centralized"]
    assert first["cluster"] > first["centralized"]
