"""E13 -- end-to-end fault tolerance of the composition platform.

"Detection of faults and modification of execution paths are integral
parts of such a system ... the grid middleware should hide these
failures from the application."

Protocol: the stream-mining composition pipeline runs against three
scripted fault schedules (random crash storms, rolling regional
blackouts, and flapping hosts) at three resilience levels:

* ``none``     -- single-shot discovery, no execution retries,
                  no circuit breakers;
* ``retries``  -- manager retry/rebind plus discovery retry with
                  exponential backoff;
* ``full``     -- retries plus per-provider circuit breakers and a
                  hedged discovery wave.

Expected shape: resilience-on strictly dominates resilience-off on
completion rate for every schedule, breakers earn their keep under
flapping (they steer rebinds away from recently-bad hosts), and the
whole table is a pure function of the seed.

The nine (schedule x level) cells are independent worlds, sharded
through :class:`repro.parallel.TrialRunner` (``--workers N``); the
merged table and monitor are bit-identical at any worker count.
"""

import numpy as np

from repro.agents import AgentPlatform
from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ReactiveComposer,
    ServiceProviderAgent,
    build_pervasive_domain,
)
from repro.discovery import (
    BrokerAgent,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.faults import (
    FaultDomain,
    FaultInjector,
    NodeCrash,
    RegionBlackout,
    crash_schedule,
    flapping_schedule,
)
from repro.network import Topology
from repro.observability import QueryCostLedger, Trace, Tracer, record_from_dict
from repro.observability.profiling import HookProfiler
from repro.parallel import TrialResult, cell_specs, run_trials
from repro.resilience import BreakerBoard, Hedge, RetryPolicy
from repro.simkernel import Monitor, RandomStreams, Simulator

N_COMPOSITIONS = 25
GAP_S = 40.0
HORIZON_S = N_COMPOSITIONS * GAP_S
SEED = 11

# one geographic cluster per service category so a regional blackout
# takes out a whole redundancy group at once
PROVIDER_SPEC = [
    ("DecisionTreeService", 3, (0.0, 0.0)),
    ("FourierSpectrumService", 3, (100.0, 0.0)),
    ("EnsembleCombinerService", 2, (200.0, 0.0)),
]

LEVELS = ("none", "retries", "full")
SCHEDULES = ("crash-storm", "blackout", "flapping")


class FaultWorld:
    """Composition platform whose provider hosts obey a fault schedule."""

    def __init__(self, schedule: str, level: str, seed: int = SEED,
                 trace: bool = False, profile: bool = False):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        self.monitor = Monitor()
        # observability is additive: tracing/profiling never perturb the
        # deterministic metrics (the replay assertion below runs untraced)
        self.tracer = Tracer(self.sim) if trace else None
        self.sim.tracer = self.tracer
        self.profiler = HookProfiler() if profile else None
        self.sim.profiler = self.profiler

        retries = 0 if level == "none" else 3
        self.breakers = (
            BreakerBoard(self.sim, self.monitor,
                         failure_threshold=1, recovery_timeout_s=90.0)
            if level == "full" else None
        )
        self.manager = CompositionManager(
            "mgr", self.sim, Binder(self.registry), mode="centralized",
            timeout_s=30.0, max_retries=retries, breakers=self.breakers,
            monitor=self.monitor, tracer=self.tracer,
        )
        self.platform.register(self.manager)
        self.platform.register(BrokerAgent("broker", self.registry))

        retry = (
            RetryPolicy(max_attempts=5, base_delay_s=5.0, max_delay_s=30.0)
            if level != "none" else None
        )
        hedge = Hedge(delay_s=5.0, max_hedges=1) if level == "full" else None
        self.composer = ReactiveComposer(
            "composer", HTNPlanner(build_pervasive_domain()), self.manager,
            "broker", discovery_timeout_s=10.0,
            retry=retry, hedge=hedge, rng=self.streams.get("discovery-retry"),
        )
        self.platform.register(self.composer)

        # provider hosts, clustered per category
        self.providers = []
        positions = []
        jitter = self.streams.get("placement")
        host = 0
        for category, count, center in PROVIDER_SPEC:
            for i in range(count):
                name = f"{category.lower()}-{i}"
                desc = ServiceDescription(name=f"svc-{name}", category=category,
                                          provider=name, host_node=host, ops=5e8)
                agent = ServiceProviderAgent(name, desc, self.sim)
                self.platform.register(agent)
                self.registry.advertise(desc)
                self.providers.append((name, desc, agent))
                positions.append(np.asarray(center) + jitter.uniform(-5.0, 5.0, 2))
                host += 1
        self.topology = Topology(np.stack(positions), range_m=1.0)

        domain = FaultDomain(sim=self.sim, monitor=self.monitor,
                             topology=self.topology,
                             on_node_change=self._on_node_change)
        self.injector = FaultInjector(domain)
        self.injector.schedule_all(self._build_schedule(schedule))

    def _on_node_change(self, node: int, up: bool) -> None:
        name, desc, agent = self.providers[node]
        if up:
            if not self.platform.is_registered(name):
                self.platform.register(agent)
            self.registry.advertise(desc)
        else:
            if self.platform.is_registered(name):
                self.platform.unregister(name)
            self.registry.withdraw_host(node)

    def _build_schedule(self, schedule: str):
        if schedule == "crash-storm":
            rng = self.streams.get("fault-schedule")
            return crash_schedule(rng, nodes=range(len(self.providers)),
                                  horizon_s=HORIZON_S, rate_per_s=0.06,
                                  mean_downtime_s=25.0)
        if schedule == "blackout":
            # each 45 s blackout eclipses one composition start, rotating
            # through the category clusters
            centers = [center for _, _, center in PROVIDER_SPEC]
            return [
                RegionBlackout(center=centers[i % len(centers)], radius_m=20.0,
                               at_s=t, duration_s=45.0)
                for i, t in enumerate(np.arange(60.0, HORIZON_S, 160.0))
            ]
        if schedule == "flapping":
            # the first host of every category flaps with a 30 s period,
            # deliberately coprime-ish with the 40 s composition cadence so
            # the phase sweeps across the whole cycle
            faults = []
            host = 0
            for _, count, _ in PROVIDER_SPEC:
                faults.extend(flapping_schedule(node=host, horizon_s=HORIZON_S,
                                                up_s=17.0, down_s=13.0,
                                                start_s=host * 3.7))
                host += count
            return faults
        raise ValueError(f"unknown schedule {schedule!r}")

    def run(self):
        results = []
        for i in range(N_COMPOSITIONS):
            got = []
            self.composer.compose("analyze-stream", got.append,
                                  {"n_partitions": 2})
            started = self.sim.now
            while not got:
                if not self.sim.step():
                    break
            if got:
                results.append((got[0], self.sim.now - started))
            self.sim.run(until=(i + 1) * GAP_S)
        return results


def run_trial(spec):
    """One (schedule, level) world; runs in a worker process."""
    world = FaultWorld(spec.params["schedule"], spec.params["level"],
                       seed=spec.seed, trace=spec.trace, profile=spec.profile)
    results = world.run()
    ok = [latency for r, latency in results if r.success]
    metrics = {
        "completion": len(ok) / len(results) if results else 0.0,
        "p50_s": float(np.percentile(ok, 50)) if ok else float("nan"),
        "p95_s": float(np.percentile(ok, 95)) if ok else float("nan"),
        "rebinds": float(np.mean([r.rebinds for r, _ in results])),
        "faults": world.monitor.counters().get("faults.injected", 0.0),
    }
    return TrialResult(monitor=world.monitor, metrics=metrics,
                       sim_time_s=world.sim.now,
                       trace=world.tracer, profile=world.profiler)


def run_cell(schedule: str, level: str, seed: int = SEED):
    from repro.parallel import TrialSpec

    return run_trial(TrialSpec(index=0, seed=seed,
                               params={"schedule": schedule, "level": level})).metrics


def run_sweep(workers: int = 1):
    specs = cell_specs(
        [{"schedule": schedule, "level": level}
         for schedule in SCHEDULES for level in LEVELS],
        seed=SEED, trace=True, profile=True,
    )
    sweep = run_trials(run_trial, specs, workers=workers)
    rows = {
        (o.spec.params["schedule"], o.spec.params["level"]): o.metrics
        for o in sweep.outcomes
    }
    return rows, sweep


def test_e13_fault_tolerance(benchmark, table, once, record, workers):
    rows, sweep = once(benchmark, lambda: run_sweep(workers))
    out = []
    for schedule in SCHEDULES:
        for level in LEVELS:
            s = rows[(schedule, level)]
            out.append([schedule, level, s["completion"], s["p50_s"],
                        s["p95_s"], s["rebinds"], s["faults"]])
    table(
        f"E13: composition completion under scripted faults ({N_COMPOSITIONS} runs/cell)",
        ["schedule", "resilience", "completion", "p50 (s)", "p95 (s)",
         "rebinds", "faults"],
        out,
        fmt="{:>13}",
    )

    for schedule in SCHEDULES:
        none, retries, full = (rows[(schedule, lv)]["completion"] for lv in LEVELS)
        # acceptance: resilience-on strictly dominates resilience-off
        assert full > none, f"{schedule}: full ({full}) must beat none ({none})"
        assert retries >= none, f"{schedule}: retries must not hurt"
        # the faults actually fired
        assert rows[(schedule, "none")]["faults"] > 0

    # retries visibly do work under faults
    assert any(rows[(s, "retries")]["rebinds"] > 0 for s in SCHEDULES)

    # determinism: replaying one cell reproduces the row exactly
    again = run_cell("crash-storm", "full")
    assert again == rows[("crash-storm", "full")]

    # persist the headline metrics into the bench trajectory
    for schedule in SCHEDULES:
        for level in LEVELS:
            record("E13", f"completion[{schedule}/{level}]",
                   rows[(schedule, level)]["completion"], direction="higher",
                   seed=SEED, compositions=N_COMPOSITIONS)
        record("E13", f"p95_s[{schedule}/full]",
               rows[(schedule, "full")]["p95_s"], unit="s", direction="lower",
               seed=SEED, compositions=N_COMPOSITIONS)
    # cost ledger over the merged trace, folded per composition: the
    # deterministic latency/status accounting of every pipeline run
    ledger = QueryCostLedger.from_trace(
        Trace(map(record_from_dict, sweep.trace)),
        root_name="composition.execute")
    summary = ledger.summary()
    assert summary["queries"] > 0
    for name in ("queries", "succeeded", "latency_p95_s"):
        record("E13", f"ledger_{name}", float(summary[name]),
               direction="either", seed=SEED, compositions=N_COMPOSITIONS)

    # wall-clock headline (record-only, machine-noisy): keyed by worker
    # count so the zero-tolerance determinism gate never compares it
    sim_s = sum(o.result.sim_time_s for o in sweep.outcomes if o.result)
    record("E13", "wall_clock_per_sim_second", sweep.trial_wall_s / sim_s,
           unit="s/s", direction="either", workers=sweep.workers)
    assert sweep.profile is not None and sweep.profile["events"] > 0
    if sweep.workers > 1:
        record("E13", "parallel_speedup", sweep.speedup, unit="x",
               direction="higher", workers=sweep.workers)


def _watched_world(schedule: str, level: str):
    """A FaultWorld with the SLO engine attached to its sim kernel."""
    from repro.observability.slo import SLO, Signal, SLOEvaluator, breaker_slo

    world = FaultWorld(schedule, level)
    slos = [
        SLO("composition.failures",
            "no composite execution fails inside the window",
            Signal("delta", "composition.failed"),
            objective=0.0, comparison="<=", window_s=120.0, severity="page"),
        breaker_slo(threshold=0.34, window_s=60.0),
    ]
    evaluator = SLOEvaluator(world.sim, world.monitor, slos, interval_s=15.0)
    n_hosts = len(world.providers)
    boards = world.breakers
    evaluator.probe(
        "resilience.breaker_open_fraction",
        lambda: len(boards.blocked_providers()) / n_hosts if boards else 0.0)
    evaluator.start(HORIZON_S)
    return world, evaluator


def run_slo_sweep():
    cells = {}
    for level in ("none", "full"):
        world, evaluator = _watched_world("crash-storm", level)
        world.run()
        evaluator.tick()
        st = evaluator.status["composition.failures"]
        cells[level] = {
            "verdict": evaluator.health().verdict,
            "fired": st.fired,
            "resolved": st.resolved,
            "compliance": st.compliance,
            "timeline": [(ev.time_s, ev.slo, ev.phase) for ev in evaluator.timeline],
        }
    return cells


def test_e13_slo_verdict(benchmark, table, once):
    """The SLO engine watching E13: failures alert without resilience,
    and the full stack's compliance dominates, deterministically."""
    cells = once(benchmark, run_slo_sweep)
    table(
        "E13 (SLO view): composition.failures alerting under crash-storm",
        ["resilience", "verdict", "fired", "resolved", "compliance"],
        [[level, c["verdict"], c["fired"], c["resolved"],
          f"{c['compliance']:.3f}"] for level, c in cells.items()],
        fmt="{:>12}",
    )
    # without resilience, failures breach the objective at least once
    assert cells["none"]["fired"] >= 1
    assert cells["none"]["timeline"]  # the timeline is non-trivial
    # the full stack never does worse than no resilience at all
    assert cells["full"]["compliance"] >= cells["none"]["compliance"]

    # the alert timeline is a pure function of the seed
    world, evaluator = _watched_world("crash-storm", "none")
    world.run()
    evaluator.tick()
    replay = [(ev.time_s, ev.slo, ev.phase) for ev in evaluator.timeline]
    assert replay == cells["none"]["timeline"]
