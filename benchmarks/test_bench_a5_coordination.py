"""Ablation A5 -- centralized vs distributed coordination on wireless hosts.

"The problem can be tackled by using centralized broker-based
architectures for service composition in purely wired environments.
However, in pervasive grid systems where the computation platforms range
from high end super computing workstations to low-end minute nano
sensors, centralized architectures are often not the most appropriate."

Protocol: the same 6-task pipeline executes over wireless provider hosts
(clustered "in the vicinity" of each other, far from the base station)
under both coordination modes, across payload sizes.  Centralized
coordination hauls every intermediate result to the base station and
back; distributed coordination lets data flow provider-to-provider (one
hop inside the cluster).  Expected shape: distributed costs a multiple
less radio energy and latency at every payload size -- asymptotically
the via-coordinator / provider-to-provider hop-count ratio, plus a
control-plane saving (role cards vs full invokes) that dominates at
small payloads.
"""

import numpy as np

from repro.agents import AgentPlatform, NetworkDeputy
from repro.composition import Binder, CompositionManager, HTNPlanner, ServiceProviderAgent, build_pervasive_domain
from repro.discovery import SemanticMatcher, ServiceDescription, ServiceRegistry, build_service_ontology
from repro.network import RadioEnergyModel, RadioModel, Topology, WirelessNetwork
from repro.network.mobility import grid_positions
from repro.simkernel import RandomStreams, Simulator

N_NODES = 16
AREA = 50.0
N_RUNS = 6
PAYLOAD_BITS = (1024.0, 8192.0, 32768.0)


def run_config(mode: str, payload_bits: float, seed=3):
    sim = Simulator()
    streams = RandomStreams(seed)
    positions = np.vstack([grid_positions(N_NODES, AREA), [[AREA / 2, -3.0]]])
    topo = Topology(positions, range_m=22.0)
    radio = RadioModel(bandwidth_bps=1e6, latency_s=0.02, range_m=22.0)
    net = WirelessNetwork(sim, topo, radio, RadioEnergyModel(),
                          rng=streams.get("loss"))
    base = N_NODES
    platform = AgentPlatform(sim)
    registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
    manager = CompositionManager("mgr", sim, Binder(registry), mode=mode,
                                 timeout_s=60.0)
    platform.register(manager, NetworkDeputy(manager, net, host_node=base))

    spec = [("DecisionTreeService", 2), ("FourierSpectrumService", 2),
            ("EnsembleCombinerService", 1)]
    # providers cluster "in the vicinity" of each other (§3's short-lived
    # nearby services) in the corner of the site farthest from the base
    # station: provider-to-provider data is 1 hop, via-coordinator is 6+
    provider_hosts = [15, 14, 11, 10, 13]
    idx = 0
    for category, count in spec:
        for i in range(count):
            name = f"{category.lower()}-{i}"
            host = provider_hosts[idx]
            idx += 1
            desc = ServiceDescription(name=f"svc-{name}", category=category,
                                      host_node=host, ops=1e6,
                                      input_bits=payload_bits,
                                      output_bits=payload_bits)
            agent = ServiceProviderAgent(name, desc, sim)
            platform.register(agent, NetworkDeputy(agent, net, host_node=host))
            registry.advertise(desc)

    planner = HTNPlanner(build_pervasive_domain())
    latencies = []
    for _ in range(N_RUNS):
        graph = planner.plan("analyze-stream", {"n_partitions": 2})
        got = []
        manager.execute(graph, got.append)
        deadline = sim.now + 200.0
        while not got and sim.now < deadline:
            if not sim.step():
                break
        assert got and got[0].success, f"composition failed in {mode}"
        latencies.append(got[0].latency_s)
        sim.run(until=sim.now + 5.0)
    energy = net.monitor.counter("net.energy_j").value
    return {
        "mean_latency": float(np.mean(latencies)),
        "energy_j": energy / N_RUNS,
        "bits": net.monitor.counter("net.energy_j").increments,
    }


def run_experiment():
    return {
        (mode, bits): run_config(mode, bits)
        for mode in ("centralized", "distributed")
        for bits in PAYLOAD_BITS
    }


def test_a5_coordination_ablation(benchmark, table, once):
    stats = once(benchmark, run_experiment)
    rows = []
    for (mode, bits), s in sorted(stats.items()):
        rows.append([mode, int(bits), s["mean_latency"], s["energy_j"] * 1e3])
    table(
        f"A5: coordination mode over wireless hosts ({N_RUNS} compositions each)",
        ["mode", "payload bits", "mean latency (s)", "radio mJ/run"],
        rows,
        fmt="{:>18}",
    )

    for bits in PAYLOAD_BITS:
        c = stats[("centralized", bits)]
        d = stats[("distributed", bits)]
        # distributed never hauls data through the coordinator: a multiple
        # cheaper and faster at every payload size
        assert d["energy_j"] < c["energy_j"] / 2.0
        assert d["mean_latency"] < c["mean_latency"]
    # the asymptotic data-plane advantage is the hop-count ratio between
    # via-coordinator and provider-to-provider routes (here ~2.8x); the
    # control-plane saving pushes the small-payload ratio even higher
    gap = {
        bits: stats[("centralized", bits)]["energy_j"] / stats[("distributed", bits)]["energy_j"]
        for bits in PAYLOAD_BITS
    }
    assert gap[PAYLOAD_BITS[0]] >= gap[PAYLOAD_BITS[-1]] >= 2.0
