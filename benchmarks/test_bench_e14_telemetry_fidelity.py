"""E14 -- telemetry fidelity under bounded memory (sketches + sampling).

The observability stack must survive grid-scale soak runs: a pervasive
grid answering queries continuously cannot retain every raw latency
sample and every trace span.  This experiment runs the same query
workload at 1x / 10x / 100x volume twice per scale -- **exhaustive**
(unlimited instrument buffers, no trace sampling: the ground truth) and
**bounded** (:class:`~repro.observability.sketch.TelemetryConfig` caps +
:class:`~repro.observability.sampling.SamplingConfig` head/tail trace
sampling + the ``max_records`` ring) -- and checks the bargain both ways:

* **memory**: exhaustive telemetry grows linearly with query count;
  bounded telemetry saturates (rings + sketch buckets + retained
  traces), so its last-decade growth ratio stays small and its absolute
  peak sits an order of magnitude below exhaustive at 100x.
* **fidelity**: p50/p95/p99 of per-epoch query latency read from the
  bounded monitor's :class:`QuantileSketch` stay within the sketch's
  configured relative error of the exhaustive (exact numpy) values.
* **visibility**: every sampling decision is accounted for
  (``retained + dropped == emitted``) and the retained trace always
  includes the sampling summary.

All six cells are independent worlds sharded through the
:class:`~repro.parallel.TrialRunner`; every recorded metric except the
wall-clock ones (keyed by worker count) is bit-identical at any worker
count -- the sketch merges are integer bucket addition and the sampling
decisions are hash-based, so this experiment extends the CI determinism
gate.  Set ``E14_TRACE_EXPORT`` to a path to export the bounded cells'
retained trace as JSONL (uploaded as a CI artifact).
"""

import os

from repro.core import PervasiveGridRuntime
from repro.observability import SamplingConfig, TelemetryConfig
from repro.parallel import TrialResult, cell_specs, run_trials

#: Query volumes: a 100x sweep (the paper's soak regime is the top end).
SCALES = (20, 200, 2000)
QUERY = "SELECT AVG(value) FROM sensors"
SEED = 11
N_SENSORS = 16

#: The bounded cell's telemetry budget.
BOUNDED_TELEMETRY = TelemetryConfig(histogram_max_raw=256, series_max_raw=256,
                                    max_trace_records=512)
BOUNDED_SAMPLING = SamplingConfig(head_rate=0.1, exemplar_capacity=4, seed=0)
#: Exhaustive cells lift the monitor's default 1024-sample caps entirely.
EXHAUSTIVE_TELEMETRY = TelemetryConfig(histogram_max_raw=None,
                                       series_max_raw=None)


def run_cell(spec):
    """One (scale, mode) world; runs in a worker process.

    All reductions happen here so the recorded metrics are per-world
    deterministic facts, independent of how cells shard over workers.
    """
    bounded = spec.params["mode"] == "bounded"
    runtime = PervasiveGridRuntime(
        n_sensors=N_SENSORS, area_m=30.0, seed=spec.seed, trace=True,
        sampling=BOUNDED_SAMPLING if bounded else None,
        telemetry=BOUNDED_TELEMETRY if bounded else EXHAUSTIVE_TELEMETRY,
    )
    for _ in range(spec.params["n_queries"]):
        runtime.query(QUERY)
    # flush the sampler worker-side so the returned trace is the final
    # retained set (exemplars + summary event included)
    runtime.tracer.finalize()
    monitor = runtime.deployment.monitor
    latency = monitor.histogram("queries.latency")
    metrics = {
        "monitor_cells": monitor.footprint()["total"],
        "trace_records": len(runtime.tracer.records),
        "ring_dropped": runtime.tracer.dropped,
        "p50": latency.percentile(50),
        "p95": latency.percentile(95),
        "p99": latency.percentile(99),
        "latency_dropped": latency.dropped,
    }
    if bounded:
        metrics["sampler"] = dict(runtime.tracer.sampler.stats)
    return TrialResult(monitor=monitor, metrics=metrics,
                       sim_time_s=runtime.sim.now,
                       trace=runtime.tracer if bounded else None)


def run_sweep(workers: int = 1):
    # every cell traces in-world, but run_cell only *returns* the bounded
    # cells' traces -- their retained set is the artifact; the exhaustive
    # ones would just bloat the merged trace
    specs = cell_specs(
        [{"n_queries": n, "mode": mode}
         for n in SCALES for mode in ("exhaustive", "bounded")],
        seed=SEED, trace=True,
    )
    sweep = run_trials(run_cell, specs, workers=workers)
    cells = {(o.spec.params["n_queries"], o.spec.params["mode"]): o.metrics
             for o in sweep.outcomes}
    return cells, sweep


def telemetry_total(cell: dict) -> int:
    """Peak telemetry storage of one world, in cells + trace records
    (deterministic units -- platform-independent, unlike bytes)."""
    return cell["monitor_cells"] + cell["trace_records"]


def test_e14_telemetry_fidelity(benchmark, table, once, record, workers):
    cells, sweep = once(benchmark, lambda: run_sweep(workers))

    rows = []
    for n in SCALES:
        ex, bo = cells[(n, "exhaustive")], cells[(n, "bounded")]
        rel99 = abs(bo["p99"] - ex["p99"]) / ex["p99"]
        rows.append([n, telemetry_total(ex), telemetry_total(bo),
                     ex["trace_records"], bo["trace_records"], rel99])
    table(
        "E14: telemetry memory (cells) and p99 fidelity, exhaustive vs bounded",
        ["queries", "exh total", "bnd total", "exh trace", "bnd trace",
         "p99 rel err"],
        rows,
    )

    top = SCALES[-1]
    mid = SCALES[-2]
    ex_top, bo_top = cells[(top, "exhaustive")], cells[(top, "bounded")]

    # -- memory: exhaustive grows with volume, bounded saturates --------
    ex_growth = telemetry_total(ex_top) / telemetry_total(cells[(mid, "exhaustive")])
    bo_growth = telemetry_total(bo_top) / telemetry_total(cells[(mid, "bounded")])
    assert ex_growth > 8.0, "exhaustive telemetry should track query volume"
    assert bo_growth < 4.0, "bounded telemetry must saturate, not track volume"
    assert telemetry_total(bo_top) < telemetry_total(ex_top) / 5
    assert bo_top["latency_dropped"] > 0  # the sketch actually engaged
    assert bo_top["ring_dropped"] > 0  # so did the trace ring

    # -- fidelity: sketch percentiles within the configured error ------
    # (0.01 sketch alpha + margin for numpy's interpolated convention)
    rel_errors = {}
    for q in ("p50", "p95", "p99"):
        rel_errors[q] = abs(bo_top[q] - ex_top[q]) / ex_top[q]
        assert rel_errors[q] <= 2 * BOUNDED_TELEMETRY.sketch_alpha, (
            f"{q} drifted {rel_errors[q]:.4f} from the exhaustive value")

    # -- visibility: every trace accounted for, summary retained -------
    stats = bo_top["sampler"]
    assert stats["traces_emitted"] == top
    assert stats["traces_retained"] + stats["traces_dropped"] == stats["traces_emitted"]
    assert stats["spans_retained"] + stats["spans_dropped"] == stats["spans_emitted"]
    assert any(r["kind"] == "event" and r["name"] == "obs.sampling.summary"
               for r in sweep.trace)

    # -- persist the headline numbers into the bench trajectory --------
    record("E14", "telemetry_peak_memory", float(telemetry_total(bo_top)),
           unit="cells", direction="lower", seed=SEED, n_sensors=N_SENSORS,
           n_queries=top)
    record("E14", "memory_growth_ratio", bo_growth, unit="x",
           direction="lower", seed=SEED, n_sensors=N_SENSORS)
    for q in ("p50", "p95", "p99"):
        record("E14", f"{q}_rel_error", rel_errors[q], unit="1",
               direction="lower", seed=SEED, n_sensors=N_SENSORS,
               n_queries=top)
    record("E14", "spans_retained_fraction",
           stats["spans_retained"] / stats["spans_emitted"], unit="1",
           direction="lower", seed=SEED, n_sensors=N_SENSORS, n_queries=top)

    # wall-clock facts are keyed by worker count so determinism gates
    # never compare them across serial/parallel runs
    sim_s = sum(o.result.sim_time_s for o in sweep.outcomes if o.result)
    record("E14", "wall_clock_per_sim_second", sweep.trial_wall_s / sim_s,
           unit="s/s", direction="either", workers=sweep.workers)

    export_path = os.environ.get("E14_TRACE_EXPORT")
    if export_path:
        count = sweep.export_trace(export_path)
        print(f"\n[E14] exported {count} retained trace records to {export_path}")
