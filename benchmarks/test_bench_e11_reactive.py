"""E11 -- reactive vs proactive composition over wireless hosts.

"We might want to pro-actively compute some generic information about
services required to execute a query which is requested with a high
frequency.  The other approach is to re-actively integrate and execute
services..."  (The paper's own prototype [5] was reactive, over
notebook/PocketPC hardware on Bluetooth/802.11.)

Protocol: providers live on wireless nodes behind NetworkDeputies; the
broker, manager and composers sit on the base station.  Reactive
composition pays one wireless broker round-trip per task at request
time; proactive composition did that discovery earlier.  We measure
request-to-result latency over repeated requests, static hosts vs mobile
hosts (random waypoint).  Expected shape: proactive beats reactive by
roughly the discovery round-trips; mobility hurts both but compositions
still complete via retry/rebind.
"""

import numpy as np

from repro.agents import AgentPlatform, NetworkDeputy
from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ProactiveComposer,
    ReactiveComposer,
    ServiceProviderAgent,
    build_pervasive_domain,
)
from repro.discovery import (
    BrokerAgent,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.network import RadioEnergyModel, RadioModel, RandomWaypoint, Topology, WirelessNetwork
from repro.network.mobility import grid_positions
from repro.simkernel import RandomStreams, Simulator

N_REQUESTS = 12
AREA = 50.0
N_NODES = 16  # provider hosts; base station is node 16


class WirelessWorld:
    def __init__(self, mobile: bool, seed: int = 0):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        positions = np.vstack([grid_positions(N_NODES, AREA), [[AREA / 2, -3.0]]])
        self.topology = Topology(positions, range_m=22.0)
        radio = RadioModel(bandwidth_bps=1e6, latency_s=0.02, loss_prob=0.01, range_m=22.0)
        self.network = WirelessNetwork(
            self.sim, self.topology, radio, RadioEnergyModel(),
            rng=self.streams.get("loss"),
        )
        self.base = N_NODES
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        # broker and manager live on the base station; the composer runs
        # on a handheld at the far corner of the site -- every discovery
        # round trip and every invocation crosses the wireless network
        self.broker = BrokerAgent("broker", self.registry)
        self.platform.register(
            self.broker, NetworkDeputy(self.broker, self.network, host_node=self.base)
        )
        self.manager = CompositionManager(
            "mgr", self.sim, Binder(self.registry), mode="centralized",
            timeout_s=20.0, max_retries=2,
        )
        self.platform.register(
            self.manager, NetworkDeputy(self.manager, self.network, host_node=self.base)
        )
        self.composer_host = N_NODES - 1  # static far-corner node
        self.planner = HTNPlanner(build_pervasive_domain())

        spec = [("DecisionTreeService", 3), ("FourierSpectrumService", 3),
                ("EnsembleCombinerService", 2)]
        host_rng = self.streams.get("hosts")
        host = 0
        for category, count in spec:
            for i in range(count):
                name = f"{category.lower()}-{i}"
                desc = ServiceDescription(name=f"svc-{name}", category=category,
                                          host_node=host, ops=1e6)
                agent = ServiceProviderAgent(name, desc, self.sim)
                deputy = NetworkDeputy(agent, self.network, host_node=host,
                                       buffer_when_down=True, retry_s=1.0)
                self.platform.register(agent, deputy)
                self.registry.advertise(desc)
                host += 1

        if mobile:
            RandomWaypoint(
                self.topology, mobile_nodes=list(range(8)),
                area_m=AREA, rng=self.streams.get("mobility"),
                speed_min=1.0, speed_max=4.0, pause_s=2.0,
            ).start(self.sim)

    def run_requests(self, composer, precompute: bool):
        if precompute:
            composer.precompute("analyze-stream", {"n_partitions": 2})
            self.sim.run(until=self.sim.now + 30.0)
        latencies, failures = [], 0
        for _ in range(N_REQUESTS):
            got = []
            start = self.sim.now
            composer.compose("analyze-stream", got.append, params={"n_partitions": 2})
            # compositions always resolve (discovery + manager timeouts);
            # the deadline guards against pathological event storms
            deadline = self.sim.now + 300.0
            while not got and self.sim.now < deadline:
                if not self.sim.step():
                    break
            if got and got[0].success:
                latencies.append(self.sim.now - start)
            else:
                failures += 1
            self.sim.run(until=self.sim.now + 15.0)
        return latencies, failures


def run_config(mobile: bool, proactive: bool, seed=47):
    world = WirelessWorld(mobile, seed=seed)
    if proactive:
        composer = ProactiveComposer("pro", world.planner, world.manager, "broker")
    else:
        composer = ReactiveComposer("re", world.planner, world.manager, "broker")
    world.platform.register(
        composer, NetworkDeputy(composer, world.network, host_node=world.composer_host)
    )
    latencies, failures = world.run_requests(composer, precompute=proactive)
    return {
        "mean_latency": float(np.mean(latencies)) if latencies else float("nan"),
        "p95_latency": float(np.percentile(latencies, 95)) if latencies else float("nan"),
        "success": (N_REQUESTS - failures) / N_REQUESTS,
    }


def run_sweep():
    return {
        (mob, mode): run_config(mob, mode == "proactive")
        for mob in (False, True)
        for mode in ("reactive", "proactive")
    }


def test_e11_reactive_vs_proactive(benchmark, table, once):
    stats = once(benchmark, run_sweep)
    rows = []
    for (mobile, mode), s in sorted(stats.items()):
        rows.append(["mobile" if mobile else "static", mode,
                     s["mean_latency"], s["p95_latency"], s["success"]])
    table(
        f"E11: composition latency over {N_REQUESTS} requests (wireless hosts)",
        ["hosts", "mode", "mean lat (s)", "p95 lat (s)", "success"],
        rows,
        fmt="{:>14}",
    )

    static_re = stats[(False, "reactive")]
    static_pro = stats[(False, "proactive")]
    mobile_re = stats[(True, "reactive")]
    mobile_pro = stats[(True, "proactive")]
    # proactive serves requests faster (discovery already paid)
    assert static_pro["mean_latency"] < static_re["mean_latency"]
    # on static hosts everything completes
    assert static_re["success"] == 1.0 and static_pro["success"] == 1.0
    # mobility may cost retries but compositions still mostly complete
    assert mobile_re["success"] >= 0.75
    assert mobile_pro["success"] >= 0.75
