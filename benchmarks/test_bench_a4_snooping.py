"""Ablation A4 -- TAG's channel-sharing (snooping) optimization.

"They also suggest further optimizations like channel sharing which
result in further saving of sensor energy." (§4, citing TAG)

Protocol: a MAX query collected over the slotted broadcast schedule,
with and without overhearing-based suppression, across deployment
densities.  Expected shape: suppression saves a substantial fraction of
transmissions (growing with density, where more neighbours overhear),
at zero accuracy cost -- MAX is monotone, so suppressed values are
provably dominated.
"""

import numpy as np

from repro.queries.models.eventdriven import SnoopingMaxCollection
from repro.sensors import SensorDeployment, UniformField
from repro.simkernel import RandomStreams

BITS = 64.0
#: (label, radio range as a multiple of lattice spacing) -- more range =
#: more neighbours overhearing each broadcast
DENSITIES = [("sparse", 1.2), ("medium", 1.8), ("dense", 2.8)]
N, AREA = 25, 40.0


def run_once(range_mult, seed, snoop):
    from repro.network.radio import RadioModel
    import numpy as _np

    spacing = AREA / (int(_np.ceil(_np.sqrt(N))) - 1)
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01,
                       range_m=spacing * range_mult)
    dep = SensorDeployment(N, AREA, UniformField(20.0), streams=RandomStreams(seed),
                           radio=radio, noise_std=0.0)
    rng = np.random.default_rng(seed)
    values = {i: float(rng.uniform(0, 100)) for i in dep.sensor_ids}
    reports = []
    SnoopingMaxCollection(dep).run(values, BITS, reports.append, snoop=snoop)
    dep.sim.run()
    return reports[0], max(values.values())


def run_experiment():
    rows = []
    results = {}
    for label, range_mult in DENSITIES:
        plain, truth = run_once(range_mult, seed=13, snoop=False)
        snooped, _ = run_once(range_mult, seed=13, snoop=True)
        assert snooped.value == truth and plain.value == truth
        saving = 1.0 - snooped.energy_j / plain.energy_j
        rows.append([label, plain.messages, snooped.messages, snooped.suppressed,
                     plain.energy_j * 1e3, snooped.energy_j * 1e3, saving])
        results[label] = (plain, snooped, saving)
    return rows, results


def test_a4_snooping_ablation(benchmark, table, once):
    rows, results = once(benchmark, run_experiment)
    table(
        "A4: channel-sharing suppression for MAX (exact answers in all cells)",
        ["density", "msgs plain", "msgs snoop", "suppressed",
         "mJ plain", "mJ snoop", "saving"],
        rows,
        fmt="{:>12}",
    )
    for label, (plain, snooped, saving) in results.items():
        assert snooped.messages < plain.messages
        assert saving > 0.0
    # density monotonicity: denser networks overhear (and save) more
    savings = [results[label][2] for label, _ in DENSITIES]
    assert savings[-1] >= savings[0]
    # dense networks save a TAG-like substantial fraction
    assert results["dense"][2] > 0.3
