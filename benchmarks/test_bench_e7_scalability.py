"""E7 -- scalability with the number of services.

"Composition architectures should scale with the increasing number of
services in smartdust type environments."

Protocol: service populations from 50 to 800; we measure (a) wall-clock
semantic search latency per request, (b) distributed-broker search cost
when the same population is spread over 4 peered brokers, and (c) the
virtual-time cost of binding + executing a 6-task composition.  Expected
shape: search grows linearly in population (it is a scan + rank), the
federation overhead stays a small constant factor, and composition
latency is population-independent (binding picks from the ranked list).
"""

import time

import numpy as np

from repro.agents import AgentPlatform
from repro.composition import Binder, CompositionManager, HTNPlanner, ServiceProviderAgent, build_pervasive_domain
from repro.discovery import (
    DistributedBrokerNetwork,
    Preference,
    SemanticMatcher,
    ServiceRegistry,
    ServiceRequest,
    build_service_ontology,
)
from repro.simkernel import RandomStreams, Simulator
from repro.workloads import ServicePopulation

SIZES = (50, 100, 200, 400, 800)
N_SEARCHES = 30


def search_latency(n_services: int, seed=41):
    rng = np.random.default_rng(seed)
    services = [g.description for g in ServicePopulation(rng).generate(n_services)]
    ontology = build_service_ontology()
    registry = ServiceRegistry(SemanticMatcher(ontology))
    for d in services:
        registry.advertise(d)

    request = ServiceRequest(
        category="PrinterService",
        preferences=(Preference("queue_length", "minimize"),),
    )
    t0 = time.perf_counter()
    for _ in range(N_SEARCHES):
        registry.search(request, top_k=10)
    single = (time.perf_counter() - t0) / N_SEARCHES

    # federation: same population over 4 peered brokers
    registries = [ServiceRegistry(SemanticMatcher(ontology), name=f"b{i}") for i in range(4)]
    for i, d in enumerate(services):
        registries[i % 4].advertise(d)
    net = DistributedBrokerNetwork(registries)
    t0 = time.perf_counter()
    for _ in range(N_SEARCHES):
        net.search(request, home="b0", max_hops=1, top_k=10)
    federated = (time.perf_counter() - t0) / N_SEARCHES
    return single, federated


def composition_latency(n_services: int, seed=43):
    sim = Simulator()
    streams = RandomStreams(seed)
    platform = AgentPlatform(sim)
    registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
    # background population (noise the binder must rank through)
    for g in ServicePopulation(streams.get("population")).generate(n_services):
        registry.advertise(g.description)
    # actual providers for the pipeline
    from repro.discovery import ServiceDescription

    for i, category in enumerate(
        ["DecisionTreeService", "DecisionTreeService", "FourierSpectrumService",
         "FourierSpectrumService", "EnsembleCombinerService"]
    ):
        name = f"p{i}"
        desc = ServiceDescription(name=f"real-{name}", category=category, ops=1e6,
                                  attributes={"queue_length": 0})
        platform.register(ServiceProviderAgent(name, desc, sim))
        registry.advertise(desc)

    manager = CompositionManager("mgr", sim, Binder(registry), mode="distributed")
    platform.register(manager)
    planner = HTNPlanner(build_pervasive_domain())
    graph = planner.plan("analyze-stream", {"n_partitions": 2})
    got = []
    t0 = time.perf_counter()
    manager.execute(graph, got.append)
    sim.run()
    wall = time.perf_counter() - t0
    assert got and got[0].success
    return got[0].latency_s, wall


def run_sweep():
    rows = []
    for n in SIZES:
        single, federated = search_latency(n)
        comp_virtual, comp_wall = composition_latency(n)
        rows.append([n, single * 1e3, federated * 1e3, comp_virtual, comp_wall * 1e3])
    return rows


def test_e7_scalability(benchmark, table, once, record):
    rows = once(benchmark, run_sweep)
    table(
        "E7: scalability with service population",
        ["services", "search (ms)", "fed. search (ms)", "comp. virtual (s)", "comp. wall (ms)"],
        rows,
        fmt="{:>18}",
    )
    search = {r[0]: r[1] for r in rows}
    fed = {r[0]: r[2] for r in rows}
    comp = {r[0]: r[3] for r in rows}
    # search grows sub-quadratically: 16x population < 40x latency
    assert search[800] < 40 * max(search[50], 1e-3)
    # federation costs less than 4x a single registry scan of everything
    assert fed[800] < 6 * search[800] + 1.0
    # composition virtual latency is population-independent
    assert abs(comp[800] - comp[50]) / comp[50] < 0.2
    # absolute sanity: sub-second searches at the largest size
    assert search[800] < 1000.0

    # persist the scalability trajectory: virtual-time metrics are
    # deterministic; wall-clock ones are record-only (machine-noisy,
    # kept out of the committed baseline so they are never gated)
    record("E7", "composition_virtual_s", comp[800], unit="s",
           direction="lower", seed=43, n_services=800)
    record("E7", "search_ms[800]", search[800], unit="ms",
           direction="either", seed=41, n_searches=N_SEARCHES)
    record("E7", "federated_search_ms[800]", fed[800], unit="ms",
           direction="either", seed=41, n_searches=N_SEARCHES)
    record("E7", "search_scaling_800_over_50", search[800] / max(search[50], 1e-9),
           unit="x", direction="either", seed=41)
    comp_wall_ms = {r[0]: r[4] for r in rows}
    record("E7", "wall_clock_per_sim_second",
           (comp_wall_ms[800] * 1e-3) / comp[800], unit="s/s",
           direction="either", seed=43, n_services=800)
