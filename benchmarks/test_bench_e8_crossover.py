"""E8 -- where the partitioning decision flips.

"Some queries may involve performing a lot of computation ... best
solved by [the grid].  Some very frequent queries may require less
computation, but the amount of data transfer required may drain the
energy ... Some queries which fall between ... may be best solved by
[the handheld/base]."

Protocol: sweep the computation size (PDE grid resolution) and the data
size (sensor count) for the complex DISTRIBUTION query; record which
model minimizes estimated response time at each point.  Expected shape:
a crossover frontier -- base-station/centralized wins small problems,
the grid wins once computation dominates, and larger networks (more data
to ship) push the frontier toward local computation.
"""

from repro.core import PervasiveGridRuntime
from repro.queries import parse_query
from repro.queries.models import CentralizedModel, GridOffloadModel, HandheldModel
from repro.queries.targets import select_targets

RESOLUTIONS = (8, 16, 24, 40, 64)
SENSOR_COUNTS = (16, 49, 100)

MODELS = [CentralizedModel(), GridOffloadModel(), HandheldModel()]
QUERY = parse_query("SELECT DISTRIBUTION(value) FROM sensors")


def winner(n_sensors: int, resolution: int):
    runtime = PervasiveGridRuntime(
        n_sensors=n_sensors, area_m=60.0, seed=29, grid_resolution=resolution,
    )
    targets = select_targets(runtime.deployment, QUERY)
    times = {}
    for model in MODELS:
        est = model.estimate(QUERY, runtime.ctx, targets)
        if est.feasible:
            times[model.name] = est.time_s
    best = min(times, key=times.get)
    return best, times


def run_sweep():
    grid = {}
    for n in SENSOR_COUNTS:
        for res in RESOLUTIONS:
            grid[(n, res)] = winner(n, res)
    return grid


def test_e8_crossover_frontier(benchmark, table, once):
    grid = once(benchmark, run_sweep)
    rows = []
    for n in SENSOR_COUNTS:
        row = [f"{n} sensors"]
        for res in RESOLUTIONS:
            best, _ = grid[(n, res)]
            row.append(best)
        rows.append(row)
    table(
        "E8: fastest model for the DISTRIBUTION query (computation x data sweep)",
        ["network \\ grid"] + [f"res={r}" for r in RESOLUTIONS],
        rows,
    )
    detail = []
    for res in RESOLUTIONS:
        _, times = grid[(49, res)]
        detail.append([res] + [times.get(m.name, float("nan")) for m in MODELS])
    table(
        "E8 (detail, 49 sensors): estimated turnaround (s) per model",
        ["resolution"] + [m.name for m in MODELS],
        detail,
    )

    for n in SENSOR_COUNTS:
        winners = [grid[(n, res)][0] for res in RESOLUTIONS]
        # small problems stay local, large problems go to the grid
        assert winners[0] in ("centralized", "handheld")
        assert winners[-1] == "grid"
        # the flip happens exactly once along the sweep (clean crossover)
        flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
        assert flips == 1
    # the handheld never wins the complex query anywhere
    all_winners = {grid[k][0] for k in grid}
    assert "handheld" not in all_winners
