"""E10 -- the accuracy / data-transfer tradeoff and the COST clause.

"depending upon the accuracy of results required, instead of sending
each sensor reading to the grid, one might only send the average reading
from a region (the size of the region depending on the level of accuracy
needed)" + "We have also introduced the COST clause".

Protocol: a fire field (strong spatial structure, so averaging actually
loses information); sweep the region granularity for the AVG and
DISTRIBUTION queries, measuring *actual* relative error and data bits.
Then pose COST-constrained queries and check the Decision Maker honours
the clause.  Expected shape: error falls and data rises monotonically
with granularity; COST accuracy excludes coarse plans; COST energy
excludes data-hungry plans.
"""

import math

from repro.core import PervasiveGridRuntime, StaticPolicy
from repro.queries.models import (
    CentralizedModel,
    ClusterModel,
    GridOffloadModel,
    HandheldModel,
    InNetworkTreeModel,
    RegionAverageModel,
)
from repro.sensors import FireField
from repro.simkernel import RandomStreams

GRANULARITIES = (1, 2, 3, 5, 7)


def make_runtime(policy, seed=23, resolution=24):
    streams = RandomStreams(seed)
    field = FireField(60.0, streams.get("fire"), n_seats=2)
    return PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, field=field, seed=seed, policy=policy,
        grid_resolution=resolution, noise_std=0.0,
    )


def region_models(k):
    return [
        CentralizedModel(), InNetworkTreeModel(), ClusterModel(),
        GridOffloadModel(), HandheldModel(), RegionAverageModel(regions_per_side=k),
    ]


def measure(query_text: str, k: int):
    runtime = make_runtime(StaticPolicy("region"), seed=23)
    runtime.models = region_models(k)
    from repro.core import DecisionMaker

    runtime.decision_maker = DecisionMaker(runtime.models, runtime.policy)
    runtime.executor.decision_maker = runtime.decision_maker
    runtime.sim.run(until=180.0)  # let the fire grow structure
    out = runtime.query(query_text)[0]
    assert out.model == "region"
    return out


def run_sweep():
    results = {}
    for k in GRANULARITIES:
        results[("AVG", k)] = measure("SELECT AVG(value) FROM sensors", k)
        results[("DISTRIBUTION", k)] = measure("SELECT DISTRIBUTION(value) FROM sensors", k)
    return results


def run_cost_clause_checks():
    picks = {}
    # accuracy bound forces an exact plan
    rt = make_runtime(None, seed=23)
    rt.sim.run(until=180.0)
    out = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.01")[0]
    picks["accuracy<=0.01"] = (out.model, out.rel_error)
    # a generous accuracy bound admits the cheap approximate plan
    rt = make_runtime(None, seed=23)
    rt.sim.run(until=180.0)
    out = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.5")[0]
    picks["accuracy<=0.5"] = (out.model, out.rel_error)
    # a tight time bound rules the handheld out
    rt = make_runtime(None, seed=23, resolution=40)
    rt.sim.run(until=180.0)
    out = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST time <= 5.0")[0]
    picks["time<=5"] = (out.model, out.time_s)
    return picks


def test_e10_accuracy_vs_cost(benchmark, table, once):
    results, picks = once(benchmark, lambda: (run_sweep(), run_cost_clause_checks()))
    rows = []
    for k in GRANULARITIES:
        avg = results[("AVG", k)]
        dist = results[("DISTRIBUTION", k)]
        rows.append([f"{k}x{k}", avg.rel_error, avg.data_bits,
                     dist.rel_error, dist.data_bits])
    table(
        "E10: region-averaging granularity vs accuracy and data shipped (fire field)",
        ["regions", "AVG rel.err", "AVG bits", "DIST rel.err", "DIST bits"],
        rows,
    )
    cost_rows = [[clause, model, val] for clause, (model, val) in picks.items()]
    table(
        "E10 (COST clause): Decision-Maker choice under constraints",
        ["COST clause", "model chosen", "achieved"],
        cost_rows,
        fmt="{:>18}",
    )

    # DISTRIBUTION: error shrinks monotonically as regions refine while
    # data shipped grows -- the paper's knob, measured
    errs = [results[("DISTRIBUTION", k)].rel_error for k in GRANULARITIES]
    bits = [results[("DISTRIBUTION", k)].data_bits for k in GRANULARITIES]
    assert all(math.isfinite(e) for e in errs)
    assert all(a >= b - 1e-9 for a, b in zip(errs, errs[1:]))  # monotone down
    assert bits[-1] > bits[0]
    # 1x1 averaging of a fire field is *bad* for the distribution
    assert results[("DISTRIBUTION", 1)].rel_error > 0.3
    assert results[("DISTRIBUTION", 7)].rel_error < 0.1
    # AVG: population-weighted averaging of regional means is *exact* for
    # linear aggregates -- a finding the reproduction surfaces: the
    # accuracy knob only bites on non-linear (complex) queries
    for k in GRANULARITIES:
        assert results[("AVG", k)].rel_error < 1e-9

    # COST clause semantics
    assert picks["accuracy<=0.01"][0] != "region"
    assert picks["accuracy<=0.01"][1] < 0.05
    assert picks["accuracy<=0.5"][0] == "region"
    assert picks["time<=5"][0] != "handheld"
    assert picks["time<=5"][1] <= 7.0
