"""E4 -- the adaptive Decision Maker.

"Standard machine learning techniques would be used on the data to
select the right approach for a given query.  The system will be made
adaptive by comparing the estimates of energy consumption and response
time with the actual values ... and the results would be incorporated
into the learning technique."

Protocol: a fixed workload of queries runs under each policy on its own
identical runtime (same seed).  The **oracle** executes *every* feasible
model for each query in an isolated sandbox and pays the best actual
objective -- the unattainable lower bound.  Regret = policy cost /
oracle cost - 1.  The learned policy must beat both static policies and
close most of the estimate-greedy policy's gap as feedback accumulates.
"""

import numpy as np

from repro.core import (
    EstimateGreedyPolicy,
    LearnedPolicy,
    PervasiveGridRuntime,
    StaticPolicy,
    default_objective,
)
from repro.queries.models import ALL_MODELS
from repro.workloads import QueryWorkload

N_QUERIES = 60
SEED = 21
RADIO_LOSS = 0.03  # lossy links: actuals deviate from analytic estimates


def make_runtime(policy):
    from repro.network.radio import RadioModel

    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01,
                       loss_prob=RADIO_LOSS, range_m=16.0)
    return PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, seed=SEED, policy=policy,
        radio=radio, grid_resolution=24,
    )


def workload_texts():
    wl = QueryWorkload(np.random.default_rng(77), n_sensors=49,
                       mix=(0.3, 0.5, 0.2, 0.0), cost_prob=0.0)
    return [wl.next_text() for _ in range(N_QUERIES)]


def run_policy(policy, texts):
    runtime = make_runtime(policy)
    costs = []
    for text in texts:
        out = runtime.query(text)[0]
        costs.append(default_objective(out.energy_j, out.time_s)
                     if out.success else 1e3)
        runtime.sim.run(until=runtime.sim.now + 10.0)
    return costs


def run_oracle(texts):
    """Best actual objective per query over per-model full runs.

    Each model runs the *whole* workload on its own long-lived runtime
    (so dissemination amortizes exactly as it does for the policies);
    the oracle pays, per query, the cheapest of those runs.
    """
    per_model = [run_policy(StaticPolicy(cls.name), texts) for cls in ALL_MODELS]
    return list(np.min(np.array(per_model), axis=0))


def run_experiment():
    texts = workload_texts()
    oracle = run_oracle(texts)
    policies = {
        "static:centralized": StaticPolicy("centralized"),
        "static:tree": StaticPolicy("tree"),
        "estimate-greedy": EstimateGreedyPolicy(),
        "learned(kNN)": LearnedPolicy(rng=np.random.default_rng(5),
                                      epsilon=0.3, epsilon_decay=0.95),
    }
    results = {}
    for name, policy in policies.items():
        results[name] = run_policy(policy, texts)
    return texts, oracle, results


def test_e4_decision_maker_regret(benchmark, table, once):
    texts, oracle, results = once(benchmark, run_experiment)
    oracle_total = sum(oracle)
    rows = []
    for name, costs in results.items():
        total = sum(costs)
        # learning curve: mean objective in first vs last third
        third = len(costs) // 3
        early = float(np.mean(costs[:third]))
        late = float(np.mean(costs[-third:]))
        rows.append([name, total, total / oracle_total - 1.0, early, late])
    rows.append(["oracle (lower bound)", oracle_total, 0.0,
                 float(np.mean(oracle[:len(oracle)//3])),
                 float(np.mean(oracle[-len(oracle)//3:]))])
    table(
        f"E4: Decision-Maker regret over {N_QUERIES} queries (objective = mJ + s)",
        ["policy", "total cost", "regret", "early mean", "late mean"],
        rows,
        fmt="{:>22}",
    )

    totals = {name: sum(costs) for name, costs in results.items()}
    # any adaptive/greedy policy must beat always-centralized
    assert totals["learned(kNN)"] < totals["static:centralized"]
    assert totals["estimate-greedy"] < totals["static:centralized"]
    # the learned policy's late-phase cost must not exceed its early phase
    costs = results["learned(kNN)"]
    third = len(costs) // 3
    assert np.mean(costs[-third:]) <= np.mean(costs[:third]) * 1.1
    # and after feedback it matches the estimate-greedy policy per query
    greedy_late = np.mean(results["estimate-greedy"][-third:])
    assert np.mean(costs[-third:]) <= greedy_late * 1.05
    # nobody beats the oracle
    for name, total in totals.items():
        assert total >= sum(oracle) * 0.999
