"""Ablation A1 -- dissemination routing: flooding vs gossiping.

"The data routing technique used in the network would not be the same
for all networks.  A particular network may use flooding technique to
route data, while another may use gossiping." (§4)

Protocol: disseminate a query from the base station over a 100-node
lattice with flooding and with gossip at several (forward_prob, fanout)
settings; 20 trials each for the stochastic protocols.  Expected shape:
flooding is a deterministic 100%-coverage upper bound on energy; gossip
trades coverage for energy, approaching both extremes at its parameter
extremes.
"""

import numpy as np

from repro.network import RadioEnergyModel, RadioModel, Topology, grid_positions
from repro.network.routing import Flooding, Gossip

N = 100
AREA = 90.0
TRIALS = 20
BITS = 512.0

GOSSIP_SETTINGS = [
    (0.4, 1),
    (0.6, 1),
    (0.6, 2),
    (0.8, 2),
    (1.0, 3),
]


def build():
    topo = Topology(grid_positions(N, AREA), range_m=16.0)
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01, range_m=16.0)
    return topo, radio, RadioEnergyModel()


def run_experiment():
    topo, radio, em = build()
    flood = Flooding(topo, radio, em).disseminate(0, BITS)
    rows = [["flooding", 1.0, flood.energy_j * 1e3, flood.messages, flood.latency_s]]
    results = {"flooding": (1.0, flood.energy_j)}
    for prob, fanout in GOSSIP_SETTINGS:
        coverages, energies, messages, latencies = [], [], [], []
        for trial in range(TRIALS):
            g = Gossip(topo, radio, em, np.random.default_rng(1000 + trial),
                       forward_prob=prob, fanout=fanout)
            res = g.disseminate(0, BITS)
            coverages.append(len(res.reached) / N)
            energies.append(res.energy_j)
            messages.append(res.messages)
            latencies.append(res.latency_s)
        label = f"gossip(p={prob},f={fanout})"
        rows.append([label, float(np.mean(coverages)), float(np.mean(energies)) * 1e3,
                     float(np.mean(messages)), float(np.mean(latencies))])
        results[label] = (float(np.mean(coverages)), float(np.mean(energies)))
    return rows, results, flood


def test_a1_routing_ablation(benchmark, table, once):
    rows, results, flood = once(benchmark, run_experiment)
    table(
        f"A1: query dissemination over {N} nodes -- flooding vs gossip ({TRIALS} trials)",
        ["protocol", "coverage", "energy (mJ)", "messages", "latency (s)"],
        rows,
        fmt="{:>18}",
    )

    # flooding reaches everyone, deterministically
    assert results["flooding"][0] == 1.0
    # sparse gossip is cheaper but incomplete
    cov_sparse, energy_sparse = results["gossip(p=0.4,f=1)"]
    assert energy_sparse < results["flooding"][1]
    assert cov_sparse < 0.9
    # dense gossip approaches full coverage
    cov_dense, _ = results["gossip(p=1.0,f=3)"]
    assert cov_dense > 0.95
    # the coverage/energy tradeoff is monotone across the settings swept
    coverages = [results[f"gossip(p={p},f={f})"][0] for p, f in GOSSIP_SETTINGS]
    energies = [results[f"gossip(p={p},f={f})"][1] for p, f in GOSSIP_SETTINGS]
    assert coverages == sorted(coverages)
    assert energies == sorted(energies)
