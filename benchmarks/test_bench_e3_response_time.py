"""E3 -- response time per execution model per query type.

"For real-time queries, the turn around time is crucial.  Hence estimate
of the response time of the query in each of the above approach is
needed."

Expected shape: in-network plans answer aggregates fastest; for the
complex (PDE) query, only the grid offload stays interactive -- the
handheld is orders of magnitude slower (the reason dynamic partitioning
exists).
"""

import math

from repro.core import PervasiveGridRuntime, StaticPolicy
from repro.network import record_route_cache_metrics
from repro.parallel import TrialResult, cell_specs, run_trials
from repro.queries.models import ALL_MODELS

QUERIES = {
    "simple": "SELECT value FROM sensors WHERE sensor_id = 24",
    "aggregate": "SELECT AVG(value) FROM sensors",
    "complex": "SELECT DISTRIBUTION(value) FROM sensors",
}


def run_cell(spec):
    """One (query class, model) world; runs in a worker process."""
    model_name = spec.params["model"]
    runtime = PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, seed=spec.seed, policy=StaticPolicy(model_name),
        grid_resolution=50,  # a serious PDE: 2500 grid points
    )
    out = runtime.query(QUERIES[spec.params["qclass"]], horizon_s=1e9)[0]
    record_route_cache_metrics(runtime.deployment.topology, runtime.monitor)
    time_s = out.time_s if out.success and out.model == model_name else None
    return TrialResult(monitor=runtime.monitor, metrics={"time_s": time_s},
                       sim_time_s=runtime.sim.now)


def run_sweep(workers: int = 1):
    specs = cell_specs(
        [{"qclass": qclass, "model": cls.name}
         for qclass in QUERIES for cls in ALL_MODELS],
        seed=13,
    )
    sweep = run_trials(run_cell, specs, workers=workers)
    results = {
        (o.spec.params["qclass"], o.spec.params["model"]): o.metrics["time_s"]
        for o in sweep.outcomes
    }
    return results, sweep


def test_e3_response_time_per_model(benchmark, table, once, record, workers):
    results, sweep = once(benchmark, lambda: run_sweep(workers))
    model_names = [cls.name for cls in ALL_MODELS]
    rows = []
    for qclass in QUERIES:
        row = [qclass]
        for name in model_names:
            time_s = results[(qclass, name)]
            row.append(time_s if time_s is not None else math.nan)
        rows.append(row)
    table(
        "E3: measured query turnaround (s), by execution model",
        ["query class"] + model_names,
        rows,
    )

    t = {k: (v if v is not None else math.inf) for k, v in results.items()}
    # complex queries: grid wins, handheld is hopeless
    assert t[("complex", "grid")] < t[("complex", "centralized")]
    assert t[("complex", "grid")] < t[("complex", "handheld")]
    assert t[("complex", "handheld")] > 10 * t[("complex", "grid")]
    # aggregates: in-network tree is at least competitive with raw shipping
    assert t[("aggregate", "tree")] <= t[("aggregate", "centralized")] * 1.5
    # every class has at least one sub-minute plan (feasibility)
    for qclass in QUERIES:
        assert min(t[(qclass, m)] for m in model_names) < 60.0

    # persist the headline numbers into the bench trajectory
    for qclass, model in (("simple", "handheld"), ("aggregate", "tree"),
                          ("complex", "grid"), ("complex", "handheld")):
        record("E3", f"time_s[{qclass}/{model}]", t[(qclass, model)],
               unit="s", direction="lower", seed=13, n_sensors=49)
    if sweep.workers > 1:
        record("E3", "parallel_speedup", sweep.speedup, unit="x",
               direction="higher", workers=sweep.workers)
