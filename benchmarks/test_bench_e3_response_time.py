"""E3 -- response time per execution model per query type.

"For real-time queries, the turn around time is crucial.  Hence estimate
of the response time of the query in each of the above approach is
needed."

Expected shape: in-network plans answer aggregates fastest; for the
complex (PDE) query, only the grid offload stays interactive -- the
handheld is orders of magnitude slower (the reason dynamic partitioning
exists).
"""

import math

from repro.core import PervasiveGridRuntime, StaticPolicy
from repro.queries.models import ALL_MODELS

QUERIES = {
    "simple": "SELECT value FROM sensors WHERE sensor_id = 24",
    "aggregate": "SELECT AVG(value) FROM sensors",
    "complex": "SELECT DISTRIBUTION(value) FROM sensors",
}


def measure(model_name: str, query_text: str):
    runtime = PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, seed=13, policy=StaticPolicy(model_name),
        grid_resolution=50,  # a serious PDE: 2500 grid points
    )
    out = runtime.query(query_text, horizon_s=1e9)[0]
    if not out.success or out.model != model_name:
        return None
    return out


def run_sweep():
    return {
        (qclass, cls.name): measure(cls.name, text)
        for qclass, text in QUERIES.items()
        for cls in ALL_MODELS
    }


def test_e3_response_time_per_model(benchmark, table, once, record):
    results = once(benchmark, run_sweep)
    model_names = [cls.name for cls in ALL_MODELS]
    rows = []
    for qclass in QUERIES:
        row = [qclass]
        for name in model_names:
            out = results[(qclass, name)]
            row.append(out.time_s if out else math.nan)
        rows.append(row)
    table(
        "E3: measured query turnaround (s), by execution model",
        ["query class"] + model_names,
        rows,
    )

    t = {k: (v.time_s if v else math.inf) for k, v in results.items()}
    # complex queries: grid wins, handheld is hopeless
    assert t[("complex", "grid")] < t[("complex", "centralized")]
    assert t[("complex", "grid")] < t[("complex", "handheld")]
    assert t[("complex", "handheld")] > 10 * t[("complex", "grid")]
    # aggregates: in-network tree is at least competitive with raw shipping
    assert t[("aggregate", "tree")] <= t[("aggregate", "centralized")] * 1.5
    # every class has at least one sub-minute plan (feasibility)
    for qclass in QUERIES:
        assert min(t[(qclass, m)] for m in model_names) < 60.0

    # persist the headline numbers into the bench trajectory
    for qclass, model in (("simple", "handheld"), ("aggregate", "tree"),
                          ("complex", "grid"), ("complex", "handheld")):
        record("E3", f"time_s[{qclass}/{model}]", t[(qclass, model)],
               unit="s", direction="lower", seed=13, n_sensors=49)
