"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md §3 and prints
the table/series the paper's claim corresponds to.  ``pytest-benchmark``
wraps the headline measurement of each experiment; the full sweep runs
once (``pedantic`` mode) because experiments are deterministic
simulations, not microbenchmarks.

Headline metrics also persist: the session-scoped ``record`` fixture
feeds a :class:`repro.observability.bench.BenchRecorder`, and the
results land in ``BENCH_results.json`` (override the path with the
``BENCH_RESULTS`` environment variable) when the session ends.  Gate a
run against a baseline with::

    python -m repro.observability.bench compare benchmarks/BENCH_baseline.json BENCH_results.json

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.observability.bench import BenchRecorder


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=1,
        help="worker processes for trial-sharded experiments (1 = serial; "
             "merged metrics are bit-identical at any worker count)",
    )


@pytest.fixture
def workers(request):
    """Worker-process count for experiments built on repro.parallel."""
    return request.config.getoption("--workers")


def print_table(title: str, headers: list[str], rows: list[list], fmt: str = "{:>14}") -> None:
    """Print one experiment table (captured by pytest -s)."""
    print(f"\n=== {title} ===")
    head = "".join(fmt.format(h) for h in headers)
    print(head)
    print("-" * len(head))
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(fmt.format(f"{v:.4g}"))
            else:
                cells.append(fmt.format(str(v)))
        print("".join(cells))


@pytest.fixture
def table():
    return print_table


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once


@pytest.fixture(scope="session")
def _bench_recorder():
    recorder = BenchRecorder()
    yield recorder
    if len(recorder):
        path = os.environ.get("BENCH_RESULTS", "BENCH_results.json")
        recorder.save(path)
        print(f"\n[bench] wrote {len(recorder)} headline metrics to {path}")


@pytest.fixture
def record(_bench_recorder):
    """Persist one headline metric: ``record("E2", "tree_mj", 0.73,
    unit="mJ", direction="lower", seed=11)`` — keyword args become the
    parameter hash that matches results across runs."""
    return _bench_recorder.record
