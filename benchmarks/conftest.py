"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md §3 and prints
the table/series the paper's claim corresponds to.  ``pytest-benchmark``
wraps the headline measurement of each experiment; the full sweep runs
once (``pedantic`` mode) because experiments are deterministic
simulations, not microbenchmarks.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers: list[str], rows: list[list], fmt: str = "{:>14}") -> None:
    """Print one experiment table (captured by pytest -s)."""
    print(f"\n=== {title} ===")
    head = "".join(fmt.format(h) for h in headers)
    print(head)
    print("-" * len(head))
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(fmt.format(f"{v:.4g}"))
            else:
                cells.append(fmt.format(str(v)))
        print("".join(cells))


@pytest.fixture
def table():
    return print_table


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
