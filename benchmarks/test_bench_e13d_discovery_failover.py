"""E13-D -- discovery survives a crash storm plus active-broker loss.

"Services may be coming up and going down frequently" -- and so may the
broker tracking them.  This experiment subjects the replicated,
event-sourced discovery subsystem to the E13 crash storm on provider
hosts while a scripted :class:`~repro.faults.NodeCrash` kills the
**active broker's** host mid-run:

* a lookup client keeps querying the well-known ``"broker"`` name on a
  fixed cadence, retrying on silence -- lookups straddling the failover
  pay the outage, nothing more;
* the broker group detects the loss, promotes the lowest-id live
  standby, and the standby replays the log tail it missed;
* the ``disc.broker_availability`` SLO fires during the outage and
  resolves after promotion.

Acceptance: **zero lost advertisements** -- the post-failover broker's
listing is byte-identical to a control world whose broker never crashed
(same seed, same provider churn), rebuilding every replica from the log
reproduces it exactly, the listing is invariant across shard/replication
configs, and the whole table is a pure function of the seed.
"""

import numpy as np

from repro.agents import ACLMessage, Agent, AgentPlatform, Performative
from repro.discovery import (
    BrokerGroup,
    EventLog,
    ReplicatedRegistry,
    SemanticMatcher,
    ServiceDescription,
    ServiceRequest,
    build_service_ontology,
)
from repro.faults import FaultDomain, FaultInjector, NodeCrash, crash_schedule
from repro.network import Topology
from repro.observability.slo import SLOEvaluator, discovery_slos
from repro.simkernel import Monitor, RandomStreams, Simulator

SEED = 17
N_PROVIDERS = 12
BROKER_HOSTS = (N_PROVIDERS, N_PROVIDERS + 1, N_PROVIDERS + 2)
HORIZON_S = 600.0
BROKER_CRASH_AT_S = 300.0
LOOKUP_GAP_S = 5.0
DETECTION_DELAY_S = 20.0

CATEGORIES = ["TemperatureSensorService", "DecisionTreeService",
              "FourierSpectrumService", "StorageService"]


class LookupClient(Agent):
    """Queries ``"broker"`` on a cadence; retries on silence; records
    ``disc.lookup_latency`` from first ask to first usable reply."""

    def __init__(self, sim, monitor, requests, gap_s=LOOKUP_GAP_S,
                 retry_delay_s=2.0, max_attempts=60):
        super().__init__("lookup-client")
        self.sim = sim
        self.monitor = monitor
        self.requests = requests
        self.gap_s = gap_s
        self.retry_delay_s = retry_delay_s
        self.max_attempts = max_attempts
        self.pending = {}   # conversation id -> lookup key
        self.inflight = {}  # lookup key -> start time
        self.latencies = []
        self.retries = 0
        self.failures = 0

    def setup(self):
        self.on(Performative.INFORM, self._on_reply)

    def start(self):
        for i, request in enumerate(self.requests):
            self.sim.schedule(i * self.gap_s,
                              lambda k=i, r=request: self._begin(k, r),
                              label="lookup:begin")

    def _begin(self, key, request):
        self.inflight[key] = self.sim.now
        self._attempt(key, request, 1)

    def _attempt(self, key, request, attempt):
        if key not in self.inflight:
            return
        msg = self.ask("broker", Performative.QUERY, request)
        self.pending[msg.conversation_id] = key
        if attempt >= self.max_attempts:
            self.inflight.pop(key, None)
            self.failures += 1
            return
        self.sim.schedule(self.retry_delay_s,
                          lambda: self._retry(key, request, attempt),
                          label="lookup:retry")

    def _retry(self, key, request, attempt):
        if key not in self.inflight:
            return
        self.retries += 1
        self.monitor.counter("resilience.retries").add(1)
        self._attempt(key, request, attempt + 1)

    def _on_reply(self, msg: ACLMessage):
        key = self.pending.pop(msg.in_reply_to or "", None)
        if key is None or key not in self.inflight:
            return
        latency = self.sim.now - self.inflight.pop(key)
        self.latencies.append(latency)
        self.monitor.histogram("disc.lookup_latency").observe(latency)


class DiscoveryWorld:
    """Replicated discovery under provider churn, with or without an
    active-broker crash at ``BROKER_CRASH_AT_S``."""

    def __init__(self, broker_crash: bool, seed: int = SEED,
                 n_shards: int = 4, replication: int = 2):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.monitor = Monitor()
        self.platform = AgentPlatform(self.sim, monitor=self.monitor)
        matcher = SemanticMatcher(build_service_ontology())
        self.log = EventLog(clock=lambda: self.sim.now)
        self.registry = ReplicatedRegistry(
            matcher, n_shards, replication, log=self.log, monitor=self.monitor)
        self.group = BrokerGroup(
            self.sim, self.platform, self.log, matcher, BROKER_HOSTS,
            n_shards=n_shards, replication=replication,
            detection_delay_s=DETECTION_DELAY_S, replay_s_per_event=0.01,
            monitor=self.monitor)

        # fixed uuids keep descriptions byte-identical across worlds
        self.descs = [
            ServiceDescription(name=f"svc-{i:02d}",
                               category=CATEGORIES[i % len(CATEGORIES)],
                               provider=f"p{i}", host_node=i,
                               uuid=f"uuid-{i:02d}",
                               attributes={"queue_length": i % 5})
            for i in range(N_PROVIDERS)
        ]
        for desc in self.descs:
            self.registry.advertise(desc)

        # topology spans provider hosts and broker hosts
        rng = self.streams.get("placement")
        positions = rng.uniform(0.0, 100.0, (N_PROVIDERS + len(BROKER_HOSTS), 2))
        self.topology = Topology(positions, range_m=1.0)
        domain = FaultDomain(sim=self.sim, monitor=self.monitor,
                             topology=self.topology,
                             on_node_change=self._on_node_change)
        self.injector = FaultInjector(domain)
        storm = crash_schedule(self.streams.get("crash-storm"),
                               nodes=range(N_PROVIDERS), horizon_s=HORIZON_S,
                               rate_per_s=0.04, mean_downtime_s=30.0)
        self.injector.schedule_all(storm)
        if broker_crash:
            self.injector.schedule(NodeCrash(node=BROKER_HOSTS[0],
                                             at_s=BROKER_CRASH_AT_S))

        n_lookups = int(HORIZON_S / LOOKUP_GAP_S)
        requests = [ServiceRequest(category=CATEGORIES[i % len(CATEGORIES)])
                    for i in range(n_lookups)]
        self.client = LookupClient(self.sim, self.monitor, requests)
        self.platform.register(self.client)

        self.evaluator = SLOEvaluator(self.sim, self.monitor, discovery_slos(),
                                      interval_s=15.0)
        self.evaluator.probe("disc.broker_online",
                             lambda: 1.0 if self.group.online() else 0.0)
        self.evaluator.probe("disc.staleness",
                             lambda: float(self.group.staleness()))
        self.evaluator.start(HORIZON_S)

    def _on_node_change(self, node: int, up: bool) -> None:
        if node < N_PROVIDERS:
            if up:
                self.registry.advertise(self.descs[node])
            else:
                self.registry.withdraw_host(node)
        if up:
            self.group.node_up(node)
        else:
            self.group.node_down(node)

    def run(self):
        self.client.start()
        self.sim.run(until=HORIZON_S)
        self.evaluator.tick()
        return self

    # ------------------------------------------------------------------
    def listing(self) -> str:
        """The active broker view's full listing, as bytes-comparable text."""
        return repr(self.group.active.view.services())

    def metrics(self) -> dict:
        summary = self.monitor.summary()
        availability = self.evaluator.status["disc.broker_availability"]
        return {
            "lookup_p99": float(np.percentile(self.client.latencies, 99)),
            "lookups": len(self.client.latencies),
            "lookup_failures": self.client.failures,
            "retries": self.client.retries,
            "failover_time_s": summary.get("disc.failover_time.max", 0.0),
            "failovers": self.group.failovers,
            "slo_fired": availability.fired,
            "slo_resolved": availability.resolved,
            "churn_faults": summary.get("faults.injected", 0.0),
        }


def run_experiment():
    crashed = DiscoveryWorld(broker_crash=True).run()
    control = DiscoveryWorld(broker_crash=False).run()

    crashed_names = {s.name for s in crashed.group.active.view.services()}
    control_names = {s.name for s in control.group.active.view.services()}
    lost = len(control_names - crashed_names)

    # deterministic rebuild: every replica replayed from seq 1 must
    # reproduce the exact post-storm listing
    before = crashed.listing()
    crashed.group.active.view.rebuild()
    rebuild_identical = crashed.listing() == before

    # the listing is a function of the log, not of the shard layout
    matcher = SemanticMatcher(build_service_ontology())
    shard_invariant = all(
        repr(ReplicatedRegistry(matcher, n, r, log=crashed.log,
                                live=False).services()) == before
        for n, r in [(1, 1), (2, 2), (8, 3)]
    )

    return {
        "crashed": crashed.metrics(),
        "control": control.metrics(),
        "lost_advertisements": lost,
        "listings_identical": crashed.listing() == control.listing(),
        "rebuild_identical": rebuild_identical,
        "shard_invariant": shard_invariant,
    }


def test_e13d_discovery_failover(benchmark, table, once, record):
    out = once(benchmark, run_experiment)
    crashed, control = out["crashed"], out["control"]
    table(
        f"E13-D: discovery under crash storm + active-broker kill at t={BROKER_CRASH_AT_S:g}s",
        ["world", "lookups", "p99 (s)", "retries", "failovers",
         "failover (s)", "SLO fired", "SLO resolved"],
        [["broker-crash", crashed["lookups"], crashed["lookup_p99"],
          crashed["retries"], crashed["failovers"], crashed["failover_time_s"],
          crashed["slo_fired"], crashed["slo_resolved"]],
         ["control", control["lookups"], control["lookup_p99"],
          control["retries"], control["failovers"], control["failover_time_s"],
          control["slo_fired"], control["slo_resolved"]]],
        fmt="{:>13}",
    )

    # the storm and the broker kill actually happened
    assert crashed["churn_faults"] > 0
    assert crashed["failovers"] == 1
    assert control["failovers"] == 0

    # bounded, SLO-visible outage: the availability alert fired and resolved
    assert crashed["slo_fired"] >= 1
    assert crashed["slo_resolved"] >= 1
    assert 0.0 < crashed["failover_time_s"] <= 30.0
    assert control["slo_fired"] == 0

    # no lookup was lost outright -- retries carried clients across the gap
    assert crashed["lookup_failures"] == 0
    assert crashed["retries"] > control["retries"]

    # ZERO data loss: byte-identical listings, deterministic rebuild,
    # shard-layout invariance
    assert out["lost_advertisements"] == 0
    assert out["listings_identical"]
    assert out["rebuild_identical"]
    assert out["shard_invariant"]

    # the whole experiment is a pure function of the seed
    again = DiscoveryWorld(broker_crash=True).run().metrics()
    assert again == crashed

    record("E13-D", "lookup_p99", crashed["lookup_p99"], unit="s",
           direction="lower", seed=SEED, providers=N_PROVIDERS)
    record("E13-D", "failover_time_s", crashed["failover_time_s"], unit="s",
           direction="lower", seed=SEED, providers=N_PROVIDERS)
    record("E13-D", "lost_advertisements", float(out["lost_advertisements"]),
           direction="lower", seed=SEED, providers=N_PROVIDERS)
