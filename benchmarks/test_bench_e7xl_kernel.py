"""E7-XL -- simulation-substrate scale: 10k-100k nodes, same results.

PR 10's tentpole claim: the substrate got 10-100x bigger without changing
a single observable result.  This benchmark drives a smartdust-scale
world -- constant-density random placement, random-waypoint mobility on
20% of the fleet, periodic local broadcasts with loss and energy
accounting, battery deaths -- under two kernel configurations:

* **baseline**: binary-heap event list + dense O(n^2) adjacency
  (the pre-PR-10 kernel), and
* **optimized**: calendar-queue event list + grid-hash spatial index.

Both run the *identical* workload at the largest common size and must
produce **bit-identical** state: per-node delivery counts, battery
arrays, final positions, and every monitor counter are folded into one
digest and compared exactly.  The optimized kernel must also be >= 5x
faster end to end -- the wall-clock numbers (``wall_clock_per_sim_second``,
``events_per_wall_second``, ``topology_recompute_ms``) land in
``BENCH_results.json`` keyed by variant/queue/worker count so the
tolerance-0 determinism gates never compare wall clock across runs.

Scale knobs (env):

* ``E7XL_N``       -- fleet size (default 10,000; go to 100,000 for the
  full XL run -- the optimized variant runs at full size, the dense
  baseline stays at the largest common size it can hold).
* ``E7XL_QUEUE``   -- event list for the optimized variant (default
  ``calendar``; CI also runs ``heap`` and compares at tolerance 0).
* ``E7XL_SIM_S``   -- simulated seconds (default 4).
* ``E7XL_PROFILE_DIR`` -- when set, per-variant HookProfiler exports are
  written there for ``python -m repro.observability.profile --diff``.
"""

import hashlib
import itertools
import json
import math
import os
import time

import numpy as np

from repro.network import (
    BatteryBank,
    Message,
    RadioModel,
    Topology,
    WirelessNetwork,
)
from repro.network.mobility import RandomWaypoint, random_positions
from repro.observability.profiling import HookProfiler
from repro.parallel import TrialResult, cell_specs, run_trials
from repro.simkernel import Monitor, RandomStreams, Simulator

N_NODES = int(os.environ.get("E7XL_N", "10000"))
COMMON_N = min(N_NODES, 10_000)   # largest size the dense baseline runs at
QUEUE = os.environ.get("E7XL_QUEUE", "calendar")
SIM_S = float(os.environ.get("E7XL_SIM_S", "4"))
SEED = 7

RANGE_M = 10.0
TARGET_DEGREE = 8.0          # constant density: area grows with n
MOBILE_EVERY = 5             # every 5th node is mobile (20%)
TICK_S = 1.0                 # mobility tick => topology recompute
N_SOURCES = 150              # broadcast sources per blast
BLAST_EVERY_S = 0.5
MSG_BITS = 256.0
#: Heterogeneous finite batteries: busy sources burn ~1.5e-5 J per blast,
#: so the weaker cells die mid-run and exercise kill() under load.
BATTERY_RANGE_J = (5e-5, 2e-4)


def _area_m(n: int) -> float:
    """Square side keeping mean unit-disc degree ~= TARGET_DEGREE."""
    return math.sqrt(n * math.pi * RANGE_M ** 2 / TARGET_DEGREE)


def run_world(spec):
    """One kernel configuration over the full mobility+broadcast workload."""
    p = spec.params
    n, queue, index = p["n"], p["queue"], p["index"]
    streams = RandomStreams(spec.seed)
    area = _area_m(n)
    positions = random_positions(n, area, streams.get("placement"))
    topology = Topology(positions, RANGE_M, index=index)
    sim = Simulator(queue=queue)
    profiler = None
    if spec.profile:
        profiler = HookProfiler()
        sim.profiler = profiler
    monitor = Monitor()
    bank = BatteryBank(streams.get("batteries").uniform(*BATTERY_RANGE_J, n))
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.005,
                       loss_prob=0.1, range_m=RANGE_M)
    net = WirelessNetwork(sim, topology, radio, batteries=bank.batteries(),
                          rng=streams.get("loss"), monitor=monitor)

    received = np.zeros(n, dtype=np.int64)

    def attach(i):
        def recv(_msg):
            received[i] += 1

        net.nodes[i].receive = recv

    for i in range(n):
        attach(i)

    mobile = list(range(0, n, MOBILE_EVERY))
    waypoint = RandomWaypoint(topology, mobile, area,
                              streams.get("mobility"), tick_s=TICK_S)
    sources = list(range(0, n, max(1, n // N_SOURCES)))[:N_SOURCES]
    recompute_s = [0.0]
    msg_ids = itertools.count()

    def tick():
        # time the tick's topology work (bulk move + first neighbor query,
        # which under the dense backend triggers the full O(n^2) rebuild)
        t0 = time.perf_counter()
        waypoint.step(TICK_S)
        topology.neighbors(sources[0])
        recompute_s[0] += time.perf_counter() - t0
        if sim.now + TICK_S <= SIM_S:
            sim.schedule(TICK_S, tick, label="e7xl.tick")

    def blast():
        for src in sources:
            if topology.is_alive(src):
                net.broadcast_local(src, Message(
                    msg_id=f"b{next(msg_ids)}", src=src, dst=None,
                    size_bits=MSG_BITS))
        if sim.now + BLAST_EVERY_S <= SIM_S:
            sim.schedule(BLAST_EVERY_S, blast, label="e7xl.blast")

    sim.schedule(TICK_S, tick, label="e7xl.tick")
    sim.schedule(BLAST_EVERY_S, blast, label="e7xl.blast")

    wall0 = time.perf_counter()
    sim.run(until=SIM_S)
    wall_s = time.perf_counter() - wall0

    # one digest over every observable output: any behavioral divergence
    # between kernel configurations shows up here as a mismatch
    digest = hashlib.sha256()
    digest.update(received.tobytes())
    digest.update(np.ascontiguousarray(bank.remaining).tobytes())
    digest.update(np.ascontiguousarray(topology.positions).tobytes())
    digest.update(json.dumps(sorted(monitor.counters().items()),
                             default=str).encode())

    counters = monitor.counters()
    return TrialResult(
        monitor=monitor,
        metrics={
            "variant": p["variant"],
            "n": n,
            "deliveries": int(received.sum()),
            "events_executed": sim.events_executed,
            "energy_mj": counters.get("net.energy_j", 0.0) * 1e3,
            "node_deaths": counters.get("net.node_deaths", 0.0),
            "digest": digest.hexdigest(),
            "wall_s": wall_s,
            "wall_per_sim_s": wall_s / SIM_S,
            "events_per_wall_s": sim.events_executed / wall_s,
            "topology_recompute_ms": recompute_s[0] * 1e3,
        },
        sim_time_s=sim.now,
        profile=profiler,
    )


def test_e7xl_kernel_scale(benchmark, table, once, record, workers):
    cells = [
        {"variant": "baseline", "n": COMMON_N, "queue": "heap", "index": "dense"},
        {"variant": "optimized", "n": COMMON_N, "queue": QUEUE, "index": "grid"},
    ]
    if N_NODES > COMMON_N:
        cells.append({"variant": "xl", "n": N_NODES, "queue": QUEUE,
                      "index": "grid"})
    specs = cell_specs(cells, seed=SEED, profile=True)
    sweep = once(benchmark, lambda: run_trials(run_world, specs,
                                               workers=workers))
    assert sweep.failures == 0
    by_variant = {o.metrics["variant"]: o.metrics for o in sweep.outcomes}
    base, opt = by_variant["baseline"], by_variant["optimized"]

    table(
        f"E7-XL: kernel scale, n={COMMON_N} common"
        + (f" / n={N_NODES} XL" if "xl" in by_variant else ""),
        ["variant", "n", "deliveries", "events", "wall s",
         "recompute ms", "ev/wall s"],
        [[m["variant"], m["n"], m["deliveries"], m["events_executed"],
          m["wall_s"], m["topology_recompute_ms"], m["events_per_wall_s"]]
         for m in by_variant.values()],
    )

    # -- the tentpole claims ------------------------------------------
    assert COMMON_N >= 10_000, "E7-XL must exercise >= 10k nodes"
    assert base["digest"] == opt["digest"], (
        "heap+dense vs calendar+grid must be bit-identical: delivery "
        "counts, batteries, positions or counters diverged")
    assert base["deliveries"] == opt["deliveries"] > 0
    assert base["node_deaths"] > 0, "workload must exercise battery deaths"
    speedup = base["wall_s"] / opt["wall_s"]
    assert speedup >= 5.0, (
        f"calendar+grid must be >= 5x faster than heap+dense at "
        f"n={COMMON_N}; got {speedup:.1f}x "
        f"({base['wall_s']:.2f}s vs {opt['wall_s']:.2f}s)")

    # per-variant wall-clock profiles for before/after --diff evidence
    profile_dir = os.environ.get("E7XL_PROFILE_DIR")
    if profile_dir:
        os.makedirs(profile_dir, exist_ok=True)
        for outcome in sweep.outcomes:
            doc = outcome.result.profile
            if doc is not None:
                path = os.path.join(
                    profile_dir,
                    f"e7xl-profile-{outcome.metrics['variant']}.json")
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh)

    # -- deterministic rows: identical for any queue/index/workers ----
    record("E7XL", "deliveries", float(opt["deliveries"]), unit="1",
           direction="higher", seed=SEED, n=COMMON_N, sim_s=SIM_S)
    record("E7XL", "events_executed", float(opt["events_executed"]),
           unit="1", direction="either", seed=SEED, n=COMMON_N, sim_s=SIM_S)
    record("E7XL", "energy_mj", opt["energy_mj"], unit="mJ",
           direction="either", seed=SEED, n=COMMON_N, sim_s=SIM_S)
    record("E7XL", "node_deaths", opt["node_deaths"], unit="1",
           direction="either", seed=SEED, n=COMMON_N, sim_s=SIM_S)

    # -- wall-clock rows: keyed by variant + the whole run config
    #    (run_queue/workers), so tolerance-0 determinism gates comparing
    #    runs with different configs never see them as shared -----------
    for name, variant in (("baseline", base), ("optimized", opt)):
        record("E7XL", "wall_clock_per_sim_second", variant["wall_per_sim_s"],
               unit="s/s", direction="lower", variant=name,
               run_queue=QUEUE, n=variant["n"], workers=sweep.workers,
               sim_s=SIM_S)
        record("E7XL", "events_per_wall_second", variant["events_per_wall_s"],
               unit="1/s", direction="higher", variant=name,
               run_queue=QUEUE, n=variant["n"], workers=sweep.workers,
               sim_s=SIM_S)
        record("E7XL", "topology_recompute_ms",
               variant["topology_recompute_ms"], unit="ms",
               direction="lower", variant=name,
               run_queue=QUEUE, n=variant["n"], workers=sweep.workers,
               sim_s=SIM_S)
    record("E7XL", "speedup_vs_heap_dense", speedup, unit="x",
           direction="higher", run_queue=QUEUE, n=COMMON_N,
           workers=sweep.workers, sim_s=SIM_S)

    if "xl" in by_variant:
        xl = by_variant["xl"]
        record("E7XL", "deliveries", float(xl["deliveries"]), unit="1",
               direction="higher", seed=SEED, n=xl["n"], sim_s=SIM_S)
        record("E7XL", "wall_clock_per_sim_second", xl["wall_per_sim_s"],
               unit="s/s", direction="lower", variant="xl", run_queue=QUEUE,
               n=xl["n"], workers=sweep.workers, sim_s=SIM_S)
