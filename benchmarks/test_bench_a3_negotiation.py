"""Ablation A3 -- negotiated binding with performance commitments.

§2 promises agents that "negotiate with other agents about ...
performance commitments".  This ablation makes the commitments matter:
one provider is cheapest *and advertises an over-optimistic commitment*
(it actually runs 5x slower than it promises); honest alternatives cost
more.  Registry-rank binding keeps picking the cheap liar.  Negotiated
binding with the commitment feedback loop pays the liar's price once or
twice, downgrades its reputation, and switches to honest providers.

Reported: mean actual execution latency and on-time rate across 15
sequential compositions, for the two binding strategies.
"""

import numpy as np

from repro.agents import AgentPlatform
from repro.agents.contractnet import ContractNetInitiator
from repro.composition import (
    Binder,
    CompositionManager,
    NegotiatedBinder,
    ServiceProviderAgent,
    TaskGraph,
    TaskSpec,
)
from repro.discovery import (
    Preference,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.simkernel import Simulator

N_ROUNDS = 15
HONEST_TIME = 2.0  # seconds per honest execution
LIAR_COMMIT = 1.0  # what the liar promises
LIAR_ACTUAL = 5.0  # what the liar delivers


class World:
    def __init__(self, seed=0):
        self.sim = Simulator()
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        self.manager = CompositionManager("mgr", self.sim, Binder(self.registry),
                                          timeout_s=60.0, max_retries=0)
        self.platform.register(self.manager)
        rate = 1e8

        def add(name, price, ops, commit_factor=1.0):
            desc = ServiceDescription(
                name=f"svc-{name}", category="DecisionTreeService",
                attributes={"price": price, "commit_factor": commit_factor,
                            "queue_length": int(price * 10)},
                ops=ops, cost=price,
            )
            agent = ServiceProviderAgent(name, desc, self.sim, compute_rate=rate)
            self.platform.register(agent)
            self.registry.advertise(desc)
            return desc

        # the liar: cheapest, commits to 1 s, actually takes 5 s
        add("liar", price=1.0, ops=LIAR_ACTUAL * rate,
            commit_factor=LIAR_COMMIT / LIAR_ACTUAL)
        # honest providers: pricier, deliver what they commit
        add("honest-a", price=2.0, ops=HONEST_TIME * rate)
        add("honest-b", price=2.5, ops=HONEST_TIME * rate)

    def graph(self):
        g = TaskGraph()
        # prefer low queue_length == low price: the rank binder's view
        g.add_task(TaskSpec("learn", "DecisionTreeService",
                            preferences=(Preference("queue_length", "minimize"),)))
        return g

    def run_rank_binding(self):
        latencies, on_time = [], 0
        for _ in range(N_ROUNDS):
            got = []
            self.manager.execute(self.graph(), got.append)
            while not got:
                if not self.sim.step():
                    break
            r = got[0]
            latencies.append(r.latency_s)
            if r.success and r.latency_s <= HONEST_TIME * 1.2:
                on_time += 1
            self.sim.run(until=self.sim.now + 5.0)
        return latencies, on_time

    def run_negotiated_binding(self):
        initiator = ContractNetInitiator("negotiator", self.sim)
        self.platform.register(initiator)
        binder = NegotiatedBinder(initiator, self.registry, collect_window_s=0.2)
        latencies, on_time = [], 0
        for _ in range(N_ROUNDS):
            got = []

            def bound(bindings):
                if bindings is None:
                    got.append(None)
                    return
                committed = {
                    name: b.match.service.ops / 1e8
                    * float(b.match.service.attributes.get("commit_factor", 1.0))
                    for name, b in bindings.items()
                }
                start = self.sim.now

                def done(result):
                    for name, b in bindings.items():
                        binder.report_outcome(b.provider, committed[name],
                                              self.sim.now - start)
                    got.append(result)

                self.manager.execute(self.graph(), done, bindings=bindings)

            binder.bind_graph(self.graph(), bound)
            while not got:
                if not self.sim.step():
                    break
            r = got[0]
            if r is not None:
                latencies.append(r.latency_s)
                if r.success and r.latency_s <= HONEST_TIME * 1.2:
                    on_time += 1
            self.sim.run(until=self.sim.now + 5.0)
        return latencies, on_time


def run_experiment():
    rank_lat, rank_on_time = World(seed=0).run_rank_binding()
    neg_lat, neg_on_time = World(seed=0).run_negotiated_binding()
    return {
        "rank": (rank_lat, rank_on_time),
        "negotiated": (neg_lat, neg_on_time),
    }


def test_a3_negotiated_binding(benchmark, table, once):
    results = once(benchmark, run_experiment)
    rows = []
    for name, (latencies, on_time) in results.items():
        rows.append([name, float(np.mean(latencies)), float(np.mean(latencies[-5:])),
                     on_time / N_ROUNDS])
    table(
        f"A3: binding strategy vs an over-promising provider ({N_ROUNDS} rounds)",
        ["binding", "mean latency (s)", "late latency (s)", "on-time rate"],
        rows,
        fmt="{:>18}",
    )

    rank_lat, rank_on_time = results["rank"]
    neg_lat, neg_on_time = results["negotiated"]
    # rank binding keeps trusting the advertised attributes: stuck at ~5 s
    assert np.mean(rank_lat[-5:]) > LIAR_ACTUAL * 0.8
    # negotiation's reputation loop converges to honest providers: ~2 s
    assert np.mean(neg_lat[-5:]) < HONEST_TIME * 1.5
    assert neg_on_time > rank_on_time
