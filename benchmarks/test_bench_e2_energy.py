"""E2 -- sensor energy per execution model per query type.

Operationalizes the claim the system is built on (§4 via TAG):
"performing the computation for certain type of aggregate queries inside
the sensor network result[s] in saving the energy of the sensors".

Methodology follows TAG: the query is disseminated once, then runs for
several epochs; we report the *steady-state per-epoch* energy (epochs
after the first), which is where the plans differ -- dissemination is a
shared one-off cost.  Expected shape: for aggregates,
tree < cluster/region < centralized = grid = handheld (raw shipping);
for complex queries only region-averaging saves energy.

The 15 (query class x model) cells are independent simulation worlds, so
the sweep shards them through :class:`repro.parallel.TrialRunner`
(``pytest benchmarks/ --workers N``); the merged monitor -- including the
route-cache counters -- is bit-identical at any worker count.
"""

import math

from repro.core import PervasiveGridRuntime, StaticPolicy
from repro.network import record_route_cache_metrics
from repro.observability import QueryCostLedger, Trace, record_from_dict
from repro.parallel import TrialResult, cell_specs, run_trials
from repro.queries.models import ALL_MODELS

QUERIES = {
    "simple": "SELECT value FROM sensors WHERE sensor_id = 24 EPOCH DURATION 5 FOR 25",
    "aggregate": "SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 25",
    "complex": "SELECT DISTRIBUTION(value) FROM sensors EPOCH DURATION 5 FOR 25",
}


def run_cell(spec):
    """One (query class, model) world; runs in a worker process."""
    model_name = spec.params["model"]
    runtime = PervasiveGridRuntime(
        n_sensors=49, area_m=60.0, seed=spec.seed, policy=StaticPolicy(model_name),
        grid_resolution=30, trace=spec.trace, profile=spec.profile,
    )
    outcomes = runtime.query(QUERIES[spec.params["qclass"]])
    record_route_cache_metrics(runtime.deployment.topology, runtime.monitor)
    good = [o for o in outcomes if o.success and o.model == model_name]
    if len(good) < 2:
        first = steady = None
    else:
        first = good[0].energy_j
        steady = sum(o.energy_j for o in good[1:]) / len(good[1:])
    return TrialResult(monitor=runtime.monitor,
                       metrics={"first": first, "steady": steady},
                       sim_time_s=runtime.sim.now,
                       trace=runtime.tracer if spec.trace else None,
                       profile=runtime.profiler)


def run_sweep(workers: int = 1):
    # every cell traces (feeds the per-query cost ledger) and profiles
    # (wall-clock attribution); neither touches the merged monitor, so
    # the bit-identical-at-any-worker-count contract is unaffected
    specs = cell_specs(
        [{"qclass": qclass, "model": cls.name}
         for qclass in QUERIES for cls in ALL_MODELS],
        seed=11, trace=True, profile=True,
    )
    sweep = run_trials(run_cell, specs, workers=workers)
    results = {
        (o.spec.params["qclass"], o.spec.params["model"]):
            (o.metrics["first"], o.metrics["steady"])
        for o in sweep.outcomes
    }
    return results, sweep


def test_e2_energy_per_model(benchmark, table, once, record, workers):
    results, sweep = once(benchmark, lambda: run_sweep(workers))
    model_names = [cls.name for cls in ALL_MODELS]
    rows = []
    for qclass in QUERIES:
        row = [qclass]
        for name in model_names:
            _, steady = results[(qclass, name)]
            row.append(steady * 1e3 if steady is not None else math.nan)
        rows.append(row)
    table(
        "E2: steady-state per-epoch sensor energy (mJ), by execution model",
        ["query class"] + model_names,
        rows,
    )
    first_rows = []
    for qclass in QUERIES:
        row = [qclass]
        for name in model_names:
            first, _ = results[(qclass, name)]
            row.append(first * 1e3 if first is not None else math.nan)
        first_rows.append(row)
    table(
        "E2 (supplement): first-epoch energy incl. query dissemination (mJ)",
        ["query class"] + model_names,
        first_rows,
    )

    steady = {k: (v[1] if v[1] is not None else math.inf) for k, v in results.items()}
    # the paper's headline: in-network aggregation saves energy on aggregates
    assert steady[("aggregate", "tree")] < 0.75 * steady[("aggregate", "centralized")]
    assert steady[("aggregate", "tree")] < steady[("aggregate", "grid")]
    assert steady[("aggregate", "cluster")] < steady[("aggregate", "centralized")]
    # region averaging is the energy saver for complex queries
    assert steady[("complex", "region")] < steady[("complex", "centralized")]
    # tree/cluster cannot answer complex queries at all
    assert results[("complex", "tree")] == (None, None)
    assert results[("complex", "cluster")] == (None, None)
    # dissemination dominates the first epoch: first >> steady for tree
    first_tree = results[("aggregate", "tree")][0]
    assert first_tree > 2 * steady[("aggregate", "tree")]

    # persist the headline numbers into the bench trajectory
    for qclass, model in (("aggregate", "tree"), ("aggregate", "cluster"),
                          ("aggregate", "centralized"),
                          ("complex", "region"), ("complex", "centralized")):
        record("E2", f"steady_mj[{qclass}/{model}]",
               steady[(qclass, model)] * 1e3, unit="mJ", direction="lower",
               seed=11, n_sensors=49)
    record("E2", "tree_vs_centralized_ratio[aggregate]",
           steady[("aggregate", "tree")] / steady[("aggregate", "centralized")],
           direction="lower", seed=11, n_sensors=49)

    # the static-topology workload must actually exercise the route cache,
    # and the hit rate is deterministic (identical at any worker count)
    hits = sweep.monitor.counter("net.route_cache.hits").value
    misses = sweep.monitor.counter("net.route_cache.misses").value
    assert hits > 0, "static-topology E2 should serve route queries from cache"
    record("E2", "route_cache_hit_rate", hits / (hits + misses),
           direction="higher", seed=11, n_sensors=49)
    # per-query cost ledger over the merged trace: deterministic fold, so
    # these summaries are gated at zero tolerance across worker counts
    summary = QueryCostLedger.from_trace(
        Trace(map(record_from_dict, sweep.trace))).summary()
    assert summary["queries"] > 0 and summary["succeeded"] > 0
    for name in ("queries", "succeeded", "energy_total_j",
                 "bytes_on_air_total", "latency_p95_s"):
        record("E2", f"ledger_{name}", float(summary[name]),
               direction="either", seed=11, n_sensors=49)

    # wall-clock headline for the E7-XL speed work: record-only (machine-
    # noisy), keyed by worker count so determinism gates never compare it
    sim_s = sum(o.result.sim_time_s for o in sweep.outcomes if o.result)
    record("E2", "wall_clock_per_sim_second", sweep.trial_wall_s / sim_s,
           unit="s/s", direction="either", workers=sweep.workers)
    assert sweep.profile is not None and sweep.profile["events"] > 0
    if sweep.workers > 1:
        # wall-clock facts are keyed by worker count so serial baselines
        # never compare against them (determinism gates stay clean)
        record("E2", "parallel_speedup", sweep.speedup, unit="x",
               direction="higher", workers=sweep.workers)
