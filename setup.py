"""Legacy shim so editable installs work without the `wheel` package.

The execution environment has setuptools 65 but no `wheel`, so PEP 660
editable installs fail with "invalid command 'bdist_wheel'".  With this
shim, ``pip install -e . --no-use-pep517 --no-build-isolation`` falls back
to ``setup.py develop``, which needs neither network nor wheel.
"""

from setuptools import setup

setup()
