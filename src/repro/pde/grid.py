"""Rectangular computation grids."""

from __future__ import annotations

import numpy as np


class RectGrid:
    """A uniform 2-D rectangular grid over ``[0, width] x [0, height]``.

    Grid values are stored as ``(nx, ny)`` arrays; ``points()`` flattens
    in C order (x-major), matching the sparse-operator layout in
    :mod:`~repro.pde.heat`.

    Parameters
    ----------
    nx, ny:
        Number of grid points along each axis (>= 2 each).
    width, height:
        Physical extent in metres.
    """

    def __init__(self, nx: int, ny: int, width: float, height: float) -> None:
        if nx < 2 or ny < 2:
            raise ValueError("grid needs at least 2 points per axis")
        if width <= 0 or height <= 0:
            raise ValueError("physical extent must be positive")
        self.nx = int(nx)
        self.ny = int(ny)
        self.width = float(width)
        self.height = float(height)
        self.dx = width / (nx - 1)
        self.dy = height / (ny - 1)

    @property
    def n_points(self) -> int:
        """Total grid points."""
        return self.nx * self.ny

    @property
    def shape(self) -> tuple[int, int]:
        """Array shape ``(nx, ny)``."""
        return (self.nx, self.ny)

    def points(self) -> np.ndarray:
        """``(n_points, 2)`` coordinates, C order (x-major)."""
        xs = np.linspace(0.0, self.width, self.nx)
        ys = np.linspace(0.0, self.height, self.ny)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.stack([gx.ravel(), gy.ravel()], axis=1)

    def index(self, i: int, j: int) -> int:
        """Flat index of grid point ``(i, j)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError(f"({i}, {j}) outside {self.shape}")
        return i * self.ny + j

    def boundary_mask(self) -> np.ndarray:
        """Boolean ``(nx, ny)`` mask of boundary points."""
        mask = np.zeros(self.shape, dtype=bool)
        mask[0, :] = mask[-1, :] = True
        mask[:, 0] = mask[:, -1] = True
        return mask

    def interior_mask(self) -> np.ndarray:
        """Boolean ``(nx, ny)`` mask of interior points."""
        return ~self.boundary_mask()

    def nearest_index(self, point: np.ndarray) -> tuple[int, int]:
        """Grid indices of the point nearest to a physical location."""
        x, y = float(point[0]), float(point[1])
        i = int(round(np.clip(x, 0.0, self.width) / self.dx))
        j = int(round(np.clip(y, 0.0, self.height) / self.dy))
        return min(i, self.nx - 1), min(j, self.ny - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RectGrid({self.nx}x{self.ny}, {self.width}x{self.height} m)"
