"""Scattering sparse sensor readings onto computation grids.

"grid points populated by data from the sensors" -- sensors are sparse
and irregular; the PDE grid is dense and regular.  We use inverse-distance
weighting (Shepard's method), the standard robust choice for scattered
environmental data, fully vectorized over grid points.
"""

from __future__ import annotations

import numpy as np

from repro.pde.grid import RectGrid


def idw_interpolate(
    sample_points: np.ndarray,
    sample_values: np.ndarray,
    query_points: np.ndarray,
    power: float = 2.0,
    eps: float = 1e-9,
) -> np.ndarray:
    """Inverse-distance-weighted interpolation.

    Parameters
    ----------
    sample_points:
        ``(m, 2)`` known locations.
    sample_values:
        ``(m,)`` known values.
    query_points:
        ``(q, 2)`` locations to estimate.
    power:
        IDW exponent (2 = classic Shepard).
    eps:
        Distance floor; a query point coinciding with a sample returns
        that sample's value exactly (up to floating point).

    Returns
    -------
    ``(q,)`` interpolated values.
    """
    samples = np.asarray(sample_points, dtype=np.float64)
    values = np.asarray(sample_values, dtype=np.float64)
    queries = np.asarray(query_points, dtype=np.float64)
    if samples.ndim != 2 or samples.shape[1] != 2:
        raise ValueError("sample_points must be (m, 2)")
    if len(samples) != len(values):
        raise ValueError("sample_points and sample_values length mismatch")
    if len(samples) == 0:
        raise ValueError("need at least one sample")

    delta = queries[:, None, :] - samples[None, :, :]
    dist = np.hypot(delta[..., 0], delta[..., 1])
    dist = np.maximum(dist, eps)
    weights = dist ** (-power)
    return (weights @ values) / weights.sum(axis=1)


def readings_to_grid(
    grid: RectGrid,
    positions: np.ndarray,
    values: np.ndarray,
    power: float = 2.0,
) -> np.ndarray:
    """Interpolate sensor readings onto every point of ``grid``.

    Returns an ``(nx, ny)`` field array.
    """
    flat = idw_interpolate(positions, values, grid.points(), power=power)
    return flat.reshape(grid.shape)
