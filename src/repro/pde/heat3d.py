"""3-D steady heat solves on box grids (7-point stencil).

Built by the same Kronecker-sum construction as the 2-D solver:
``L = Dxx ⊗ I ⊗ I + I ⊗ Dyy ⊗ I + I ⊗ I ⊗ Dzz``.  Sparse direct solves
of 3-D problems cost ~O(n^2) flops (nested dissection), which is the op
model :func:`solve3d_ops_estimate` charges -- and the reason the paper's
distribution query belongs on the grid.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.pde.grid3d import BoxGrid


def solve3d_ops_estimate(n_unknowns: int) -> float:
    """Estimated flops for a 3-D sparse direct solve (O(n^2))."""
    if n_unknowns < 0:
        raise ValueError("n_unknowns must be non-negative")
    return 50.0 * float(n_unknowns) ** 2


def _second_diff(n: int, h: float) -> sp.csr_matrix:
    main = np.full(n, 2.0 / (h * h))
    off = np.full(n - 1, -1.0 / (h * h))
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


class HeatSolver3D:
    """Steady 3-D heat solves: ``-k ∇²T = q`` with Dirichlet data."""

    def __init__(self, grid: BoxGrid, conductivity: float = 1.0) -> None:
        if conductivity <= 0:
            raise ValueError("conductivity must be positive")
        self.grid = grid
        self.conductivity = conductivity

    def _laplacian(self) -> sp.csr_matrix:
        g = self.grid
        ix = sp.identity(g.nx, format="csr")
        iy = sp.identity(g.ny, format="csr")
        iz = sp.identity(g.nz, format="csr")
        dxx = _second_diff(g.nx, g.dx)
        dyy = _second_diff(g.ny, g.dy)
        dzz = _second_diff(g.nz, g.dz)
        return (
            sp.kron(sp.kron(dxx, iy), iz, format="csr")
            + sp.kron(sp.kron(ix, dyy), iz, format="csr")
            + sp.kron(sp.kron(ix, iy), dzz, format="csr")
        )

    def solve_steady(
        self,
        boundary_values: np.ndarray,
        source: np.ndarray | None = None,
        fixed_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve with values fixed where ``fixed_mask`` is True.

        Mirrors the 2-D API; defaults fix the box faces.
        """
        g = self.grid
        fixed = g.boundary_mask() if fixed_mask is None else np.asarray(fixed_mask, dtype=bool)
        if fixed.shape != g.shape:
            raise ValueError("fixed_mask shape mismatch")
        if not fixed.any():
            raise ValueError("steady solve needs at least one fixed point")
        bvals = np.asarray(boundary_values, dtype=np.float64)
        if bvals.shape != g.shape:
            raise ValueError("boundary_values shape mismatch")
        q = np.zeros(g.shape) if source is None else np.asarray(source, dtype=np.float64)
        if q.shape != g.shape:
            raise ValueError("source shape mismatch")

        lap = self._laplacian() * self.conductivity
        fixed_flat = fixed.ravel()
        free = ~fixed_flat
        t_fixed = np.zeros(g.n_points)
        t_fixed[fixed_flat] = bvals.ravel()[fixed_flat]
        rhs = q.ravel() - lap @ t_fixed
        t = t_fixed.copy()
        if free.any():
            a_ff = lap[free][:, free].tocsc()
            t[free] = spla.spsolve(a_ff, rhs[free])
        return t.reshape(g.shape)

    def ops_estimate(self) -> float:
        """Charged flops for one steady solve on this grid."""
        return solve3d_ops_estimate(int(self.grid.interior_mask().sum()))
