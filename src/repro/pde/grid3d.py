"""3-D rectangular grids.

The paper's complex query is literally three-dimensional: "a 3D partial
differential equation needs to be set up, grid points populated by data
from the sensors and static data about building material and boundary
conditions, and then solved".  This module extends the 2-D machinery to
a box grid; the 7-point-stencil solver lives in
:mod:`~repro.pde.heat3d`.
"""

from __future__ import annotations

import numpy as np


class BoxGrid:
    """A uniform grid over ``[0, w] x [0, d] x [0, h]``.

    Values are ``(nx, ny, nz)`` arrays flattened in C order
    (``index = (i * ny + j) * nz + k``).
    """

    def __init__(self, nx: int, ny: int, nz: int,
                 width: float, depth: float, height: float) -> None:
        if min(nx, ny, nz) < 2:
            raise ValueError("grid needs at least 2 points per axis")
        if min(width, depth, height) <= 0:
            raise ValueError("physical extent must be positive")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.width, self.depth, self.height = float(width), float(depth), float(height)
        self.dx = width / (nx - 1)
        self.dy = depth / (ny - 1)
        self.dz = height / (nz - 1)

    @property
    def n_points(self) -> int:
        """Total grid points."""
        return self.nx * self.ny * self.nz

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape ``(nx, ny, nz)``."""
        return (self.nx, self.ny, self.nz)

    def points(self) -> np.ndarray:
        """``(n_points, 3)`` coordinates, C order."""
        xs = np.linspace(0.0, self.width, self.nx)
        ys = np.linspace(0.0, self.depth, self.ny)
        zs = np.linspace(0.0, self.height, self.nz)
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)

    def index(self, i: int, j: int, k: int) -> int:
        """Flat index of grid point ``(i, j, k)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny and 0 <= k < self.nz):
            raise IndexError(f"({i}, {j}, {k}) outside {self.shape}")
        return (i * self.ny + j) * self.nz + k

    def boundary_mask(self) -> np.ndarray:
        """Boolean ``(nx, ny, nz)`` mask of the box faces."""
        mask = np.zeros(self.shape, dtype=bool)
        mask[0, :, :] = mask[-1, :, :] = True
        mask[:, 0, :] = mask[:, -1, :] = True
        mask[:, :, 0] = mask[:, :, -1] = True
        return mask

    def interior_mask(self) -> np.ndarray:
        """Boolean mask of interior points."""
        return ~self.boundary_mask()

    def nearest_index(self, point: np.ndarray) -> tuple[int, int, int]:
        """Grid indices nearest to a physical location."""
        x = float(np.clip(point[0], 0.0, self.width))
        y = float(np.clip(point[1], 0.0, self.depth))
        z = float(np.clip(point[2], 0.0, self.height))
        return (
            min(int(round(x / self.dx)), self.nx - 1),
            min(int(round(y / self.dy)), self.ny - 1),
            min(int(round(z / self.dz)), self.nz - 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoxGrid({self.nx}x{self.ny}x{self.nz})"
