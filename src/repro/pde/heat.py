"""Heat-equation solvers on rectangular grids.

Steady state:  ``-k ∇²T = q`` with Dirichlet boundary values.
Transient:     ``∂T/∂t = α ∇²T + q`` via implicit (backward) Euler.

Both assemble the classic 5-point-stencil sparse operator and solve with
``scipy.sparse.linalg.spsolve`` -- a real computation, so examples and
experiments produce genuine temperature fields, while the *cost* charged
to whichever device runs the solve comes from
:func:`solve_ops_estimate` (sparse direct solves on 5-point systems cost
~O(n^1.5) flops via nested dissection).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.pde.grid import RectGrid


def solve_ops_estimate(n_unknowns: int) -> float:
    """Estimated flop count for one sparse steady-state solve.

    Nested-dissection factorization of a 2-D 5-point system costs
    ``O(n^{3/2})``; the constant (~50) is calibrated to put laptop-class
    solves in the seconds range on handheld-class rates, matching the
    paper's claim that in-network/handheld solves are infeasible while
    grid solves are interactive.
    """
    if n_unknowns < 0:
        raise ValueError("n_unknowns must be non-negative")
    return 50.0 * float(n_unknowns) ** 1.5


class HeatSolver:
    """Heat-equation solves over one :class:`~repro.pde.grid.RectGrid`.

    Parameters
    ----------
    grid:
        The computation grid.
    conductivity:
        Thermal conductivity ``k`` (steady) / diffusivity ``α`` (transient).
    """

    def __init__(self, grid: RectGrid, conductivity: float = 1.0) -> None:
        if conductivity <= 0:
            raise ValueError("conductivity must be positive")
        self.grid = grid
        self.conductivity = conductivity

    # ------------------------------------------------------------------
    def _laplacian(self) -> sp.csr_matrix:
        """The negative 5-point Laplacian over all grid points (C order).

        Built as the Kronecker sum ``Dxx ⊗ I + I ⊗ Dyy`` with 1-D
        second-difference operators, which handles row boundaries
        correctly by construction (C-order flat index = i*ny + j).
        """
        g = self.grid

        def second_diff(n: int, h: float) -> sp.csr_matrix:
            main = np.full(n, 2.0 / (h * h))
            off = np.full(n - 1, -1.0 / (h * h))
            return sp.diags([off, main, off], [-1, 0, 1], format="csr")

        dxx = second_diff(g.nx, g.dx)
        dyy = second_diff(g.ny, g.dy)
        return (
            sp.kron(dxx, sp.identity(g.ny, format="csr"), format="csr")
            + sp.kron(sp.identity(g.nx, format="csr"), dyy, format="csr")
        )

    def solve_steady(
        self,
        boundary_values: np.ndarray,
        source: np.ndarray | None = None,
        fixed_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve ``-k ∇²T = q`` with Dirichlet conditions.

        Parameters
        ----------
        boundary_values:
            ``(nx, ny)`` array; values where ``fixed_mask`` is True are
            held fixed (interior entries elsewhere are ignored).
        source:
            ``(nx, ny)`` heat source ``q`` (default zero).
        fixed_mask:
            Which points are Dirichlet-fixed (default: the grid boundary).

        Returns
        -------
        ``(nx, ny)`` temperature field.
        """
        g = self.grid
        fixed = g.boundary_mask() if fixed_mask is None else np.asarray(fixed_mask, dtype=bool)
        if fixed.shape != g.shape:
            raise ValueError("fixed_mask shape mismatch")
        if not fixed.any():
            raise ValueError("steady solve needs at least one fixed (Dirichlet) point")
        bvals = np.asarray(boundary_values, dtype=np.float64)
        if bvals.shape != g.shape:
            raise ValueError("boundary_values shape mismatch")
        q = np.zeros(g.shape) if source is None else np.asarray(source, dtype=np.float64)
        if q.shape != g.shape:
            raise ValueError("source shape mismatch")

        lap = self._laplacian() * self.conductivity
        n = g.n_points
        fixed_flat = fixed.ravel()
        free = ~fixed_flat
        rhs = q.ravel().copy()
        # move known boundary contributions to the RHS
        t_fixed = np.zeros(n)
        t_fixed[fixed_flat] = bvals.ravel()[fixed_flat]
        rhs = rhs - lap @ t_fixed

        a_ff = lap[free][:, free].tocsc()
        t = t_fixed.copy()
        t[free] = spla.spsolve(a_ff, rhs[free])
        return t.reshape(g.shape)

    def step_transient(
        self,
        temperature: np.ndarray,
        dt: float,
        source: np.ndarray | None = None,
        fixed_mask: np.ndarray | None = None,
        boundary_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """One implicit-Euler step of ``∂T/∂t = α ∇²T + q``.

        Unconditionally stable for any ``dt``.  Fixed points are reset to
        ``boundary_values`` (default: their current values) after the
        step.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        g = self.grid
        t0 = np.asarray(temperature, dtype=np.float64)
        if t0.shape != g.shape:
            raise ValueError("temperature shape mismatch")
        q = np.zeros(g.shape) if source is None else np.asarray(source, dtype=np.float64)
        fixed = g.boundary_mask() if fixed_mask is None else np.asarray(fixed_mask, dtype=bool)
        bvals = t0 if boundary_values is None else np.asarray(boundary_values, dtype=np.float64)

        lap = self._laplacian() * self.conductivity
        n = g.n_points
        fixed_flat = fixed.ravel()
        free = ~fixed_flat
        t_next = np.empty(n)
        t_next[fixed_flat] = bvals.ravel()[fixed_flat]
        if free.any():
            # implicit Euler on the free unknowns; Dirichlet data enters
            # through the coupling term on the RHS
            t_bound = np.zeros(n)
            t_bound[fixed_flat] = t_next[fixed_flat]
            system = sp.identity(int(free.sum()), format="csr") + dt * lap[free][:, free]
            rhs = t0.ravel()[free] + dt * (q.ravel()[free] - (lap @ t_bound)[free])
            t_next[free] = spla.spsolve(system.tocsc(), rhs)
        return t_next.reshape(g.shape)

    def ops_estimate(self) -> float:
        """Flop estimate for one steady solve on this grid."""
        interior = int(self.grid.interior_mask().sum())
        return solve_ops_estimate(interior)
