"""PDE solving for complex queries (paper §4).

"To answer this query, a 3D partial differential equation needs to be set
up, grid points populated by data from the sensors and static data about
building material and boundary conditions, and then solved.  It is simply
not feasible to perform the computation for solving such a query inside
the network."

This package provides the solver that the grid (or, futilely, a handheld)
runs for the *Complex* query class:

* :mod:`~repro.pde.grid` -- rectangular computation grids.
* :mod:`~repro.pde.interpolate` -- scattering sparse sensor readings onto
  grid points (inverse-distance weighting).
* :mod:`~repro.pde.heat` -- steady-state and transient heat equation via
  sparse 5-point-stencil linear systems (scipy.sparse), plus the
  operation-count model the partitioner's estimators use.
"""

from repro.pde.grid import RectGrid
from repro.pde.interpolate import idw_interpolate, readings_to_grid
from repro.pde.heat import HeatSolver, solve_ops_estimate
from repro.pde.grid3d import BoxGrid
from repro.pde.heat3d import HeatSolver3D, solve3d_ops_estimate

__all__ = [
    "RectGrid",
    "idw_interpolate",
    "readings_to_grid",
    "HeatSolver",
    "solve_ops_estimate",
    "BoxGrid",
    "HeatSolver3D",
    "solve3d_ops_estimate",
]
