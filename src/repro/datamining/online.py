"""Online, drift-adaptive ensemble mining in the Fourier domain.

The technique the paper cites ([17], Kargupta & Park) is built for
*streams*: models are learned continually on a mobile device and the
ensemble must track concept drift.  :class:`OnlineFourierEnsemble`
maintains a sliding window of member spectra -- each incoming batch fits
a fresh shallow tree, its spectrum joins the window, the oldest falls out
-- and the deployable model is always the truncated average of the
window.  Old concepts therefore age out at the window timescale, and the
wire representation stays a fixed handful of coefficients.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.datamining.ensemble import average_spectra
from repro.datamining.fourier import FourierFunction, spectrum_of, truncate_spectrum
from repro.datamining.tree import DecisionTree


class OnlineFourierEnsemble:
    """A sliding-window Fourier ensemble over a labelled stream.

    Parameters
    ----------
    d:
        Feature count (spectra are exact; d <= 16).
    window:
        Member spectra retained; the drift-adaptation timescale.
    k_coefficients:
        Dominant components kept in the deployable model.
    max_depth:
        Depth of each member tree.
    """

    def __init__(self, d: int, window: int = 5, k_coefficients: int = 32,
                 max_depth: int = 4) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if k_coefficients < 1:
            raise ValueError("k_coefficients must be >= 1")
        self.d = d
        self.window = window
        self.k_coefficients = k_coefficients
        self.max_depth = max_depth
        self._spectra: collections.deque[np.ndarray] = collections.deque(maxlen=window)
        self._model: FourierFunction | None = None
        self.batches_seen = 0

    # ------------------------------------------------------------------
    @property
    def members(self) -> int:
        """Member spectra currently in the window."""
        return len(self._spectra)

    def update(self, X: np.ndarray, y: np.ndarray) -> None:
        """Learn one batch: fit a tree, admit its spectrum, refresh model."""
        tree = DecisionTree(max_depth=self.max_depth).fit(X, y)
        self._spectra.append(spectrum_of(tree.predict, self.d))
        avg = average_spectra(list(self._spectra))
        self._model = FourierFunction(truncate_spectrum(avg, self.k_coefficients), self.d)
        self.batches_seen += 1

    def current_model(self) -> FourierFunction:
        """The deployable combined model (RuntimeError before any update)."""
        if self._model is None:
            raise RuntimeError("no batches seen yet")
        return self._model

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the current combined model."""
        return self.current_model().predict(X)

    def wire_bits(self) -> float:
        """Size of shipping the current model (truncated spectrum)."""
        return self.current_model().size_bits()
