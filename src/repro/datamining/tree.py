"""Greedy information-gain decision trees over binary features.

From-scratch (no sklearn), vectorized prediction, compact enough to run
"on a PocketPC" in spirit: the fit cost scales as O(n * d * depth).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class _Node:
    """Internal tree node; ``feature < 0`` marks a leaf carrying ``label``."""

    feature: int = -1
    label: int = 0
    left: "_Node | None" = None  # feature == 0 branch
    right: "_Node | None" = None  # feature == 1 branch


def _entropy(y: np.ndarray) -> float:
    if len(y) == 0:
        return 0.0
    p = float(np.mean(y))
    if p in (0.0, 1.0):
        return 0.0
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


class DecisionTree:
    """A binary-feature, binary-label decision tree.

    Parameters
    ----------
    max_depth:
        Depth cap (root at depth 0); shallow trees keep the Fourier
        spectrum sparse, which is the point of Kargupta's technique.
    min_samples:
        Do not split nodes with fewer examples.
    """

    def __init__(self, max_depth: int = 4, min_samples: int = 4) -> None:
        if max_depth < 0 or min_samples < 1:
            raise ValueError("max_depth >= 0 and min_samples >= 1 required")
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._root: _Node | None = None
        self.d: int | None = None
        self.n_nodes = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        """Grow the tree on a labelled batch; returns self."""
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty and aligned")
        self.d = X.shape[1]
        self.n_nodes = 0
        self._root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self.n_nodes += 1
        majority = int(np.mean(y) >= 0.5)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples
            or len(np.unique(y)) == 1
        ):
            return _Node(label=majority)

        # choose the best-gain feature; zero-gain splits are still taken
        # when the node is impure (XOR-style concepts have zero marginal
        # gain at the root yet are solvable one level down)
        base = _entropy(y)
        best_gain, best_feat = -1.0, -1
        for f in range(X.shape[1]):
            mask = X[:, f] == 1
            n1 = int(mask.sum())
            if n1 == 0 or n1 == len(y):
                continue
            gain = base - (
                n1 / len(y) * _entropy(y[mask])
                + (len(y) - n1) / len(y) * _entropy(y[~mask])
            )
            if gain > best_gain + 1e-12:
                best_gain, best_feat = gain, f
        if best_feat < 0:
            return _Node(label=majority)

        mask = X[:, best_feat] == 1
        return _Node(
            feature=best_feat,
            label=majority,
            left=self._grow(X[~mask], y[~mask], depth + 1),
            right=self._grow(X[mask], y[mask], depth + 1),
        )

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels in {0, 1} for a batch (vectorized level walk)."""
        if self._root is None:
            raise RuntimeError("tree not fitted")
        X = np.asarray(X, dtype=np.uint8)
        out = np.empty(len(X), dtype=np.uint8)
        # iterative partition walk: cheap for shallow trees
        stack = [(self._root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.feature < 0:
                out[idx] = node.label
                continue
            mask = X[idx, node.feature] == 1
            stack.append((node.right, idx[mask]))
            stack.append((node.left, idx[~mask]))
        return out

    def depth(self) -> int:
        """Actual grown depth."""

        def walk(node: _Node | None) -> int:
            if node is None or node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree not fitted")
        return walk(self._root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionTree(nodes={self.n_nodes}, max_depth={self.max_depth})"
