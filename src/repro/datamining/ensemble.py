"""Ensemble aggregation: spectrum averaging and majority vote.

"combining them to create a single tree" -- the ensemble of per-device
trees is merged *in the Fourier domain*: average the member spectra
(the spectrum of the ensemble's average vote), keep the dominant
coefficients, and the result is one compact classifier whose wire size is
a handful of coefficients rather than a model or a data stream.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.datamining.fourier import FourierFunction, spectrum_of, truncate_spectrum


def average_spectra(spectra: typing.Sequence[np.ndarray]) -> np.ndarray:
    """Coefficient-wise mean of member spectra (all same length)."""
    if not spectra:
        raise ValueError("need at least one spectrum")
    first = np.asarray(spectra[0], dtype=np.float64)
    out = first.copy()
    for s in spectra[1:]:
        arr = np.asarray(s, dtype=np.float64)
        if arr.shape != first.shape:
            raise ValueError("spectra length mismatch")
        out += arr
    return out / len(spectra)


def combine_via_fourier(
    predictors: typing.Sequence[typing.Callable[[np.ndarray], np.ndarray]],
    d: int,
    k_coefficients: int,
) -> FourierFunction:
    """The full §3 pipeline: spectra → average → truncate → one model."""
    spectra = [spectrum_of(p, d) for p in predictors]
    avg = average_spectra(spectra)
    return FourierFunction(truncate_spectrum(avg, k_coefficients), d)


class MajorityVote:
    """Baseline ensemble: unweighted vote of all member predictors."""

    def __init__(self, predictors: typing.Sequence[typing.Callable[[np.ndarray], np.ndarray]]) -> None:
        if not predictors:
            raise ValueError("need at least one predictor")
        self.predictors = list(predictors)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority label over members (ties -> 1, matching >= 0.5)."""
        votes = np.zeros(len(X), dtype=np.float64)
        for p in self.predictors:
            votes += np.asarray(p(X), dtype=np.float64)
        return (votes >= len(self.predictors) / 2.0).astype(np.uint8)


def accuracy(predict: typing.Callable[[np.ndarray], np.ndarray], X: np.ndarray, y: np.ndarray) -> float:
    """Fraction of correct labels on a batch."""
    if len(X) == 0:
        raise ValueError("empty evaluation batch")
    return float(np.mean(np.asarray(predict(X)).ravel() == np.asarray(y).ravel()))
