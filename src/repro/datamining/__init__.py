"""Distributed stream mining (the paper's §3 composite task).

"a particular analysis technique for streams tries to create ensembles of
decision trees from the data stream and then combine them.  First the
system needs to figure out that this task has several components --
generating decision trees, computing their Fourier spectra, choosing the
dominant components, and combining them to create a single tree."

This package implements every component from scratch, following the
Kargupta & Park mobile-mining approach the paper cites [17]:

* :mod:`~repro.datamining.stream` -- synthetic labelled boolean-feature
  streams with noise and concept drift.
* :mod:`~repro.datamining.tree` -- greedy information-gain decision trees.
* :mod:`~repro.datamining.fourier` -- Walsh/Fourier spectra of boolean
  functions (fast Walsh-Hadamard transform), dominant-coefficient
  truncation, reconstruction.
* :mod:`~repro.datamining.ensemble` -- spectrum-domain ensemble
  aggregation into a single compact model, plus a majority-vote baseline.
"""

from repro.datamining.stream import LabeledStream, partition_stream
from repro.datamining.tree import DecisionTree
from repro.datamining.fourier import (
    walsh_hadamard,
    spectrum_of,
    truncate_spectrum,
    FourierFunction,
)
from repro.datamining.online import OnlineFourierEnsemble
from repro.datamining.ensemble import (
    average_spectra,
    combine_via_fourier,
    MajorityVote,
    accuracy,
)

__all__ = [
    "LabeledStream",
    "partition_stream",
    "DecisionTree",
    "walsh_hadamard",
    "spectrum_of",
    "truncate_spectrum",
    "FourierFunction",
    "average_spectra",
    "combine_via_fourier",
    "MajorityVote",
    "OnlineFourierEnsemble",
    "accuracy",
]
