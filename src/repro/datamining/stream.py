"""Synthetic labelled data streams.

Streams deliver ``(X, y)`` batches of binary feature vectors labelled by
a hidden boolean concept plus label noise; the concept can drift
mid-stream (the non-stationarity that motivates online ensembles).
"""

from __future__ import annotations

import numpy as np


class LabeledStream:
    """A stream of labelled binary examples.

    The hidden concept is a random ``k``-term DNF over ``d`` boolean
    features -- learnable by shallow decision trees yet non-trivial.

    Parameters
    ----------
    d:
        Number of binary features (keep <= 16 so spectra are exact).
    rng:
        Random source.
    noise:
        Probability each label is flipped.
    n_terms / term_size:
        DNF shape of the hidden concept.
    drift_at:
        Example index after which the concept is re-drawn (None = no
        drift).
    """

    def __init__(
        self,
        d: int,
        rng: np.random.Generator,
        noise: float = 0.05,
        n_terms: int = 3,
        term_size: int = 3,
        drift_at: int | None = None,
    ) -> None:
        if d < 1 or d > 20:
            raise ValueError("d must be in [1, 20]")
        if not 0.0 <= noise < 0.5:
            raise ValueError("noise must be in [0, 0.5)")
        if term_size > d:
            raise ValueError("term_size cannot exceed d")
        self.d = d
        self.rng = rng
        self.noise = noise
        self.n_terms = n_terms
        self.term_size = term_size
        self.drift_at = drift_at
        self.emitted = 0
        self._drifted = False
        self._concept = self._draw_concept()

    def _draw_concept(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Terms as (feature index array, required value array)."""
        terms = []
        for _ in range(self.n_terms):
            feats = self.rng.choice(self.d, size=self.term_size, replace=False)
            vals = self.rng.integers(0, 2, size=self.term_size)
            terms.append((feats, vals))
        return terms

    def true_label(self, X: np.ndarray) -> np.ndarray:
        """Noise-free concept labels for a batch (vectorized DNF)."""
        X = np.asarray(X)
        out = np.zeros(len(X), dtype=bool)
        for feats, vals in self._concept:
            out |= (X[:, feats] == vals[None, :]).all(axis=1)
        return out.astype(np.uint8)

    def batch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Next ``n`` labelled examples ``(X, y)``."""
        if n < 1:
            raise ValueError("n must be positive")
        if self.drift_at is not None and not self._drifted and self.emitted >= self.drift_at:
            self._concept = self._draw_concept()
            self._drifted = True
        X = self.rng.integers(0, 2, size=(n, self.d), dtype=np.uint8)
        y = self.true_label(X)
        if self.noise:
            flips = self.rng.random(n) < self.noise
            y = y ^ flips.astype(np.uint8)
        self.emitted += n
        return X, y


def partition_stream(
    X: np.ndarray, y: np.ndarray, k: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split one batch into ``k`` disjoint contiguous partitions.

    Models the paper's setting where stream segments are mined on
    different (mobile) devices; partitions differ in content, which is
    why naive model averaging underperforms and spectrum aggregation is
    interesting.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if len(X) < k:
        raise ValueError("fewer examples than partitions")
    xs = np.array_split(np.asarray(X), k)
    ys = np.array_split(np.asarray(y), k)
    return list(zip(xs, ys))
