"""Walsh/Fourier spectra of boolean functions.

A boolean function f: {0,1}^d -> {-1,+1} decomposes over the parity
basis: ``f(x) = sum_S w_S * chi_S(x)`` with ``chi_S(x) = (-1)^{x . S}``.
Decision trees of depth k have spectra concentrated on |S| <= k
(Kargupta & Park's key observation), so a few dominant coefficients
capture the tree -- those coefficients are what the mobile devices ship
instead of raw data or whole models.

The transform is the fast Walsh-Hadamard transform, O(n log n) in the
table size n = 2^d, vectorized with numpy.
"""

from __future__ import annotations

import typing

import numpy as np

#: Largest d for which exact spectra are computed (2^16 table entries).
MAX_EXACT_D = 16


def all_inputs(d: int) -> np.ndarray:
    """The full domain {0,1}^d as a ``(2^d, d)`` uint8 array.

    Row ``i`` is the binary expansion of ``i`` with feature 0 as the most
    significant bit, matching :func:`walsh_hadamard`'s index convention.
    """
    if not 1 <= d <= MAX_EXACT_D:
        raise ValueError(f"d must be in [1, {MAX_EXACT_D}]")
    idx = np.arange(2**d, dtype=np.uint32)
    bits = (idx[:, None] >> np.arange(d - 1, -1, -1)[None, :]) & 1
    return bits.astype(np.uint8)


def walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """Normalized fast Walsh-Hadamard transform.

    ``values`` is the ±1 truth table of length 2^d (index convention of
    :func:`all_inputs`).  Returns the coefficient vector ``w`` with
    ``w[S] = E_x[f(x) * chi_S(x)]``; the transform is an involution up to
    the 1/n normalization, so ``walsh_hadamard(walsh_hadamard(v) * n) == v``.
    """
    v = np.asarray(values, dtype=np.float64).copy()
    n = len(v)
    if n == 0 or n & (n - 1):
        raise ValueError("length must be a positive power of two")
    h = 1
    while h < n:
        v = v.reshape(-1, 2, h)
        top = v[:, 0, :] + v[:, 1, :]
        bot = v[:, 0, :] - v[:, 1, :]
        v = np.stack([top, bot], axis=1).reshape(-1)
        h *= 2
    return v / n


def spectrum_of(predict: typing.Callable[[np.ndarray], np.ndarray], d: int) -> np.ndarray:
    """Exact spectrum of a {0,1}-valued predictor over {0,1}^d.

    The predictor's outputs are mapped 0 -> +1, 1 -> -1 (the standard
    boolean-analysis sign convention).
    """
    X = all_inputs(d)
    table = 1.0 - 2.0 * np.asarray(predict(X), dtype=np.float64)
    return walsh_hadamard(table)


def truncate_spectrum(spectrum: np.ndarray, k: int) -> np.ndarray:
    """Keep the ``k`` largest-magnitude coefficients, zeroing the rest.

    This is the "choosing the dominant components" step; ties broken by
    index for determinism.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    w = np.asarray(spectrum, dtype=np.float64)
    if k >= len(w):
        return w.copy()
    order = np.lexsort((np.arange(len(w)), -np.abs(w)))
    out = np.zeros_like(w)
    keep = order[:k]
    out[keep] = w[keep]
    return out


class FourierFunction:
    """A classifier defined by (possibly truncated) Fourier coefficients.

    Evaluation reconstructs the ±1 table by inverse WHT once, then
    predicts by table lookup -- exact and fast for d <= 16.
    """

    def __init__(self, spectrum: np.ndarray, d: int) -> None:
        w = np.asarray(spectrum, dtype=np.float64)
        if len(w) != 2**d:
            raise ValueError("spectrum length must be 2^d")
        self.d = d
        self.spectrum = w
        # inverse transform: the WHT is an involution up to the 1/n
        # normalization, so applying it again and scaling by n recovers
        # the +-1 table values
        self._table_sign = walsh_hadamard(w) * len(w)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels in {0, 1}; sign threshold at 0 (ties -> label 0)."""
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValueError(f"X must be (n, {self.d})")
        weights = 1 << np.arange(self.d - 1, -1, -1, dtype=np.uint32)
        idx = (X.astype(np.uint32) @ weights).astype(np.intp)
        return (self._table_sign[idx] < 0.0).astype(np.uint8)

    def nonzero_coefficients(self) -> int:
        """Number of retained (nonzero) coefficients."""
        return int(np.count_nonzero(self.spectrum))

    def size_bits(self, bits_per_coeff: float = 64.0) -> float:
        """Wire size of the truncated spectrum (index + value per coeff)."""
        return self.nonzero_coefficients() * bits_per_coeff
