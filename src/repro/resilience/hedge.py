"""Hedged requests: duplicate slow work to a backup, take the first answer.

The tail-tolerance trick from "The Tail at Scale": if the primary
request has not answered within a latency budget (typically a high
percentile of observed latencies), launch the same request against a
second provider and accept whichever finishes first.  Losers are simply
ignored -- in this callback-style codebase that means their completions
hit a guard and drop.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.simkernel import Simulator, TimeSeries


@dataclasses.dataclass(frozen=True)
class Hedge:
    """Hedging policy: when and how many backups to launch.

    Parameters
    ----------
    delay_s:
        Launch a backup once the primary has been outstanding this long.
    max_hedges:
        How many backups may be launched per call (total requests is
        ``1 + max_hedges``).
    """

    delay_s: float = 5.0
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay_s <= 0:
            raise ValueError("delay_s must be positive")
        if self.max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")

    @classmethod
    def from_percentile(cls, series: TimeSeries, pct: float = 95.0,
                        floor_s: float = 0.1, max_hedges: int = 1) -> "Hedge":
        """Build a policy whose delay is a percentile of observed
        latencies (the canonical choice); ``floor_s`` guards empty or
        degenerate series."""
        delay = max(series.percentile(pct), floor_s) if len(series) else floor_s
        return cls(delay_s=delay, max_hedges=max_hedges)


class HedgedCall:
    """One hedged invocation: first result wins, stragglers are dropped.

    Parameters
    ----------
    sim:
        Shared simulator (drives the hedge timer).
    hedge:
        The policy (delay and backup count).
    launch:
        ``launch(wave, done)`` starts request wave ``wave`` (0 = primary)
        and must eventually call ``done(result)``; waves after the first
        are only started if the earlier ones have not completed.  A
        launch may decline (no backup available) by simply not calling
        ``done``.
    on_complete:
        Called exactly once, with the first result delivered.
    tracer:
        Span/event sink; hedge waves after the primary emit a
        ``resilience.hedge`` event.
    """

    def __init__(
        self,
        sim: Simulator,
        hedge: Hedge,
        launch: typing.Callable[[int, typing.Callable[[typing.Any], None]], None],
        on_complete: typing.Callable[[typing.Any], None],
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.hedge = hedge
        self._launch = launch
        self._on_complete = on_complete
        self.done = False
        self.waves = 0
        self.won_by: int | None = None
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    def start(self) -> None:
        """Fire the primary request and arm the hedge timer."""
        self._fire(0)

    def _fire(self, wave: int) -> None:
        if self.done:
            return
        self.waves = wave + 1
        if wave > 0 and self.tracer.enabled:
            self.tracer.event("resilience.hedge", kind="call", wave=wave)
        self._launch(wave, lambda result, _w=wave: self._finish(_w, result))
        if wave < self.hedge.max_hedges:
            self.sim.schedule(self.hedge.delay_s, lambda: self._fire(wave + 1),
                              label=f"hedge:{wave + 1}")

    def _finish(self, wave: int, result: typing.Any) -> None:
        if self.done:
            return
        self.done = True
        self.won_by = wave
        self._on_complete(result)
