"""Resilience primitives: retries, circuit breakers, hedged requests.

The counterpart of :mod:`repro.faults`: where that package breaks the
system on schedule, this one supplies the standard recovery patterns the
paper's "fault tolerant compositions" (§3) need -- bounded exponential
backoff with jitter (:class:`RetryPolicy`), per-provider circuit
breakers that stop re-binding to flapping hosts (:class:`CircuitBreaker`
/ :class:`BreakerBoard`), and tail-latency hedging (:class:`Hedge` /
:class:`HedgedCall`).
"""

from repro.resilience.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.hedge import Hedge, HedgedCall
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "Hedge",
    "HedgedCall",
    "RetryPolicy",
]
