"""Retry budgets with exponential backoff and jitter.

A :class:`RetryPolicy` is a frozen value object shared freely between
components; all mutable state (attempt number, previous delay, elapsed
time) lives with the caller.  Jitter follows the well-known "exponential
backoff and jitter" analysis: *decorrelated* jitter draws each delay from
``uniform(base, prev * 3)``, *full* jitter from ``uniform(0, ceiling)``;
``"none"`` keeps the deterministic exponential ceiling (also used when
the caller passes no RNG, preserving reproducibility by default).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

_JITTER_MODES = ("none", "full", "decorrelated")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry budget: at most ``max_attempts`` tries within
    ``max_elapsed_s`` of the first one, with exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries allowed, the first one included (so 1 = no retries).
    base_delay_s / max_delay_s / multiplier:
        Backoff ceiling for attempt *n* (1-based) is
        ``min(base * multiplier**(n-1), max_delay_s)``.
    jitter:
        ``"none"``, ``"full"``, or ``"decorrelated"``.
    max_elapsed_s:
        Wall-clock (virtual time) budget across all attempts;
        ``inf`` = unbounded.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    multiplier: float = 2.0
    jitter: str = "decorrelated"
    max_elapsed_s: float = math.inf

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in _JITTER_MODES:
            raise ValueError(f"jitter must be one of {_JITTER_MODES}")
        if self.max_elapsed_s <= 0:
            raise ValueError("max_elapsed_s must be positive")

    # ------------------------------------------------------------------
    def allows(self, attempt: int, elapsed_s: float = 0.0) -> bool:
        """True iff attempt number ``attempt`` (1-based) may start after
        ``elapsed_s`` seconds since the first attempt began."""
        return attempt <= self.max_attempts and elapsed_s < self.max_elapsed_s

    def ceiling(self, attempt: int) -> float:
        """Un-jittered backoff ceiling before attempt ``attempt`` (>= 2)."""
        exp = max(attempt - 2, 0)
        return min(self.base_delay_s * self.multiplier**exp, self.max_delay_s)

    def next_delay(
        self,
        attempt: int,
        rng: np.random.Generator | None = None,
        prev_delay_s: float | None = None,
    ) -> float:
        """Delay to sleep before attempt ``attempt`` (1-based, >= 2).

        With no ``rng`` the deterministic ceiling is returned regardless
        of the jitter mode.  ``prev_delay_s`` feeds the decorrelated
        recurrence; ``None`` restarts it from ``base_delay_s``.
        """
        if attempt < 2:
            return 0.0
        ceiling = self.ceiling(attempt)
        if rng is None or self.jitter == "none":
            return ceiling
        if self.jitter == "full":
            return float(rng.uniform(0.0, ceiling))
        prev = self.base_delay_s if prev_delay_s is None else prev_delay_s
        hi = max(prev * 3.0, self.base_delay_s)
        return min(float(rng.uniform(self.base_delay_s, hi)), self.max_delay_s)
