"""Per-provider circuit breakers.

A flapping host makes the composition manager waste a full per-attempt
timeout every time it re-binds to it.  The breaker remembers: after
``failure_threshold`` consecutive failures the circuit *opens* and the
provider is excluded from binding; after ``recovery_timeout_s`` it goes
*half-open*, letting exactly one trial request through -- success closes
the circuit, failure re-opens it for another full timeout.

State transitions are driven lazily off ``sim.now`` (no scheduled
events), so breakers are free until consulted and never keep an idle
simulation alive.
"""

from __future__ import annotations

from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.simkernel import Monitor, Simulator

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed / open / half-open breaker for one provider.

    Parameters
    ----------
    sim:
        Clock source (virtual time decides open -> half-open).
    failure_threshold:
        Consecutive failures that open the circuit.
    recovery_timeout_s:
        How long an open circuit blocks before probing again.
    name:
        Provider name, for diagnostics.
    """

    def __init__(
        self,
        sim: Simulator,
        failure_threshold: int = 3,
        recovery_timeout_s: float = 60.0,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout_s <= 0:
            raise ValueError("recovery_timeout_s must be positive")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.name = name
        self._state = CLOSED
        self._failures = 0
        self._opened_at = -1.0
        self._probing = False
        self.trips = 0
        #: Span/event sink (wired by :class:`BreakerBoard` when it has one).
        self.tracer = NOOP_TRACER

    def _transition(self, to_state: str) -> None:
        if self.tracer.enabled:
            self.tracer.event("resilience.breaker_transition", provider=self.name,
                              from_state=self._state, to_state=to_state)
        self._state = to_state

    # ------------------------------------------------------------------
    def _poll(self) -> None:
        if self._state == OPEN and self.sim.now - self._opened_at >= self.recovery_timeout_s:
            self._transition(HALF_OPEN)
            self._probing = False

    @property
    def state(self) -> str:
        """Current state after lazy open -> half-open promotion."""
        self._poll()
        return self._state

    @property
    def blocked(self) -> bool:
        """True while requests must not be routed to this provider.

        Read-only: never consumes the half-open probe slot, so binders
        can consult every provider's breaker without side effects.
        """
        state = self.state
        if state == OPEN:
            return True
        if state == HALF_OPEN:
            return self._probing  # one probe in flight: hold further traffic
        return False

    def allow(self) -> bool:
        """Ask to send one request now.  In half-open state this consumes
        the single probe slot, so call it only when actually sending."""
        state = self.state
        if state == OPEN:
            return False
        if state == HALF_OPEN:
            if self._probing:
                return False
            self._probing = True
        return True

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """Provider answered: close the circuit, reset failure count."""
        self._poll()
        if self._state != CLOSED:
            self._transition(CLOSED)
        self._failures = 0
        self._probing = False

    def record_failure(self) -> bool:
        """Provider failed (timeout, error, churned away).

        Returns True when this failure tripped the circuit open.
        """
        self._poll()
        if self._state == HALF_OPEN:
            # failed probe: straight back to open for a fresh timeout
            self._transition(OPEN)
            self._opened_at = self.sim.now
            self._probing = False
            self.trips += 1
            return True
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.failure_threshold:
            self._transition(OPEN)
            self._opened_at = self.sim.now
            self.trips += 1
            return True
        return False


class BreakerBoard:
    """Lazily-created :class:`CircuitBreaker` per provider name.

    Trips are counted in the shared monitor (``resilience.breaker.trips``)
    when one is attached.
    """

    def __init__(self, sim: Simulator, monitor: Monitor | None = None,
                 tracer: Tracer | None = None, **breaker_kwargs) -> None:
        self.sim = sim
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.breaker_kwargs = breaker_kwargs
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, provider: str) -> CircuitBreaker:
        """The breaker for ``provider``, created on first use."""
        breaker = self._breakers.get(provider)
        if breaker is None:
            breaker = CircuitBreaker(self.sim, name=provider, **self.breaker_kwargs)
            breaker.tracer = self.tracer
            self._breakers[provider] = breaker
        return breaker

    def blocked_providers(self) -> set[str]:
        """Names of all providers whose breaker currently blocks traffic."""
        return {name for name, b in self._breakers.items() if b.blocked}

    def record_success(self, provider: str) -> None:
        """Report one success for ``provider``."""
        self.get(provider).record_success()

    def record_failure(self, provider: str) -> None:
        """Report one failure for ``provider``; counts trips in the monitor."""
        if self.get(provider).record_failure() and self.monitor is not None:
            self.monitor.counter("resilience.breaker.trips").add(1)

    def __len__(self) -> int:
        return len(self._breakers)
