"""Sensor network substrate.

Simulates the paper's Figure-1 deployment: sensors embedded in an
environment sampling a physical field, a base station bridging to the
wired grid, and handheld devices posing queries.

* :mod:`~repro.sensors.field` -- synthetic physical phenomena (building
  fires, toxin plumes) standing in for the real sensors the paper assumes.
* :mod:`~repro.sensors.node` -- sensor nodes with batteries and noisy
  sampling.
* :mod:`~repro.sensors.deployment` -- :class:`SensorDeployment`, the
  façade that wires sensors + base station + handhelds into one
  :class:`~repro.network.network.WirelessNetwork` over one topology.
"""

from repro.sensors.field import (
    ScalarField,
    UniformField,
    HotspotField,
    FireField,
    PlumeField,
)
from repro.sensors.node import SensorNode, Reading
from repro.sensors.deployment import SensorDeployment
from repro.sensors.streaming import SensorStreamAgent, StreamCollectorAgent

__all__ = [
    "SensorStreamAgent",
    "StreamCollectorAgent",
    "ScalarField",
    "UniformField",
    "HotspotField",
    "FireField",
    "PlumeField",
    "SensorNode",
    "Reading",
    "SensorDeployment",
]
