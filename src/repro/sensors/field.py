"""Synthetic physical fields sampled by the sensors.

The paper assumes real environmental sensors (temperature in a burning
building, toxin concentrations).  We substitute analytic scalar fields
with the spatial/temporal structure those phenomena have -- smooth
backgrounds plus localized, time-evolving hotspots -- so every code path
(streaming readings, in-network aggregation, PDE boundary data) is
exercised by realistic-looking data.  All field evaluation is vectorized
over query positions.
"""

from __future__ import annotations

import dataclasses

import numpy as np


class ScalarField:
    """A scalar function of (position, time).

    Subclasses implement :meth:`sample_at` for an ``(n, 2)`` position
    array; :meth:`value_at` is the scalar convenience wrapper.
    """

    def sample_at(self, positions: np.ndarray, t: float) -> np.ndarray:
        """Field values at each row of ``positions`` at time ``t``."""
        raise NotImplementedError

    def value_at(self, position: np.ndarray, t: float) -> float:
        """Field value at one point."""
        return float(self.sample_at(np.asarray(position, dtype=np.float64)[None, :], t)[0])


@dataclasses.dataclass
class UniformField(ScalarField):
    """A spatially constant field with optional linear drift in time."""

    level: float = 20.0
    drift_per_s: float = 0.0

    def sample_at(self, positions: np.ndarray, t: float) -> np.ndarray:
        n = np.asarray(positions).shape[0]
        return np.full(n, self.level + self.drift_per_s * t)


@dataclasses.dataclass(frozen=True)
class Hotspot:
    """One Gaussian hotspot: ``amp * growth(t) * exp(-|x-c|^2 / (2 sigma^2))``.

    ``growth_rate`` makes the amplitude rise as ``1 - exp(-rate * (t - t0))``
    after ignition time ``t0`` (a fire that flares up), saturating at
    ``amplitude``.
    """

    center: tuple[float, float]
    amplitude: float
    sigma_m: float
    t0: float = 0.0
    growth_rate: float = 0.05

    def evaluate(self, positions: np.ndarray, t: float) -> np.ndarray:
        if t < self.t0:
            return np.zeros(positions.shape[0])
        c = np.asarray(self.center, dtype=np.float64)
        d2 = np.sum((positions - c[None, :]) ** 2, axis=1)
        growth = 1.0 - np.exp(-self.growth_rate * (t - self.t0))
        return self.amplitude * growth * np.exp(-d2 / (2.0 * self.sigma_m**2))


class HotspotField(ScalarField):
    """Background level plus a sum of Gaussian hotspots."""

    def __init__(self, background: float, hotspots: list[Hotspot]) -> None:
        self.background = background
        self.hotspots = list(hotspots)

    def sample_at(self, positions: np.ndarray, t: float) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.float64)
        total = np.full(pos.shape[0], self.background)
        for h in self.hotspots:
            total += h.evaluate(pos, t)
        return total


class FireField(HotspotField):
    """A building fire: ambient 20 °C plus growing fire seats.

    Parameters
    ----------
    area_m:
        Side of the square building footprint; fire seats are placed
        inside it.
    n_seats:
        Number of independent ignition points.
    rng:
        Random source for seat placement/intensity (named stream).
    peak_c:
        Saturation temperature of the hottest seat.
    """

    def __init__(
        self,
        area_m: float,
        rng: np.random.Generator,
        n_seats: int = 2,
        ambient_c: float = 20.0,
        peak_c: float = 800.0,
    ) -> None:
        if n_seats < 1:
            raise ValueError("need at least one fire seat")
        seats = []
        for i in range(n_seats):
            center = tuple(rng.uniform(0.2 * area_m, 0.8 * area_m, size=2))
            amplitude = float(rng.uniform(0.5, 1.0) * peak_c)
            sigma = float(rng.uniform(0.1, 0.25) * area_m)
            t0 = float(rng.uniform(0.0, 30.0)) if i > 0 else 0.0
            seats.append(Hotspot(center=center, amplitude=amplitude, sigma_m=sigma, t0=t0))
        super().__init__(background=ambient_c, hotspots=seats)
        self.area_m = area_m


class PlumeField(ScalarField):
    """A drifting Gaussian toxin plume (the health-monitoring scenario).

    The plume centre advects with a constant wind; concentration decays
    exponentially with a half-life and spreads (sigma grows) over time.
    """

    def __init__(
        self,
        source: tuple[float, float],
        wind_m_s: tuple[float, float] = (0.5, 0.1),
        initial_mass: float = 100.0,
        sigma0_m: float = 10.0,
        spread_m_s: float = 0.2,
        half_life_s: float = 600.0,
    ) -> None:
        if sigma0_m <= 0 or half_life_s <= 0:
            raise ValueError("sigma0_m and half_life_s must be positive")
        self.source = np.asarray(source, dtype=np.float64)
        self.wind = np.asarray(wind_m_s, dtype=np.float64)
        self.initial_mass = initial_mass
        self.sigma0_m = sigma0_m
        self.spread_m_s = spread_m_s
        self.half_life_s = half_life_s

    def sample_at(self, positions: np.ndarray, t: float) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.float64)
        center = self.source + self.wind * t
        sigma = self.sigma0_m + self.spread_m_s * t
        mass = self.initial_mass * 0.5 ** (t / self.half_life_s)
        d2 = np.sum((pos - center[None, :]) ** 2, axis=1)
        peak = mass / (2.0 * np.pi * sigma**2)
        return peak * np.exp(-d2 / (2.0 * sigma**2))
