"""Sensor data streams as agent subscriptions.

"extremely low cost sensors ... could constantly monitor the environment
and generate data streams over wireless networks" (§1); the proactive
health/defense scenarios *mine these streams*, so the agent layer needs a
publish/subscribe primitive.

:class:`SensorStreamAgent` fronts one sensor: subscribers send a
``SUBSCRIBE`` speech act with their desired period; the agent samples its
sensor every period and INFORMs each subscriber with the reading (over
whatever deputy the subscriber has -- wireless subscribers pay wireless
costs).  Publication stops automatically when the sensor's battery dies.

:class:`StreamCollectorAgent` is the matching consumer: it buffers
incoming readings and fires a batch callback every ``batch_size``
readings -- the bridge into :mod:`repro.datamining`.
"""

from __future__ import annotations

import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.sensors.deployment import SensorDeployment
from repro.sensors.node import Reading
from repro.simkernel import Simulator


class SensorStreamAgent(Agent):
    """Publishes one sensor's readings to subscribers.

    Parameters
    ----------
    name:
        Agent name.
    deployment:
        The sensor network (sampling pays real battery energy).
    sensor_id:
        Which sensor this agent fronts.
    min_period_s:
        Floor on the subscription period (radio duty-cycle protection).
    """

    def __init__(
        self,
        name: str,
        deployment: SensorDeployment,
        sensor_id: int,
        min_period_s: float = 0.1,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.SENSOR, host_kind="sensor"))
        if min_period_s <= 0:
            raise ValueError("min_period_s must be positive")
        self.deployment = deployment
        self.sensor_id = sensor_id
        self.min_period_s = min_period_s
        self._subscribers: dict[str, float] = {}  # name -> period
        self._ticking: set[str] = set()
        self.published = 0

    @property
    def sim(self) -> Simulator:
        return self.deployment.sim

    def setup(self) -> None:
        self.on(Performative.SUBSCRIBE, self._handle_subscribe)

    # ------------------------------------------------------------------
    def _handle_subscribe(self, msg: ACLMessage) -> None:
        content = msg.content if isinstance(msg.content, dict) else {}
        action = content.get("action", "subscribe")
        if action == "unsubscribe":
            self._subscribers.pop(msg.sender, None)
            self.reply(msg, Performative.INFORM, {"subscribed": False})
            return
        period = max(float(content.get("period_s", 1.0)), self.min_period_s)
        fresh = msg.sender not in self._subscribers
        self._subscribers[msg.sender] = period
        self.reply(msg, Performative.INFORM, {"subscribed": True, "period_s": period})
        if fresh and msg.sender not in self._ticking:
            self._ticking.add(msg.sender)
            self._tick(msg.sender)

    def _tick(self, subscriber: str) -> None:
        period = self._subscribers.get(subscriber)
        if period is None:
            self._ticking.discard(subscriber)
            return
        if self.platform is None or not self.deployment.topology.is_alive(self.sensor_id):
            self._ticking.discard(subscriber)
            self._subscribers.pop(subscriber, None)
            return
        reading = self.deployment.sample_sensor(self.sensor_id)
        if reading is not None:
            self.send(
                subscriber,
                ACLMessage(Performative.INFORM, sender=self.name, receiver=subscriber,
                           content={"kind": "reading", "reading": reading}),
                size_bits=Reading.SIZE_BITS,
            )
            self.published += 1
        self.sim.schedule(period, lambda: self._tick(subscriber),
                          label=f"stream:{self.name}->{subscriber}")


class StreamCollectorAgent(Agent):
    """Buffers subscribed readings and emits batches.

    Parameters
    ----------
    name:
        Agent name.
    batch_size:
        Readings per batch callback.
    on_batch:
        Called with ``list[Reading]`` when a batch fills.
    """

    def __init__(
        self,
        name: str,
        batch_size: int = 16,
        on_batch: typing.Callable[[list[Reading]], None] | None = None,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.CLIENT))
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.on_batch = on_batch
        self.readings: list[Reading] = []
        self.batches = 0

    def setup(self) -> None:
        self.on(Performative.INFORM, self._handle_inform)

    def subscribe_to(self, stream_agent: str, period_s: float = 1.0) -> None:
        """Send the SUBSCRIBE speech act to a stream agent."""
        self.ask(stream_agent, Performative.SUBSCRIBE,
                 {"action": "subscribe", "period_s": period_s})

    def unsubscribe_from(self, stream_agent: str) -> None:
        """Stop a subscription."""
        self.ask(stream_agent, Performative.SUBSCRIBE, {"action": "unsubscribe"})

    def _handle_inform(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict) or content.get("kind") != "reading":
            return
        self.readings.append(content["reading"])
        if len(self.readings) % self.batch_size == 0:
            self.batches += 1
            if self.on_batch is not None:
                self.on_batch(self.readings[-self.batch_size:])
