"""The deployed sensor network of Figure 1.

:class:`SensorDeployment` assembles the full in-building picture: sensor
nodes on a lattice (or random scatter), one mains-powered base station,
zero or more handheld devices, all sharing one topology and one wireless
network, sampling one physical field.  Query-execution models
(:mod:`repro.queries.models`) operate on a deployment.
"""

from __future__ import annotations


import numpy as np

from repro.simkernel import Monitor, RandomStreams, Simulator
from repro.network.energy import Battery, RadioEnergyModel
from repro.network.mobility import grid_positions, random_positions
from repro.network.network import WirelessNetwork
from repro.network.radio import RadioModel
from repro.network.topology import Topology
from repro.sensors.field import ScalarField, UniformField
from repro.sensors.node import Reading, SensorNode


class SensorDeployment:
    """Sensors + base station + handhelds on one wireless substrate.

    Node-id layout: sensors occupy ids ``0 .. n_sensors-1``, the base
    station is ``n_sensors``, handhelds follow.  The base station and
    handhelds have infinite batteries (mains / user-rechargeable); only
    sensors die.

    Parameters
    ----------
    n_sensors:
        Number of sensor nodes.
    area_m:
        Side of the square deployment area.
    field:
        The physical phenomenon being sensed.
    placement:
        ``"grid"`` (deterministic lattice) or ``"random"``.
    battery_j:
        Initial charge of each sensor battery, joules.
    base_position:
        Where the base station sits (default: area centre edge).
    n_handhelds:
        Number of handheld devices (placed near the base station).
    radio:
        Link model shared by all nodes (default mote radio scaled so the
        lattice is connected).
    """

    def __init__(
        self,
        n_sensors: int,
        area_m: float,
        field: ScalarField | None = None,
        *,
        sim: Simulator | None = None,
        streams: RandomStreams | None = None,
        placement: str = "grid",
        battery_j: float = 1.0,
        base_position: tuple[float, float] | None = None,
        n_handhelds: int = 1,
        radio: RadioModel | None = None,
        energy_model: RadioEnergyModel | None = None,
        noise_std: float = 0.5,
        attribute: str = "temperature",
    ) -> None:
        if n_sensors < 1:
            raise ValueError("need at least one sensor")
        self.sim = sim or Simulator()
        self.streams = streams or RandomStreams(0)
        self.field = field or UniformField(20.0)
        self.area_m = float(area_m)
        self.n_sensors = n_sensors
        self.n_handhelds = n_handhelds
        self.attribute = attribute

        if placement == "grid":
            sensor_pos = grid_positions(n_sensors, area_m)
        elif placement == "random":
            sensor_pos = random_positions(n_sensors, area_m, self.streams.get("placement"))
        else:
            raise ValueError(f"unknown placement {placement!r}")

        if base_position is None:
            base_position = (area_m / 2.0, -0.05 * area_m)
        base = np.asarray(base_position, dtype=np.float64)[None, :]
        hh_rng = self.streams.get("handhelds")
        handhelds = base + hh_rng.uniform(-0.05 * area_m, 0.05 * area_m, size=(n_handhelds, 2))
        positions = np.vstack([sensor_pos, base, handhelds])

        if radio is None:
            # scale the mote range so the lattice plus base station form a
            # connected graph regardless of n/area
            side = int(np.ceil(np.sqrt(n_sensors)))
            spacing = area_m / max(side - 1, 1)
            radio = RadioModel(
                bandwidth_bps=250_000.0,
                latency_s=0.01,
                loss_prob=0.0,
                range_m=max(spacing * 1.6, 0.12 * area_m),
            )
        self.radio = radio
        self.energy_model = energy_model or RadioEnergyModel()

        self.topology = Topology(positions, range_m=radio.range_m)
        batteries = [Battery(battery_j) for _ in range(n_sensors)]
        batteries += [Battery(float("inf")) for _ in range(1 + n_handhelds)]
        self.monitor = Monitor()
        self.network = WirelessNetwork(
            self.sim,
            self.topology,
            radio,
            self.energy_model,
            batteries=batteries,
            rng=self.streams.get("radio-loss"),
            monitor=self.monitor,
        )

        noise_rng = self.streams.get("sensor-noise")
        self.sensors = [
            SensorNode(
                i,
                positions[i],
                batteries[i],
                self.energy_model,
                noise_rng,
                noise_std=noise_std,
                attribute=attribute,
            )
            for i in range(n_sensors)
        ]

    # ------------------------------------------------------------------
    # id layout
    # ------------------------------------------------------------------
    @property
    def base_station_id(self) -> int:
        """Topology id of the base station."""
        return self.n_sensors

    @property
    def handheld_ids(self) -> list[int]:
        """Topology ids of the handheld devices."""
        first = self.n_sensors + 1
        return list(range(first, first + self.n_handhelds))

    @property
    def sensor_ids(self) -> list[int]:
        """Topology ids of all sensors (dead ones included)."""
        return list(range(self.n_sensors))

    def alive_sensor_ids(self) -> list[int]:
        """Ids of sensors whose batteries are not depleted."""
        return [s.node_id for s in self.sensors if s.alive and self.topology.is_alive(s.node_id)]

    # ------------------------------------------------------------------
    # sensing
    # ------------------------------------------------------------------
    def sample_all(self, t: float | None = None) -> list[Reading]:
        """One reading from every living sensor at time ``t`` (default now).

        Field evaluation and noise are vectorized: one ``field.sample_at``
        over every eligible position plus one ``rng.normal(0, std, k)``
        draw, instead of per-sensor scalar calls.  Results are bit
        identical to the scalar path -- field evaluation is elementwise,
        and numpy Generators emit the same stream for one size-k draw as
        for k scalar draws -- so the fast path is taken whenever the fleet
        is homogeneous (shared noise rng and one ``noise_std``, which is
        how this class builds it); heterogeneous fleets fall back to the
        per-sensor loop.
        """
        time = self.sim.now if t is None else t
        topology = self.topology
        eligible = [
            s for s in self.sensors if topology.is_alive(s.node_id) and s.alive
        ]
        if eligible:
            rng = eligible[0].rng
            std = eligible[0].noise_std
            homogeneous = all(
                s.rng is rng and s.noise_std == std for s in eligible
            )
        else:
            homogeneous = True
        if not homogeneous:
            readings = []
            for sensor in self.sensors:
                if topology.is_alive(sensor.node_id):
                    reading = sensor.sample(self.field, time)
                    if reading is not None:
                        readings.append(reading)
                    if sensor.battery.depleted:
                        topology.kill(sensor.node_id)
            return readings

        readings = []
        if eligible:
            positions = np.stack([s.position for s in eligible])
            values = self.field.sample_at(positions, time)
            # std == 0 must not touch the stream (the scalar path skips
            # the draw entirely in that case)
            noise = rng.normal(0.0, std, len(eligible)) if std else None
            for j, sensor in enumerate(eligible):
                sensor.battery.draw(sensor.energy_model.sense_cost())
                sensor.samples_taken += 1
                # identical float op to the scalar path, 0.0 included
                # (-0.0 + 0.0 flips sign, so the add is never skipped)
                value = float(values[j]) + (float(noise[j]) if noise is not None else 0.0)
                readings.append(
                    Reading(sensor_id=sensor.node_id, time=time,
                            value=value, attribute=sensor.attribute)
                )
                if sensor.battery.depleted:
                    topology.kill(sensor.node_id)
        # sensors already battery-dead but not yet reflected in the
        # topology: the scalar path killed these as it swept past them
        for sensor in self.sensors:
            if not sensor.alive and topology.is_alive(sensor.node_id):
                topology.kill(sensor.node_id)
        return readings

    def sample_sensor(self, sensor_id: int, t: float | None = None) -> Reading | None:
        """One reading from one sensor (None if dead)."""
        if not self.topology.is_alive(sensor_id):
            return None
        time = self.sim.now if t is None else t
        reading = self.sensors[sensor_id].sample(self.field, time)
        if self.sensors[sensor_id].battery.depleted:
            self.topology.kill(sensor_id)
        return reading

    def true_values(self, t: float | None = None) -> np.ndarray:
        """Noise-free field values at every sensor position (ground truth).

        Free of charge -- used by accuracy experiments, not by protocols.
        """
        time = self.sim.now if t is None else t
        pos = self.topology.positions[: self.n_sensors]
        return self.field.sample_at(pos, time)

    # ------------------------------------------------------------------
    # energy bookkeeping
    # ------------------------------------------------------------------
    def total_sensor_energy_consumed(self) -> float:
        """Joules drawn from all sensor batteries so far."""
        return sum(s.battery.consumed for s in self.sensors)

    def min_sensor_fraction_remaining(self) -> float:
        """Charge fraction of the weakest living sensor (0 if any died)."""
        return min(s.battery.fraction_remaining for s in self.sensors)

    def dead_sensor_count(self) -> int:
        """Number of sensors whose batteries are depleted."""
        return sum(1 for s in self.sensors if not s.alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SensorDeployment(n={self.n_sensors}, area={self.area_m} m, "
            f"alive={len(self.alive_sensor_ids())})"
        )
