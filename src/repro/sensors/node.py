"""Sensor nodes and readings."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.network.energy import Battery, RadioEnergyModel
from repro.sensors.field import ScalarField


@dataclasses.dataclass(frozen=True)
class Reading:
    """One sensor sample.

    Attributes
    ----------
    sensor_id:
        Topology node id of the sensor that took the sample.
    time:
        Virtual time of the sample.
    value:
        Measured value (field value plus sensor noise).
    attribute:
        What was measured (``"temperature"``, ``"toxin"`` ...).
    """

    sensor_id: int
    time: float
    value: float
    attribute: str = "temperature"

    #: Wire size of one encoded reading: id + timestamp + value + header.
    SIZE_BITS: float = 64.0


class SensorNode:
    """One sensing endpoint.

    The node's radio behaviour lives in the network substrate; this class
    adds the sensing side: sampling the physical field with Gaussian
    noise, paying sampling energy from the shared battery.

    Parameters
    ----------
    node_id:
        Topology node id.
    position:
        Fixed position (embedded sensors do not move).
    battery:
        Shared with the network layer -- radio and sensing both draw here.
    noise_std:
        Standard deviation of additive measurement noise.
    attribute:
        The quantity this sensor measures.
    """

    def __init__(
        self,
        node_id: int,
        position: np.ndarray,
        battery: Battery,
        energy_model: RadioEnergyModel,
        rng: np.random.Generator,
        noise_std: float = 0.5,
        attribute: str = "temperature",
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.node_id = node_id
        self.position = np.asarray(position, dtype=np.float64)
        self.battery = battery
        self.energy_model = energy_model
        self.rng = rng
        self.noise_std = noise_std
        self.attribute = attribute
        self.samples_taken = 0

    @property
    def alive(self) -> bool:
        """False once the battery is depleted."""
        return not self.battery.depleted

    def sample(self, field: ScalarField, t: float) -> Reading | None:
        """Take one sample at time ``t``; None if the node is dead.

        Draws sensing energy; a node that dies *on* this sample still
        returns the reading (the sample completed before the battery hit
        zero is the convention used by TAG-style simulators).
        """
        if not self.alive:
            return None
        self.battery.draw(self.energy_model.sense_cost())
        true_value = field.value_at(self.position, t)
        noise = float(self.rng.normal(0.0, self.noise_std)) if self.noise_std else 0.0
        self.samples_taken += 1
        return Reading(sensor_id=self.node_id, time=t, value=true_value + noise, attribute=self.attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorNode({self.node_id}, alive={self.alive})"
