"""Wall-clock hook profiling of the sim-kernel dispatch loop.

Everything else in :mod:`repro.observability` measures *simulated* time;
this module measures the other axis: where the **wall clock** goes while
the simulator grinds through its event heap.  A :class:`HookProfiler`
attaches to a :class:`~repro.simkernel.simulator.Simulator` (the
``sim.profiler`` slot, mirroring ``sim.tracer``) and times every event
dispatch, attributing self/cumulative wall time and call counts to a
*handler* (the event's label prefix, or the scheduling function's
qualname) and to the subsystem that scheduled it (derived from the
callback's module).  Instrumented code paths can additionally push
:meth:`HookProfiler.frame` frames -- nested wall-clock intervals inside
one dispatch -- so routing, decision making, and scheduling show up as
children of their events in the collapsed-stack (flamegraph) export.

Isolation invariant (the PR 4 contract)
---------------------------------------
Profiling data lives **only** on the profiler object -- never in the
:class:`~repro.simkernel.monitor.Monitor` -- so merged
:class:`~repro.parallel.TrialRunner` results stay bit-identical with
profiling enabled at any worker count: wall-clock facts ride home on
:attr:`~repro.parallel.TrialResult.profile` and are merged separately by
:func:`merge_profiles`.

Disabled cost
-------------
``sim.profiler`` defaults to ``None`` and the dispatch loop guards with
``profiler is not None and profiler.enabled`` -- one attribute load and
one identity check, no allocation (asserted by
``tests/observability/test_overhead.py``).  Frame sites use the shared
:data:`NOOP_PROFILER` / :data:`NOOP_FRAME` singletons, same discipline
as the tracer's no-ops.

Analysis happens offline: :meth:`HookProfiler.to_dict` /
:meth:`HookProfiler.write` export one JSON document that the
``python -m repro.observability.profile`` CLI renders (top-N hotspots,
per-subsystem rollups, ``--diff OLD NEW`` for before/after evidence) and
whose ``collapsed`` section feeds any flamegraph tool that speaks the
``a;b;c <count>`` collapsed-stack format.
"""

from __future__ import annotations

import json
import time
import typing

#: Profile-export schema version.
SCHEMA_VERSION = 1
#: The export's ``kind`` discriminator.
PROFILE_KIND = "hook_profile"


class _Frame:
    """Context manager pushing one named frame onto an enabled profiler."""

    __slots__ = ("_profiler", "_name", "_subsystem")

    def __init__(self, profiler: "HookProfiler", name: str,
                 subsystem: str | None) -> None:
        self._profiler = profiler
        self._name = name
        self._subsystem = subsystem

    def __enter__(self) -> "_Frame":
        self._profiler._push(self._name, self._subsystem)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._pop()


class _NoopFrame:
    """Shared do-nothing frame for disabled profilers (never allocates)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopFrame":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_FRAME = _NoopFrame()


class HookProfiler:
    """Wall-clock self/cumulative attribution per handler and subsystem.

    Parameters
    ----------
    enabled:
        When False, :meth:`frame` returns the shared :data:`NOOP_FRAME`
        and the simulator skips the dispatch hook entirely.
    clock:
        Nanosecond clock (injectable for deterministic tests); defaults
        to :func:`time.perf_counter_ns`.

    Attributes
    ----------
    events:
        Number of profiled event dispatches.

    Notes
    -----
    Attribution names are **deterministic** for a seeded run: they come
    from event labels (truncated at the first ``:`` so per-message
    labels like ``hop:42`` fold into one ``hop`` handler) or from the
    scheduling callback's ``__qualname__`` truncated at ``.<locals>``
    (so a closure scheduled inside ``Network._hop`` is attributed to
    ``Network._hop``).  Two exports of the same seeded workload
    therefore report the same hotspot names -- only the nanoseconds
    differ -- which is what makes ``--diff`` meaningful.
    """

    def __init__(self, enabled: bool = True,
                 clock: typing.Callable[[], int] = time.perf_counter_ns) -> None:
        self.enabled = enabled
        self._clock = clock
        self.events = 0
        # frame stack entries: [name, collapsed_path, start_ns, child_ns]
        self._stack: list[list] = []
        self._calls: dict[str, int] = {}
        self._self_ns: dict[str, int] = {}
        self._cum_ns: dict[str, int] = {}
        self._active: dict[str, int] = {}  # recursion guard for cum time
        self._subsystem: dict[str, str] = {}
        self._collapsed: dict[str, int] = {}  # "a;b;c" -> self ns
        self._label_memo: dict[str, str] = {}
        self._qualname_memo: dict[str, str] = {}
        self._module_memo: dict[str, str] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def frame(self, name: str, subsystem: str | None = None) -> _Frame | _NoopFrame:
        """A nested wall-clock frame (use as a context manager).

        ``subsystem`` defaults to the name's first dotted component,
        matching the tracer's span-name convention.
        """
        if not self.enabled:
            return NOOP_FRAME
        return _Frame(self, name, subsystem)

    def _push(self, name: str, subsystem: str | None = None) -> None:
        if subsystem is not None or name not in self._subsystem:
            self._subsystem[name] = (subsystem if subsystem is not None
                                     else name.split(".", 1)[0])
        path = (self._stack[-1][1] + ";" + name) if self._stack else name
        self._active[name] = self._active.get(name, 0) + 1
        self._stack.append([name, path, self._clock(), 0])

    def _pop(self) -> None:
        now = self._clock()
        name, path, start, child_ns = self._stack.pop()
        elapsed = now - start
        self_ns = elapsed - child_ns
        self._calls[name] = self._calls.get(name, 0) + 1
        self._self_ns[name] = self._self_ns.get(name, 0) + self_ns
        self._collapsed[path] = self._collapsed.get(path, 0) + self_ns
        depth = self._active[name]
        if depth == 1:
            # only the outermost occurrence accumulates cumulative time,
            # so recursive/re-entrant frames are not double-counted
            self._cum_ns[name] = self._cum_ns.get(name, 0) + elapsed
            del self._active[name]
        else:
            self._active[name] = depth - 1
        if self._stack:
            self._stack[-1][3] += elapsed

    # -- dispatch hook (called by Simulator.step) ----------------------
    def _begin_event(self, event, callback) -> None:
        """Open the dispatch frame for one event (hot path)."""
        self.events += 1
        label = event.label
        if label:
            name = self._label_memo.get(label)
            if name is None:
                name = label.split(":", 1)[0]
                self._label_memo[label] = name
            subsystem = self._subsystem_of(callback)
        else:
            qualname = getattr(callback, "__qualname__", "") or type(callback).__name__
            name = self._qualname_memo.get(qualname)
            if name is None:
                name = qualname.split(".<locals>", 1)[0]
                self._qualname_memo[qualname] = name
            subsystem = self._subsystem_of(callback)
        self._push(name, subsystem)

    def _end_event(self) -> None:
        self._pop()

    def _subsystem_of(self, callback) -> str:
        module = getattr(callback, "__module__", "") or "?"
        subsystem = self._module_memo.get(module)
        if subsystem is None:
            parts = module.split(".")
            subsystem = parts[1] if len(parts) > 1 and parts[0] == "repro" else parts[0]
            self._module_memo[module] = subsystem
        return subsystem

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct handler names seen."""
        return len(self._calls)

    def __bool__(self) -> bool:
        # truthiness must not follow __len__: the documented call-site
        # idiom ``sim.profiler or NOOP_PROFILER`` has to keep an empty
        # (fresh) profiler, not swap it for the no-op
        return True

    @property
    def total_wall_s(self) -> float:
        """Total profiled wall time (self times partition it exactly)."""
        return sum(self._self_ns.values()) * 1e-9

    def handlers(self) -> list[dict]:
        """Per-handler rows sorted by descending self time (then name)."""
        rows = [
            {
                "name": name,
                "subsystem": self._subsystem.get(name, name.split(".", 1)[0]),
                "calls": self._calls[name],
                "self_s": self._self_ns.get(name, 0) * 1e-9,
                "cum_s": self._cum_ns.get(name, 0) * 1e-9,
            }
            for name in self._calls
        ]
        rows.sort(key=lambda r: (-r["self_s"], r["name"]))
        return rows

    def collapsed_stacks(self) -> list[str]:
        """Flamegraph-compatible lines: ``frame;frame;frame <microseconds>``."""
        return [f"{path} {ns // 1000}"
                for path, ns in sorted(self._collapsed.items())]

    def to_dict(self) -> dict:
        """The whole profile as one JSON-ready document."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": PROFILE_KIND,
            "events": self.events,
            "wall_s": self.total_wall_s,
            "handlers": self.handlers(),
            "collapsed": {path: ns // 1000
                          for path, ns in sorted(self._collapsed.items())},
        }

    def write(self, path) -> int:
        """Write :meth:`to_dict` as JSON; returns the handler count."""
        doc = self.to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        return len(doc["handlers"])

    def clear(self) -> None:
        """Drop all samples (between benchmark repetitions)."""
        self.events = 0
        self._stack.clear()
        for d in (self._calls, self._self_ns, self._cum_ns, self._active,
                  self._collapsed):
            d.clear()


#: Shared disabled profiler for call sites that want ``prof.frame(...)``
#: unconditionally (``sim.profiler or NOOP_PROFILER``).
NOOP_PROFILER = HookProfiler(enabled=False)


def load_profile(path) -> dict:
    """Load and validate one profile export written by :meth:`HookProfiler.write`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != PROFILE_KIND:
        raise ValueError(f"{path}: not a profile export (kind != {PROFILE_KIND!r})")
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema {doc.get('schema')!r} "
                         f"(this reader speaks {SCHEMA_VERSION})")
    for key in ("events", "wall_s", "handlers", "collapsed"):
        if key not in doc:
            raise ValueError(f"{path}: malformed profile export (no {key!r} key)")
    return doc


def merge_profiles(profiles: typing.Iterable[dict | None]) -> dict | None:
    """Fold several profile documents into one (for sharded sweeps).

    Calls, self/cumulative times, event counts, and collapsed stacks are
    summed per name; ``None`` entries (trials that did not profile) are
    skipped.  Returns ``None`` when nothing profiled.
    """
    merged: dict[str, dict] = {}
    collapsed: dict[str, int] = {}
    events = 0
    seen = False
    for doc in profiles:
        if doc is None:
            continue
        seen = True
        events += int(doc.get("events", 0))
        for row in doc.get("handlers", ()):
            into = merged.setdefault(row["name"], {
                "name": row["name"], "subsystem": row["subsystem"],
                "calls": 0, "self_s": 0.0, "cum_s": 0.0,
            })
            into["calls"] += int(row["calls"])
            into["self_s"] += float(row["self_s"])
            into["cum_s"] += float(row["cum_s"])
        for path, us in doc.get("collapsed", {}).items():
            collapsed[path] = collapsed.get(path, 0) + int(us)
    if not seen:
        return None
    handlers = sorted(merged.values(), key=lambda r: (-r["self_s"], r["name"]))
    return {
        "schema": SCHEMA_VERSION,
        "kind": PROFILE_KIND,
        "events": events,
        "wall_s": sum(r["self_s"] for r in handlers),
        "handlers": handlers,
        "collapsed": dict(sorted(collapsed.items())),
    }


def subsystem_wall_rollup(doc: dict) -> list[dict]:
    """Per-subsystem wall-time rows from one profile document.

    Returns ``{"subsystem", "self_s", "share", "calls", "handlers"}``
    rows sorted by descending self time; shares sum to 1 of the profiled
    wall time.
    """
    total = max(float(doc.get("wall_s", 0.0)), 0.0)
    per: dict[str, dict] = {}
    for row in doc.get("handlers", ()):
        into = per.setdefault(row["subsystem"], {
            "subsystem": row["subsystem"], "self_s": 0.0,
            "calls": 0, "handlers": 0,
        })
        into["self_s"] += float(row["self_s"])
        into["calls"] += int(row["calls"])
        into["handlers"] += 1
    rows = []
    for entry in per.values():
        entry["share"] = entry["self_s"] / total if total > 0 else 0.0
        rows.append(entry)
    rows.sort(key=lambda r: (-r["self_s"], r["subsystem"]))
    return rows
