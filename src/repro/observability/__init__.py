"""End-to-end observability for the pervasive-grid simulator.

Three layers, all over *simulated* time:

* :mod:`~repro.observability.tracer` -- span-based tracing with
  parent/child causality and per-query trace ids; recording is
  append-only so instrumentation does not distort benchmarks, and the
  shared :data:`NOOP_TRACER` makes every instrumentation site free when
  tracing is off.
* :mod:`~repro.observability.metrics` -- the namespaced metric-name
  conventions unifying the :class:`~repro.simkernel.monitor.Monitor`'s
  counters/gauges/histograms/series under ``<subsystem>.<noun>`` names.
* :mod:`~repro.observability.analysis` / ``export`` / ``report`` --
  JSONL export, critical-path extraction that attributes 100% of a
  span's end-to-end latency, per-subsystem rollups, and the
  ``python -m repro.observability.report <trace.jsonl>`` CLI
  (``--format json`` for machine consumers).
* :mod:`~repro.observability.slo` -- the verdict layer: declarative
  SLOs over the canonical metrics, evaluated over sliding
  simulated-time windows by an :class:`SLOEvaluator` driven from the
  sim kernel, with alert fire/resolve on the trace and per-subsystem
  health scoring (``render_health``).
* :mod:`~repro.observability.bench` -- the benchmark trajectory:
  :class:`BenchRecorder` persists every experiment's headline metrics
  to ``BENCH_results.json``; ``python -m repro.observability.bench
  compare OLD NEW`` is the regression gate.
* :mod:`~repro.observability.dashboard` -- ``python -m
  repro.observability.dashboard <trace.jsonl>`` renders activity
  sparklines, SLO status, the alert timeline, and the query cost
  ledger from one export.
* :mod:`~repro.observability.profiling` / ``profile`` -- the *wall
  clock* axis: a :class:`HookProfiler` on the sim kernel's dispatch
  loop attributing self/cumulative wall time per handler and
  subsystem (flamegraph collapsed-stack export included), rendered by
  ``python -m repro.observability.profile`` (top-N hotspots,
  subsystem rollups, ``--diff OLD NEW``).  Profiles never touch the
  Monitor, so merged parallel results stay bit-identical.
* :mod:`~repro.observability.sketch` / ``sampling`` -- the memory
  axis: mergeable :class:`QuantileSketch` (DDSketch-style relative-error
  buckets) and multi-resolution ring-buffer series bound the Monitor's
  footprint (:class:`TelemetryConfig`), while the :class:`TraceSampler`
  (head + tail-based + seeded exemplars, :class:`SamplingConfig`) bounds
  the trace -- always keeping error/alert/slow-outlier traces -- without
  breaking the parallel runner's bit-identical reduction.
* :mod:`~repro.observability.ledger` -- the resource axis:
  :class:`QueryCostLedger` folds a trace into one record per query
  (latency, energy, bytes-on-air, hops, uplink/grid usage) for the
  Decision Maker's training pipeline and the dashboard's cost section.

Wiring: every subsystem accepts a tracer (defaulting to the no-op) and
:class:`~repro.core.runtime.PervasiveGridRuntime` owns one for the whole
stack (``PervasiveGridRuntime(..., trace=True)``).
"""

from repro.observability.tracer import (
    NOOP_SPAN,
    NOOP_TRACER,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanRecord,
    TraceEvent,
    Tracer,
)
from repro.observability.export import read_jsonl, record_from_dict, write_jsonl
from repro.observability.analysis import (
    PathSegment,
    Trace,
    critical_path,
    event_counts,
    self_times,
    subsystem_rollup,
)
from repro.observability.metrics import (
    ALIASES,
    CONVENTIONS,
    MetricSpec,
    canonical_name,
    canonical_summary,
    rollup_by_subsystem,
)
from repro.observability.ledger import QueryCost, QueryCostLedger, render_ledger
from repro.observability.sketch import (
    MultiResolutionSeries,
    QuantileSketch,
    TelemetryConfig,
)
from repro.observability.sampling import SamplingConfig, TraceSampler
from repro.observability.profiling import (
    NOOP_PROFILER,
    HookProfiler,
    load_profile,
    merge_profiles,
    subsystem_wall_rollup,
)
from repro.observability.slo import (
    SLO,
    AlertEvent,
    GridHealth,
    Signal,
    SLOEvaluator,
    SLOStatus,
    SubsystemHealth,
    breaker_slo,
    default_slos,
    render_health,
)
# bench is re-exported lazily (PEP 562): importing it here would make
# ``python -m repro.observability.bench`` execute the module twice and
# warn, since this package is imported before runpy runs the CLI.
_BENCH_EXPORTS = ("BenchRecorder", "BenchResult", "CompareReport",
                  "compare", "load_results")


def __getattr__(name):
    if name in _BENCH_EXPORTS:
        from repro.observability import bench
        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Tracer",
    "Span",
    "SpanRecord",
    "TraceEvent",
    "NOOP_TRACER",
    "NOOP_SPAN",
    "STATUS_OK",
    "STATUS_ERROR",
    "Trace",
    "PathSegment",
    "critical_path",
    "self_times",
    "subsystem_rollup",
    "event_counts",
    "write_jsonl",
    "read_jsonl",
    "record_from_dict",
    "MetricSpec",
    "CONVENTIONS",
    "ALIASES",
    "canonical_name",
    "canonical_summary",
    "rollup_by_subsystem",
    "SLO",
    "Signal",
    "SLOEvaluator",
    "SLOStatus",
    "AlertEvent",
    "GridHealth",
    "SubsystemHealth",
    "default_slos",
    "breaker_slo",
    "render_health",
    "HookProfiler",
    "NOOP_PROFILER",
    "load_profile",
    "merge_profiles",
    "subsystem_wall_rollup",
    "QueryCost",
    "QueryCostLedger",
    "render_ledger",
    "QuantileSketch",
    "MultiResolutionSeries",
    "TelemetryConfig",
    "SamplingConfig",
    "TraceSampler",
    "BenchRecorder",
    "BenchResult",
    "CompareReport",
    "compare",
    "load_results",
]
