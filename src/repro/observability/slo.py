"""Service-level objectives over the canonical metric catalog.

The paper's central claims are *service-level* statements -- queries stay
interactive, in-network execution saves energy, compositions degrade
gracefully -- but counters and traces only describe; nothing turned them
into verdicts.  This module legislates the verdict layer:

* :class:`Signal` -- how to compute one number from a
  :class:`~repro.simkernel.monitor.Monitor` over a sliding window of
  *simulated* time (counter deltas/rates, counter ratios, histogram
  percentiles, series/probe means, gauge last-values);
* :class:`SLO` -- a named objective over a signal
  (``value <= objective`` or ``value >= objective``), with a window
  length and a severity (``page`` beats ``warn``);
* :class:`SLOEvaluator` -- driven from the sim kernel
  (:meth:`~SLOEvaluator.start` schedules evaluation ticks), it ingests
  new instrument data each tick, evaluates every SLO over its window,
  and runs the alert state machine.  Alert transitions are recorded as
  ``slo.fire`` / ``slo.resolve`` trace events, counted under ``slo.*``
  monitor counters, and kept on an :attr:`~SLOEvaluator.timeline`
  exactly like the fault injector's;
* :func:`SLOEvaluator.health` -- per-subsystem health scores folded into
  a single grid verdict (``healthy`` / ``degraded`` / ``critical``);
  :func:`render_health` renders it for the examples and benchmarks.

Everything is deterministic: evaluation ticks are ordinary simulator
events, signals are pure functions of the monitor, and no wall-clock or
RNG is consulted, so the same seed always produces the same alert
timeline.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import math
import typing

import numpy as np

from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.simkernel.monitor import Monitor

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.simulator import Simulator

#: Signal kinds (how a window of samples reduces to one number).
SIGNAL_KINDS = ("delta", "rate", "ratio", "percentile", "mean", "last")
#: Alert severities, most severe first.
SEVERITIES = ("page", "warn")
#: Supported objective comparisons.
COMPARISONS = ("<=", ">=")
#: Health verdicts, best to worst.
VERDICTS = ("healthy", "degraded", "critical")


@dataclasses.dataclass(frozen=True)
class Signal:
    """One number computed from a monitor over a sliding window.

    Parameters
    ----------
    kind:
        * ``"delta"`` -- growth of counter ``source`` inside the window;
        * ``"rate"`` -- that growth divided by the window length (per s);
        * ``"ratio"`` -- counter growth of ``source`` divided by counter
          growth of ``denominator`` (``None`` while the denominator is 0);
        * ``"percentile"`` -- the ``q``-th percentile of histogram
          observations recorded inside the window;
        * ``"mean"`` -- arithmetic mean of series/probe samples inside
          the window;
        * ``"last"`` -- the most recent sample (gauges, probes).
    source:
        Monitor instrument name, or a probe name registered with
        :meth:`SLOEvaluator.probe`.  With ``prefix=True`` the source is
        a counter-name *prefix* and matching counters are summed
        (``"queries.failed."`` catches every failure reason).
    denominator:
        Second counter for ``"ratio"`` (always an exact name).
    q:
        Percentile for ``"percentile"``.
    """

    kind: str
    source: str
    denominator: str | None = None
    q: float | None = None
    prefix: bool = False

    def __post_init__(self) -> None:
        if self.kind not in SIGNAL_KINDS:
            raise ValueError(f"signal kind must be one of {SIGNAL_KINDS}")
        if self.kind == "ratio" and not self.denominator:
            raise ValueError("ratio signals need a denominator")
        if self.kind == "percentile" and self.q is None:
            raise ValueError("percentile signals need q")
        if self.prefix and self.kind not in ("delta", "rate", "ratio"):
            raise ValueError("prefix sources only make sense for counter signals")

    def sources(self) -> tuple[str, ...]:
        """Every instrument/probe this signal reads."""
        return (self.source,) if self.denominator is None else (self.source, self.denominator)


@dataclasses.dataclass(frozen=True)
class SLO:
    """A named objective: ``signal <comparison> objective`` over a window.

    The name follows the metric conventions
    (``<subsystem>.<noun>``); the subsystem prefix is what health
    scoring groups by.
    """

    name: str
    description: str
    signal: Signal
    objective: float
    comparison: str = "<="
    window_s: float = 120.0
    severity: str = "page"
    unit: str = "1"

    def __post_init__(self) -> None:
        if "." not in self.name:
            raise ValueError("SLO names are '<subsystem>.<noun>'")
        if self.comparison not in COMPARISONS:
            raise ValueError(f"comparison must be one of {COMPARISONS}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if not (math.isfinite(self.window_s) and self.window_s > 0):
            raise ValueError("window_s must be finite and positive")

    @property
    def subsystem(self) -> str:
        return self.name.split(".", 1)[0]

    def met(self, value: float) -> bool:
        """Does ``value`` satisfy the objective?"""
        if self.comparison == "<=":
            return value <= self.objective
        return value >= self.objective


@dataclasses.dataclass(frozen=True)
class AlertEvent:
    """One alert transition, in simulated time (cf. ``FaultEvent``)."""

    time_s: float
    slo: str
    phase: str  # "fire" | "resolve"
    value: float
    objective: float
    severity: str


@dataclasses.dataclass
class SLOStatus:
    """Rolling evaluation state for one SLO."""

    slo: SLO
    value: float | None = None  #: latest evaluated value (None = no data)
    firing: bool = False
    fired: int = 0
    resolved: int = 0
    breached_ticks: int = 0
    ticks: int = 0
    #: Recent evaluated values (NaN where there was no data), for sparklines.
    history: collections.deque = dataclasses.field(
        default_factory=lambda: collections.deque(maxlen=96))

    @property
    def compliance(self) -> float:
        """Fraction of evaluation ticks that met the objective (1.0 before
        any tick: no evidence of breach)."""
        if self.ticks == 0:
            return 1.0
        return 1.0 - self.breached_ticks / self.ticks


@dataclasses.dataclass(frozen=True)
class SubsystemHealth:
    """Health of one subsystem: severity-weighted compliance + live alerts."""

    subsystem: str
    score: float
    firing: tuple[str, ...]
    status: str


@dataclasses.dataclass(frozen=True)
class GridHealth:
    """The whole grid's verdict: the worst subsystem wins."""

    verdict: str
    subsystems: tuple[SubsystemHealth, ...]

    @property
    def firing(self) -> tuple[str, ...]:
        """Names of every currently-firing SLO, across subsystems."""
        return tuple(name for sub in self.subsystems for name in sub.firing)


class _SourceWindow:
    """Timestamped entries for one signal source, pruned to ``keep_s``.

    Each entry is ``(t, total, count, last, sketch)``: a plain sample is
    ``(t, v, 1, v, None)``; high-volume instrument data arrives as one
    *aggregate* entry per evaluation tick carrying the interval's sum,
    count, last value, and a delta :class:`QuantileSketch`, so window
    memory is bounded by tick count, not observation count.
    """

    __slots__ = ("keep_s", "samples")

    def __init__(self, keep_s: float) -> None:
        self.keep_s = keep_s
        self.samples: collections.deque[tuple] = collections.deque()

    def append(self, time_s: float, value: float) -> None:
        self.samples.append((time_s, value, 1, value, None))

    def append_aggregate(self, time_s: float, total: float, count: int,
                         last: float, sketch) -> None:
        self.samples.append((time_s, total, count, last, sketch))

    def prune(self, now: float) -> None:
        cutoff = now - self.keep_s
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()

    def since(self, cutoff: float) -> list[tuple]:
        """Entries with ``t >= cutoff`` (window membership)."""
        return [e for e in self.samples if e[0] >= cutoff]

    def last(self) -> float | None:
        return self.samples[-1][3] if self.samples else None


class SLOEvaluator:
    """Evaluates SLOs over sliding windows, driven from the sim kernel.

    Parameters
    ----------
    sim / monitor:
        The run's clock and instrument registry.
    slos:
        Objectives to watch (names must be unique).
    interval_s:
        Evaluation cadence in simulated seconds.
    tracer:
        Span/event sink; alert transitions become ``slo.fire`` /
        ``slo.resolve`` events and (when ``record_samples``) every
        evaluation emits a ``slo.sample`` event the dashboard renders.
    record_samples:
        Emit per-tick ``slo.sample`` trace events (only when the tracer
        is enabled).

    Attributes
    ----------
    status:
        ``{slo name: SLOStatus}`` rolling state.
    timeline:
        Chronological :class:`AlertEvent` list (fires and resolutions).
    """

    def __init__(
        self,
        sim: "Simulator",
        monitor: Monitor,
        slos: typing.Sequence[SLO],
        *,
        interval_s: float = 15.0,
        tracer: Tracer | None = None,
        record_samples: bool = True,
    ) -> None:
        if not slos:
            raise ValueError("an evaluator needs at least one SLO")
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        if not (math.isfinite(interval_s) and interval_s > 0):
            raise ValueError("interval_s must be finite and positive")
        self.sim = sim
        self.monitor = monitor
        self.slos = list(slos)
        self.interval_s = float(interval_s)
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.record_samples = record_samples
        self.status: dict[str, SLOStatus] = {s.name: SLOStatus(s) for s in self.slos}
        self.timeline: list[AlertEvent] = []
        self._probes: dict[str, typing.Callable[[], float]] = {}
        # one window per source, sized for the longest window reading it
        keep: dict[str, float] = {}
        for slo in self.slos:
            for source in slo.signal.sources():
                keep[source] = max(keep.get(source, 0.0), slo.window_s)
        self._windows = {src: _SourceWindow(keep_s) for src, keep_s in keep.items()}
        self._prefixes = {
            slo.signal.source for slo in self.slos if slo.signal.prefix
        }
        # sources read as counters (delta/rate/ratio); only these fall back
        # to the counter path when no instrument exists yet -- a "last" or
        # "mean" source with no instrument honestly has no data
        self._counter_sources: set[str] = set()
        for slo in self.slos:
            if slo.signal.kind in ("delta", "rate", "ratio"):
                self._counter_sources.update(slo.signal.sources())
        self._counter_cursor: dict[str, float] = {}
        self._hist_cursor: dict[str, int] = {}
        self._series_cursor: dict[str, int] = {}
        # per-source (count, sketch copy, sum) snapshot from the last
        # tick, so a tick that outran the instrument's raw tail can
        # ingest an exact delta sketch instead of the lost raw values
        self._sketch_snapshots: dict[str, tuple[int, typing.Any, float]] = {}
        self._until: float | None = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def probe(self, name: str, fn: typing.Callable[[], float]) -> "SLOEvaluator":
        """Register a callable sampled once per tick under ``name``.

        Probes cover health signals no instrument records continuously
        (uplink availability, breaker-open fraction); signals read them
        by name exactly like monitor series."""
        self._probes[name] = fn
        return self

    def start(self, until_s: float) -> "SLOEvaluator":
        """Schedule evaluation ticks every ``interval_s`` up to ``until_s``.

        Ticks are ordinary simulator events; each reschedules the next,
        so the heap holds at most one pending tick and an exhausted-heap
        ``run()`` still terminates."""
        if not (math.isfinite(until_s) and until_s >= self.sim.now):
            raise ValueError("until_s must be finite and >= now")
        self._until = float(until_s)
        self.sim.schedule(self.interval_s, self._tick_event, label="slo.tick")
        return self

    def _tick_event(self) -> None:
        self.tick()
        if self._until is not None and self.sim.now + self.interval_s <= self._until:
            self.sim.schedule(self.interval_s, self._tick_event, label="slo.tick")

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _counter_total(self, source: str, prefix: bool) -> float:
        counters = self.monitor._counters
        if prefix:
            return sum(c.value for name, c in counters.items() if name.startswith(source))
        counter = counters.get(source)
        return counter.value if counter is not None else 0.0

    def _ingest_bounded(self, window: _SourceWindow, source: str, inst,
                        cursor: dict[str, int], now: float,
                        times: bool) -> None:
        """Pull new data from a histogram/series without unbounded reads.

        While every new observation is still in the instrument's exact
        raw tail, ingest per-sample entries (``times=True`` keeps the
        series' own sample timestamps) -- identical to the historical
        raw-list behavior.  When recording outran the tail between
        ticks, ingest *one* aggregate entry instead: the interval's
        exact sum/count plus a delta sketch diffed against last tick's
        snapshot, so percentile signals stay within the sketch's error
        bound at any volume.
        """
        inst.ensure_sketch()
        total = len(inst)
        seen = cursor.get(source, 0)
        if total > seen:
            raw = inst._values
            first_retained = total - len(raw)
            if seen >= first_retained:
                skip = seen - first_retained
                if times:
                    pairs = itertools.islice(zip(inst._times, raw), skip, None)
                    for t, v in pairs:
                        window.append(float(t), float(v))
                else:
                    for v in itertools.islice(raw, skip, None):
                        window.append(now, float(v))
            else:
                snap = self._sketch_snapshots.get(source)
                delta = inst.sketch.diff(snap[1] if snap else None)
                prev_sum = snap[2] if snap else 0.0
                total_sum = inst.sketch.sum
                window.append_aggregate(now, total_sum - prev_sum, total - seen,
                                        float(inst.sketch.last), delta)
            cursor[source] = total
        snap = self._sketch_snapshots.get(source)
        if snap is None or snap[0] != total:
            self._sketch_snapshots[source] = (total, inst.sketch.copy(),
                                              inst.sketch.sum)

    def _ingest(self, now: float) -> None:
        for source, window in self._windows.items():
            if source in self._probes:
                window.append(now, float(self._probes[source]()))
            elif source in self.monitor._histograms:
                self._ingest_bounded(window, source,
                                     self.monitor._histograms[source],
                                     self._hist_cursor, now, times=False)
            elif source in self.monitor._series:
                self._ingest_bounded(window, source,
                                     self.monitor._series[source],
                                     self._series_cursor, now, times=True)
            elif source in self.monitor._gauges:
                gauge = self.monitor._gauges[source]
                if gauge.updates:
                    window.append(now, gauge.value)
            elif source in self._counter_sources:
                # counter, counter prefix, or a counter not yet created
                total = self._counter_total(source, source in self._prefixes)
                last = self._counter_cursor.get(source, 0.0)
                window.append(now, total - last)
                self._counter_cursor[source] = total
            # else: a gauge/series/histogram source that does not exist
            # yet -- no sample, the signal evaluates to "no data"
            window.prune(now)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _window_sum(entries: list[tuple]) -> float:
        return float(sum(e[1] for e in entries))

    def _evaluate(self, slo: SLO, now: float) -> float | None:
        sig = slo.signal
        cutoff = now - slo.window_s
        window = self._windows[sig.source]
        if sig.kind == "delta":
            return self._window_sum(window.since(cutoff))
        if sig.kind == "rate":
            return self._window_sum(window.since(cutoff)) / slo.window_s
        if sig.kind == "ratio":
            den = self._window_sum(self._windows[sig.denominator].since(cutoff))
            if den == 0:
                return None
            return self._window_sum(window.since(cutoff)) / den
        entries = window.since(cutoff)
        if sig.kind == "percentile":
            if not entries:
                return None
            sketches = [e[4] for e in entries if e[4] is not None]
            if not sketches:
                # every entry is a plain sample: exact numpy percentile,
                # the historical low-volume behavior
                return float(np.percentile([e[1] for e in entries], sig.q))
            merged = sketches[0].copy()
            for e in entries:
                if e[4] is None:
                    merged.observe(e[1])
                elif e[4] is not sketches[0]:
                    merged.merge(e[4])
            return float(merged.percentile(sig.q))
        if sig.kind == "mean":
            if not entries:
                return None
            count = sum(e[2] for e in entries)
            if count == len(entries):
                # plain samples only: keep the historical numpy mean
                return float(np.mean([e[1] for e in entries]))
            return self._window_sum(entries) / count
        # "last": the most recent sample ever (gauges stay meaningful
        # between sparse updates), not just within the window
        return window.last()

    def tick(self) -> None:
        """Ingest new instrument data and evaluate every SLO now.

        Normally fired by the kernel (see :meth:`start`); examples call
        it directly once more before rendering a final verdict."""
        now = self.sim.now
        self._ingest(now)
        self.monitor.counter("slo.evaluations").add(1)
        tracing = self.tracer.enabled
        # tail-based trace sampling keeps every trace that overlaps an
        # SLO violation; the sampler (when wired) learns of alerts here
        sampler = getattr(self.tracer, "sampler", None)
        n_firing = 0
        for slo in self.slos:
            status = self.status[slo.name]
            value = self._evaluate(slo, now)
            status.value = value
            status.ticks += 1
            breached = value is not None and not slo.met(value)
            status.history.append(value if value is not None else math.nan)
            if breached:
                status.breached_ticks += 1
            if breached and not status.firing:
                status.firing = True
                status.fired += 1
                self.monitor.counter("slo.alerts_fired").add(1)
                self.timeline.append(AlertEvent(now, slo.name, "fire", value,
                                                slo.objective, slo.severity))
                if sampler is not None:
                    sampler.note_alert(now)
                if tracing:
                    self.tracer.event("slo.fire", slo=slo.name, value=value,
                                      objective=slo.objective,
                                      comparison=slo.comparison,
                                      severity=slo.severity)
            elif not breached and status.firing and value is not None:
                status.firing = False
                status.resolved += 1
                self.monitor.counter("slo.alerts_resolved").add(1)
                self.timeline.append(AlertEvent(now, slo.name, "resolve", value,
                                                slo.objective, slo.severity))
                if tracing:
                    self.tracer.event("slo.resolve", slo=slo.name, value=value,
                                      objective=slo.objective,
                                      comparison=slo.comparison,
                                      severity=slo.severity)
            if status.firing:
                n_firing += 1
            if tracing and self.record_samples and value is not None:
                self.tracer.event("slo.sample", slo=slo.name, value=value,
                                  objective=slo.objective,
                                  comparison=slo.comparison,
                                  severity=slo.severity, breached=breached)
        self.monitor.series("slo.breached").record(now, float(n_firing))

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> GridHealth:
        """Fold rolling SLO state into per-subsystem scores and a verdict.

        A subsystem is ``critical`` while any of its page-severity SLOs
        fires, ``degraded`` while any SLO fires or compliance dipped,
        else ``healthy``; the grid verdict is the worst subsystem's.
        Scores are severity-weighted mean compliance (page 1.0, warn 0.5).
        """
        weight = {"page": 1.0, "warn": 0.5}
        by_subsystem: dict[str, list[SLOStatus]] = {}
        for status in self.status.values():
            by_subsystem.setdefault(status.slo.subsystem, []).append(status)
        subsystems = []
        for name in sorted(by_subsystem):
            statuses = by_subsystem[name]
            total_w = sum(weight[s.slo.severity] for s in statuses)
            score = sum(weight[s.slo.severity] * s.compliance for s in statuses) / total_w
            firing = tuple(s.slo.name for s in statuses if s.firing)
            if any(s.firing and s.slo.severity == "page" for s in statuses):
                state = "critical"
            elif firing or score < 1.0:
                state = "degraded"
            else:
                state = "healthy"
            subsystems.append(SubsystemHealth(name, score, firing, state))
        verdict = VERDICTS[max((VERDICTS.index(s.status) for s in subsystems), default=0)]
        return GridHealth(verdict, tuple(subsystems))


# ----------------------------------------------------------------------
# the default objective catalog
# ----------------------------------------------------------------------
def default_slos() -> list[SLO]:
    """The canonical grid objectives over the §4 query pipeline.

    ``grid.uplink_availability`` reads the ``grid.uplink_online`` probe
    that :meth:`repro.core.runtime.PervasiveGridRuntime.attach_slos`
    registers; without the probe it simply reports no data.  The
    :func:`discovery_slos` and :func:`wms_slos` ride along -- they are
    equally no-data-safe, so worlds without replicated discovery or a
    workload manager never see them breach.
    """
    return _grid_slos() + discovery_slos() + wms_slos()


def _grid_slos() -> list[SLO]:
    return [
        SLO("queries.latency_p95",
            "95th-percentile per-epoch turnaround stays interactive",
            Signal("percentile", "queries.latency", q=95.0),
            objective=10.0, comparison="<=", window_s=120.0,
            severity="warn", unit="s"),
        SLO("queries.failure_ratio",
            "failed epochs over executed epochs",
            Signal("ratio", "queries.failed.", denominator="queries.epochs",
                   prefix=True),
            objective=0.1, comparison="<=", window_s=120.0, severity="page"),
        SLO("energy.per_epoch",
            "sensor radio energy drawn per query epoch",
            Signal("ratio", "net.energy_j", denominator="queries.epochs"),
            objective=0.05, comparison="<=", window_s=180.0,
            severity="warn", unit="J"),
        SLO("grid.uplink_availability",
            "fraction of evaluation ticks the WAN uplink is online",
            Signal("mean", "grid.uplink_online"),
            objective=0.99, comparison=">=", window_s=60.0, severity="page"),
    ]


def discovery_slos() -> list[SLO]:
    """Objectives over the replicated, event-sourced discovery subsystem.

    ``disc.broker_availability`` and ``disc.staleness`` read the probes
    :meth:`repro.core.runtime.PervasiveGridRuntime.attach_slos`
    registers (active-broker liveness and the log tail no promotable
    broker has served yet); ``disc.lookup_p99`` and
    ``disc.failover_time`` read the canonical histograms.  During a
    broker failover the availability objective fires, then resolves
    once the promoted standby's window of ticks is clean again -- the
    E13-D benchmark and the disaster drill assert exactly that arc.
    """
    return [
        SLO("disc.lookup_p99",
            "99th-percentile discovery lookup turnaround",
            Signal("percentile", "disc.lookup_latency", q=99.0),
            objective=2.0, comparison="<=", window_s=120.0,
            severity="warn", unit="s"),
        SLO("disc.staleness",
            "log events no promotable broker view has applied yet",
            Signal("last", "disc.staleness"),
            objective=25.0, comparison="<=", window_s=60.0,
            severity="warn"),
        SLO("disc.failover_time",
            "worst outage from active-broker loss to standby promotion",
            Signal("percentile", "disc.failover_time", q=100.0),
            objective=30.0, comparison="<=", window_s=600.0,
            severity="warn", unit="s"),
        SLO("disc.broker_availability",
            "fraction of evaluation ticks an active broker is serving",
            Signal("mean", "disc.broker_online"),
            objective=0.99, comparison=">=", window_s=60.0,
            severity="page"),
    ]


def wms_slos() -> list[SLO]:
    """Objectives over the workload-management service.

    All three read ``wms.*`` instruments the
    :class:`~repro.wms.queues.TaskQueueService` records, and all are
    no-data-safe: a world without a workload manager records none of
    them, the ratio denominators stay 0, the histogram stays empty, and
    every objective reports no data instead of breaching.
    """
    return [
        SLO("wms.queue_latency_p95",
            "95th-percentile submit-to-dispatch wait stays responsive",
            Signal("percentile", "wms.queue_latency", q=95.0),
            objective=30.0, comparison="<=", window_s=120.0,
            severity="warn", unit="s"),
        SLO("wms.failure_ratio",
            "terminally-failed tasks over dispatched tasks",
            Signal("ratio", "wms.tasks_failed",
                   denominator="wms.tasks_dispatched"),
            objective=0.1, comparison="<=", window_s=120.0, severity="page"),
        SLO("wms.starvation",
            "starvation episodes per dispatched task (should be zero)",
            Signal("ratio", "wms.tasks_starved",
                   denominator="wms.tasks_dispatched"),
            objective=0.0, comparison="<=", window_s=300.0,
            severity="warn"),
    ]


def breaker_slo(threshold: float = 0.34, window_s: float = 60.0) -> SLO:
    """Breaker-open fraction objective (reads the
    ``resilience.breaker_open_fraction`` probe; see
    :meth:`SLOEvaluator.probe`)."""
    return SLO("resilience.breaker_open_fraction",
               "fraction of known providers whose breaker blocks traffic",
               Signal("last", "resilience.breaker_open_fraction"),
               objective=threshold, comparison="<=", window_s=window_s,
               severity="warn")


# ----------------------------------------------------------------------
# rendering (reuses repro.reporting, like the report CLI)
# ----------------------------------------------------------------------
def render_health(evaluator: SLOEvaluator, *, alerts: bool = True) -> str:
    """The grid health verdict as text: per-SLO table, per-subsystem
    scores, and (optionally) the alert timeline."""
    from repro.reporting import format_table, sparkline

    health = evaluator.health()
    lines = [f"grid health: {health.verdict.upper()}"
             + (f"  (firing: {', '.join(health.firing)})" if health.firing else "")]
    rows = []
    for name in sorted(evaluator.status):
        st = evaluator.status[name]
        slo = st.slo
        current = "-" if st.value is None else f"{st.value:.4g}"
        trend = sparkline([v for v in st.history if not math.isnan(v)]) or "-"
        rows.append([name, f"{slo.comparison} {slo.objective:g}", current,
                     f"{st.compliance:.3f}",
                     "FIRING" if st.firing else "ok", "  " + trend])
    lines.append(format_table(
        ["slo", "objective", "current", "compliance", "state", "trend"],
        rows, width=16))
    sub_rows = [[s.subsystem, f"{s.score:.3f}", s.status] for s in health.subsystems]
    lines.append("")
    lines.append(format_table(["subsystem", "score", "status"], sub_rows, width=14))
    if alerts:
        lines.append("")
        if evaluator.timeline:
            lines.append("alerts:")
            for ev in evaluator.timeline:
                lines.append(f"  t={ev.time_s:7.1f} s  {ev.phase:<8} {ev.slo:<36} "
                             f"value={ev.value:.4g} (objective {ev.objective:g}, "
                             f"{ev.severity})")
        else:
            lines.append("alerts: none fired")
    return "\n".join(lines)
