"""Run analysis CLI: ``python -m repro.observability.report <trace.jsonl>``.

Reads an exported trace and prints, for the selected root span (default:
the longest root): the critical path of its end-to-end latency, the
per-subsystem rollup, and the trace's event counts.  The same renderers
are reused by the examples to close each run with a "where did the time
go" table instead of a raw counter dump.

``--format json`` emits the same analysis as one JSON document
(:func:`report_dict`), for the dashboard, CI gates, and any other
machine consumer of rollups and critical paths.
"""

from __future__ import annotations

import argparse
import json
import sys
import typing

from repro.observability.analysis import (
    PathSegment,
    Trace,
    critical_path,
    event_counts,
    self_times,
    subsystem_rollup,
)
from repro.observability.export import read_jsonl
from repro.observability.tracer import SpanRecord
from repro.reporting import format_table


def pick_root(trace: Trace, name_prefix: str | None = None) -> SpanRecord | None:
    """The longest closed root span (optionally matching a name prefix)."""
    roots = [r for r in trace.roots() if r.end_s is not None]
    if name_prefix:
        roots = [r for r in roots if r.name.startswith(name_prefix)]
    if not roots:
        return None
    return max(roots, key=lambda s: (s.duration_s, -s.span_id))


def render_critical_path(trace: Trace, root: SpanRecord, max_rows: int = 30) -> str:
    """The critical path as an indented table; segments sum to 100%."""
    segments = critical_path(trace, root)
    total = max(root.duration_s, 1e-300)
    rows: list[list[typing.Any]] = []
    for seg in segments[:max_rows]:
        rows.append([
            "  " * seg.depth + seg.span.name,
            seg.start_s,
            seg.duration_s,
            100.0 * seg.duration_s / total,
        ])
    if len(segments) > max_rows:
        dropped = segments[max_rows:]
        rows.append([f"... {len(dropped)} more segments",
                     dropped[0].start_s,
                     sum(s.duration_s for s in dropped),
                     100.0 * sum(s.duration_s for s in dropped) / total])
    header = (f"critical path of {root.name!r} "
              f"(trace {root.trace_id}, {root.duration_s:.6g} s end-to-end)")
    table = format_table(["segment", "t_start (s)", "dt (s)", "% of total"],
                         rows, width=16)
    # left-align the segment column for readability of the indentation
    lines = [header, *table.splitlines()]
    return "\n".join(lines)


def render_rollup(trace: Trace, root: SpanRecord) -> str:
    """Per-subsystem critical-path share table for one root span."""
    rows = [
        [r["subsystem"], r["self_s"], 100.0 * r["share"], r["spans"]]
        for r in subsystem_rollup(trace, root)
    ]
    return "\n".join([
        f"latency by subsystem under {root.name!r}:",
        format_table(["subsystem", "self (s)", "% of total", "spans"], rows, width=14),
    ])


def render_self_times(trace: Trace, root: SpanRecord, top: int = 10) -> str:
    """Top-N span names by flame-graph *self* time under one root.

    The :func:`~repro.observability.analysis.self_times` attribution:
    each instant of the root's latency is charged to the innermost span
    covering it, so the full table sums to the root's duration exactly.
    """
    per_name = self_times(trace, root)
    total = max(root.duration_s, 1e-300)
    ranked = sorted(per_name.items(), key=lambda kv: (-kv[1], kv[0]))
    rows = [[name, secs, 100.0 * secs / total] for name, secs in ranked[:top]]
    lines = [f"self times under {root.name!r} (top {min(top, len(ranked))} "
             f"of {len(ranked)} span names):",
             format_table(["span", "self (s)", "% of total"], rows, width=18)]
    if len(ranked) > top:
        rest = sum(secs for _, secs in ranked[top:])
        lines.append(f"  ... {len(ranked) - top} more span names "
                     f"({rest:.6g} s, {100.0 * rest / total:.1f}%)")
    return "\n".join(lines)


def render_events(trace: Trace) -> str:
    """Event-name frequency table for the whole trace."""
    counts = event_counts(trace)
    if not counts:
        return "no events recorded"
    rows = [[name, count] for name, count in counts.items()]
    return "\n".join(["events:", format_table(["event", "count"], rows, width=34)])


def report_dict(trace: Trace, root_prefix: str | None = None) -> dict:
    """The full report as a JSON-serializable document (``--format json``).

    Mirrors :func:`render_report`: trace stats, the selected root's
    critical path and per-subsystem rollup (``None`` when no closed root
    matches), and the event counts.
    """
    root = pick_root(trace, root_prefix)
    doc: dict[str, typing.Any] = {
        "trace": {
            "spans": len(trace.spans),
            "events": len(trace.events),
            "trace_ids": len({s.trace_id for s in trace.spans}),
            "roots": len(trace.roots()),
        },
        "root": None,
        "critical_path": None,
        "rollup": None,
        "self_times": None,
        "events": dict(event_counts(trace)),
    }
    if root is not None:
        total = max(root.duration_s, 1e-300)
        doc["root"] = {
            "name": root.name,
            "trace_id": root.trace_id,
            "span_id": root.span_id,
            "start_s": root.start_s,
            "duration_s": root.duration_s,
        }
        doc["critical_path"] = [
            {
                "name": seg.span.name,
                "subsystem": seg.span.subsystem,
                "depth": seg.depth,
                "start_s": seg.start_s,
                "duration_s": seg.duration_s,
                "share": seg.duration_s / total,
            }
            for seg in critical_path(trace, root)
        ]
        doc["rollup"] = [dict(r) for r in subsystem_rollup(trace, root)]
        doc["self_times"] = [
            {"name": name, "self_s": secs, "share": secs / total}
            for name, secs in sorted(self_times(trace, root).items(),
                                     key=lambda kv: (-kv[1], kv[0]))
        ]
    return doc


def render_report(trace: Trace, root_prefix: str | None = None,
                  self_times_top: int = 0) -> str:
    """The full report body (used by the CLI and the examples).

    ``self_times_top > 0`` appends the top-N self-time table
    (:func:`render_self_times`) after the rollup.
    """
    n_traces = len({s.trace_id for s in trace.spans})
    parts = [
        f"trace: {len(trace.spans)} spans, {len(trace.events)} events, "
        f"{n_traces} trace ids, {len(trace.roots())} roots",
    ]
    root = pick_root(trace, root_prefix)
    if root is None:
        parts.append("no closed root span to analyze"
                     + (f" (prefix {root_prefix!r})" if root_prefix else ""))
    else:
        parts.append("")
        parts.append(render_critical_path(trace, root))
        parts.append("")
        parts.append(render_rollup(trace, root))
        if self_times_top > 0:
            parts.append("")
            parts.append(render_self_times(trace, root, top=self_times_top))
    parts.append("")
    parts.append(render_events(trace))
    return "\n".join(parts)


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.report",
        description="Analyze an exported JSONL trace: critical path, "
                    "per-subsystem latency rollup, event counts.",
    )
    parser.add_argument("trace", help="path to a trace exported as JSONL")
    parser.add_argument("--root", default=None, metavar="PREFIX",
                        help="analyze the longest root span whose name starts "
                             "with PREFIX (default: the longest root)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json: the report_dict document)")
    parser.add_argument("--self-times", type=int, default=0, metavar="N",
                        dest="self_times",
                        help="also show the top N span names by self time "
                             "under the selected root (text format; the json "
                             "document always carries the full self_times key)")
    args = parser.parse_args(argv)
    if args.self_times < 0:
        print("error: --self-times must be >= 0", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: {args.trace}: empty trace (no records)", file=sys.stderr)
        return 2
    trace = Trace(records)
    if args.format == "json":
        print(json.dumps(report_dict(trace, args.root), indent=2, sort_keys=True))
    else:
        print(render_report(trace, args.root, self_times_top=args.self_times))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
