"""Namespaced metric conventions over the :class:`~repro.simkernel.monitor.Monitor`.

The monitor grew organically: ``net.sent``, ``queries.failed.no-targets``,
``resilience.breaker.trips`` -- useful, but ad hoc.  This module is the
single place where metric names are legislated:

* :data:`CONVENTIONS` -- the catalog of canonical instruments, each a
  :class:`MetricSpec` (``<subsystem>.<noun>[_<unit>]``, instrument type,
  unit, description).
* :data:`ALIASES` -- legacy monitor keys mapped onto canonical names, so
  existing recording sites keep working while summaries speak one
  language.
* :func:`canonical_summary` -- a monitor summary re-keyed canonically.
* :func:`rollup_by_subsystem` -- counters grouped by namespace for the
  report CLI and the examples' end-of-run tables.

New instrumentation should record straight into canonical names; the
alias table is how the old ones converge without a flag-day rename.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.simkernel.monitor import Monitor

#: Known instrument types (mirrors the Monitor's accessors).
INSTRUMENTS = ("counter", "gauge", "histogram", "series")


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One canonical instrument.

    Attributes
    ----------
    name:
        Canonical dotted name; the first component is the subsystem.
    instrument:
        One of :data:`INSTRUMENTS`.
    unit:
        Unit suffix convention (``"1"`` for dimensionless counts).
    description:
        What the number means.
    """

    name: str
    instrument: str
    unit: str
    description: str

    def __post_init__(self) -> None:
        if self.instrument not in INSTRUMENTS:
            raise ValueError(f"instrument must be one of {INSTRUMENTS}")
        if "." not in self.name:
            raise ValueError("canonical metric names are '<subsystem>.<rest>'")

    @property
    def subsystem(self) -> str:
        return self.name.split(".", 1)[0]


def _catalog(specs: typing.Iterable[MetricSpec]) -> dict[str, MetricSpec]:
    out: dict[str, MetricSpec] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate metric {spec.name!r}")
        out[spec.name] = spec
    return out


#: The canonical instrument catalog.
CONVENTIONS: dict[str, MetricSpec] = _catalog([
    # network
    MetricSpec("net.msgs_sent", "counter", "1", "unicast messages submitted"),
    MetricSpec("net.msgs_delivered", "counter", "1", "unicast messages delivered"),
    MetricSpec("net.msgs_dropped", "counter", "1", "unicast messages dropped"),
    MetricSpec("net.hops", "counter", "1", "hops traversed by delivered messages"),
    MetricSpec("net.node_deaths", "counter", "1", "nodes killed by battery depletion"),
    MetricSpec("net.latency", "series", "s", "per-delivery end-to-end latency"),
    MetricSpec("net.route_cache.hits", "counter", "1", "route queries answered from cache"),
    MetricSpec("net.route_cache.misses", "counter", "1", "route queries that ran a fresh BFS"),
    MetricSpec("net.route_cache.invalidations", "counter", "1",
               "cache flushes caused by topology changes"),
    # energy
    MetricSpec("energy.j_spent", "counter", "J", "radio energy drawn from batteries"),
    # queries
    MetricSpec("queries.submitted", "counter", "1", "queries accepted by the executor"),
    MetricSpec("queries.epochs", "counter", "1", "query epochs executed"),
    MetricSpec("queries.failed", "counter", "1", "epochs that produced no answer"),
    MetricSpec("queries.latency", "histogram", "s", "per-epoch turnaround"),
    # grid
    MetricSpec("grid.jobs_dispatched", "counter", "1", "jobs dispatched to a site"),
    MetricSpec("grid.jobs_resubmitted", "counter", "1", "checkpointed re-submissions"),
    MetricSpec("grid.uplink_transfers", "counter", "1", "WAN transfers started"),
    MetricSpec("grid.uplink_deferred", "counter", "1", "transfers queued through an outage"),
    MetricSpec("grid.queue_wait", "histogram", "s", "job queue waits"),
    # discovery (the replicated, event-sourced registry + broker group)
    MetricSpec("disc.advertise", "counter", "1", "advertisements appended (incl. refreshes)"),
    MetricSpec("disc.search", "counter", "1", "registry searches served"),
    MetricSpec("disc.withdraw", "counter", "1", "descriptions withdrawn (name or dead host)"),
    MetricSpec("disc.replay_events", "counter", "1",
               "log events replayed by catching-up registry views"),
    MetricSpec("disc.broker_down", "counter", "1", "active-broker losses"),
    MetricSpec("disc.failover", "counter", "1", "standby promotions completed"),
    MetricSpec("disc.failover_time", "histogram", "s",
               "outage length from active loss to standby promotion"),
    MetricSpec("disc.lookup_latency", "histogram", "s",
               "client-observed discovery lookup turnaround"),
    # composition
    MetricSpec("composition.completed", "counter", "1", "composite executions that succeeded"),
    MetricSpec("composition.failed", "counter", "1", "composite executions that failed"),
    MetricSpec("composition.rebinds", "counter", "1", "services re-bound across retries"),
    MetricSpec("composition.timeouts", "counter", "1", "attempt timeouts"),
    # faults
    MetricSpec("faults.injected", "counter", "1", "fault injections fired"),
    MetricSpec("faults.recovered", "counter", "1", "fault recoveries fired"),
    MetricSpec("faults.active", "series", "1", "active faults over time"),
    # resilience
    MetricSpec("resilience.breaker_trips", "counter", "1", "circuit-breaker opens"),
    MetricSpec("resilience.retries", "counter", "1", "retry attempts (all layers)"),
    MetricSpec("resilience.hedges", "counter", "1", "hedged duplicates fired"),
    # wms (the workload-management service: queues + pilots)
    MetricSpec("wms.tasks_submitted", "counter", "1", "tasks accepted by the queue service"),
    MetricSpec("wms.tasks_dispatched", "counter", "1", "tasks claimed by pilots"),
    MetricSpec("wms.tasks_completed", "counter", "1", "tasks that finished successfully"),
    MetricSpec("wms.tasks_failed", "counter", "1", "tasks that failed after all attempts"),
    MetricSpec("wms.tasks_requeued", "counter", "1", "failed tasks returned to the queue"),
    MetricSpec("wms.tasks_starved", "counter", "1",
               "starvation episodes (a class's head wait exceeded the threshold)"),
    MetricSpec("wms.queue_depth", "series", "1", "waiting tasks over time"),
    MetricSpec("wms.queue_latency", "histogram", "s", "submit-to-dispatch waits"),
    MetricSpec("wms.turnaround", "histogram", "s", "submit-to-completion times"),
    # parallel (the trial runner's deterministic reduction)
    MetricSpec("parallel.trials", "counter", "1", "trial worlds reduced into this monitor"),
    MetricSpec("parallel.trial_failures", "counter", "1", "trial worlds that failed in a worker"),
    # slo (the verdict layer watching all of the above)
    MetricSpec("slo.evaluations", "counter", "1", "SLO evaluation ticks executed"),
    MetricSpec("slo.alerts_fired", "counter", "1", "SLO alerts transitioned to firing"),
    MetricSpec("slo.alerts_resolved", "counter", "1", "SLO alerts resolved"),
    MetricSpec("slo.breached", "series", "1", "concurrently-firing SLOs over time"),
    # obs (telemetry watching itself: bounded tracing + trace sampling)
    MetricSpec("obs.trace.dropped", "counter", "1",
               "trace records evicted by the max_records ring"),
    MetricSpec("obs.sampling.traces_emitted", "counter", "1",
               "root spans (traces) started"),
    MetricSpec("obs.sampling.traces_retained", "counter", "1",
               "traces retained (head, tail, or exemplar)"),
    MetricSpec("obs.sampling.traces_dropped", "counter", "1",
               "traces dropped after tail inspection"),
    MetricSpec("obs.sampling.spans_emitted", "counter", "1",
               "span records offered to the sampler"),
    MetricSpec("obs.sampling.spans_retained", "counter", "1",
               "span records retained after sampling"),
    MetricSpec("obs.sampling.spans_dropped", "counter", "1",
               "span records dropped by sampling"),
    MetricSpec("obs.sampling.head_kept", "counter", "1",
               "traces kept by deterministic head sampling"),
    MetricSpec("obs.sampling.tail_kept", "counter", "1",
               "traces kept by tail rules (error / SLO alert / slow outlier)"),
    MetricSpec("obs.sampling.exemplars_kept", "counter", "1",
               "happy-path traces kept by the seeded exemplar reservoir"),
    MetricSpec("obs.sampling.budget_deferred", "counter", "1",
               "head keeps deferred to tail rules by the span budget"),
])

#: Legacy monitor keys -> canonical names.
ALIASES: dict[str, str] = {
    "net.sent": "net.msgs_sent",
    "net.delivered": "net.msgs_delivered",
    "net.dropped": "net.msgs_dropped",
    "net.energy_j": "energy.j_spent",
    "resilience.breaker.trips": "resilience.breaker_trips",
}


def canonical_name(name: str) -> str:
    """Map a monitor key to its canonical name (identity when unknown).

    Suffixed keys from :meth:`Monitor.summary` (``net.sent.increments``)
    follow their base key's alias.
    """
    if name in ALIASES:
        return ALIASES[name]
    for suffix in (".increments", ".count", ".mean", ".p50", ".p95", ".p99",
                   ".total", ".max"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in ALIASES:
                return ALIASES[base] + suffix
    return name


def canonical_summary(monitor: Monitor) -> dict[str, typing.Any]:
    """The monitor's summary re-keyed onto canonical names, key-sorted.

    Colliding keys (a legacy alias and its canonical twin both recorded)
    are summed -- they count the same underlying thing.
    """
    out: dict[str, typing.Any] = {}
    for key, value in monitor.summary().items():
        name = canonical_name(key)
        if name in out and isinstance(value, (int, float)):
            out[name] = out[name] + value
        else:
            out[name] = value
    return dict(sorted(out.items()))


def rollup_by_subsystem(monitor: Monitor) -> dict[str, dict[str, typing.Any]]:
    """Canonical summary grouped by leading namespace, both levels sorted."""
    grouped: dict[str, dict[str, typing.Any]] = {}
    for name, value in canonical_summary(monitor).items():
        subsystem = name.split(".", 1)[0]
        grouped.setdefault(subsystem, {})[name] = value
    return {sub: dict(sorted(vals.items())) for sub, vals in sorted(grouped.items())}
