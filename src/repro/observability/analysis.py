"""Trace analysis: span trees, critical paths, subsystem rollups.

The analyses answer the question flat counters cannot: *where did the
time go?*  Given a trace (a live :class:`~repro.observability.tracer.Tracer`
or records loaded from JSONL), :class:`Trace` indexes the span forest;
:func:`critical_path` decomposes one root span's end-to-end latency into
an ordered chain of child segments that accounts for exactly 100% of it;
:func:`self_times` and :func:`subsystem_rollup` aggregate the same
decomposition across the whole trace.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.observability.tracer import SpanRecord, TraceEvent, Tracer


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One step of a critical path.

    Attributes
    ----------
    span:
        The span the time is attributed to.
    start_s / end_s:
        The sub-interval attributed (a span may contribute several
        disjoint segments).
    depth:
        Tree depth below the root (0 = the root span itself).
    """

    span: SpanRecord
    start_s: float
    end_s: float
    depth: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Trace:
    """An indexed span forest plus its events.

    Parameters
    ----------
    source:
        A :class:`Tracer`, or any iterable of span/event records (e.g.
        from :func:`repro.observability.export.read_jsonl`).
    """

    def __init__(self, source: Tracer | typing.Iterable[SpanRecord | TraceEvent]) -> None:
        records = source.records if isinstance(source, Tracer) else list(source)
        self.spans: list[SpanRecord] = [r for r in records if isinstance(r, SpanRecord)]
        self.events: list[TraceEvent] = [r for r in records if isinstance(r, TraceEvent)]
        self._by_id: dict[int, SpanRecord] = {s.span_id: s for s in self.spans}
        self._children: dict[int | None, list[SpanRecord]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent_id, []).append(span)
        for kids in self._children.values():
            kids.sort(key=lambda s: (s.start_s, s.span_id))

    # ------------------------------------------------------------------
    def roots(self, trace_id: int | None = None) -> list[SpanRecord]:
        """Root spans (optionally restricted to one trace id)."""
        roots = self._children.get(None, [])
        if trace_id is None:
            return list(roots)
        return [s for s in roots if s.trace_id == trace_id]

    def children(self, span: SpanRecord) -> list[SpanRecord]:
        """Direct children of ``span``, by start time."""
        return list(self._children.get(span.span_id, []))

    def span_by_id(self, span_id: int) -> SpanRecord | None:
        """Lookup by span id (None when absent)."""
        return self._by_id.get(span_id)

    def subtree(self, root: SpanRecord) -> list[SpanRecord]:
        """``root`` and every descendant, preorder."""
        out: list[SpanRecord] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(self._children.get(span.span_id, [])))
        return out

    def events_under(self, root: SpanRecord) -> list[TraceEvent]:
        """Every event attributed to ``root``'s subtree, by time."""
        ids = {s.span_id for s in self.subtree(root)}
        return sorted((e for e in self.events if e.parent_id in ids),
                      key=lambda e: e.time_s)

    def subsystems(self, root: SpanRecord | None = None) -> set[str]:
        """Distinct subsystem prefixes present (optionally one subtree)."""
        spans = self.subtree(root) if root is not None else self.spans
        return {s.subsystem for s in spans}

    def find(self, name_prefix: str) -> list[SpanRecord]:
        """Spans whose name starts with ``name_prefix``, by start time."""
        return sorted((s for s in self.spans if s.name.startswith(name_prefix)),
                      key=lambda s: (s.start_s, s.span_id))

    def is_connected(self, root: SpanRecord) -> bool:
        """True iff every span sharing ``root``'s trace id is in its subtree
        (i.e. the trace forms one connected parent/child tree)."""
        tree_ids = {s.span_id for s in self.subtree(root)}
        return all(s.span_id in tree_ids
                   for s in self.spans if s.trace_id == root.trace_id)

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


def _clipped_children(trace: Trace, span: SpanRecord, lo: float, hi: float) -> list[SpanRecord]:
    """Closed children of ``span`` overlapping [lo, hi], by start."""
    kids = []
    for child in trace.children(span):
        if child.end_s is None:
            continue
        if child.end_s <= lo or child.start_s >= hi:
            continue
        kids.append(child)
    return kids


def critical_path(trace: Trace, root: SpanRecord) -> list[PathSegment]:
    """The chain of spans that determined ``root``'s end-to-end latency.

    Walks backwards from the root's end: the child whose completion
    gated each instant claims the interval back to its own start, then
    the walk recurses into that child; time covered by no child is the
    span's own (self) time.  Segments are returned in chronological
    order and **sum exactly to the root's duration** -- latency never
    goes unattributed.
    """
    if root.end_s is None:
        raise ValueError(f"span {root.name!r} is still open; end it before analysis")

    segments: list[PathSegment] = []

    def walk(span: SpanRecord, lo: float, hi: float, depth: int) -> None:
        """Attribute [lo, hi] (within ``span``) working backwards."""
        cursor = hi
        for child in sorted(_clipped_children(trace, span, lo, hi),
                            key=lambda s: (s.end_s, s.span_id), reverse=True):
            child_end = min(child.end_s, cursor)
            child_start = max(child.start_s, lo)
            if child_end <= child_start:
                continue
            if child_end < cursor:
                # span's own time between this child's end and the cursor
                segments.append(PathSegment(span, child_end, cursor, depth))
            walk(child, child_start, child_end, depth + 1)
            cursor = child_start
            if cursor <= lo:
                break
        if cursor > lo:
            segments.append(PathSegment(span, lo, cursor, depth))

    walk(root, root.start_s, root.end_s, 0)
    segments.sort(key=lambda seg: seg.start_s)
    return segments


def self_times(trace: Trace, root: SpanRecord) -> dict[str, float]:
    """Per-span-name *self* time under ``root`` (flame-graph attribution).

    Each instant of the root's duration is attributed to the innermost
    span covering it along the critical path, so the values sum to the
    root's duration exactly.
    """
    out: dict[str, float] = {}
    for seg in critical_path(trace, root):
        out[seg.span.name] = out.get(seg.span.name, 0.0) + seg.duration_s
    return out


def subsystem_rollup(trace: Trace, root: SpanRecord) -> list[dict]:
    """Critical-path time per subsystem under ``root``.

    Returns rows ``{"subsystem", "self_s", "share", "spans"}`` sorted by
    descending self time; shares sum to 1 (of the root's duration).
    """
    total = max(root.end_s - root.start_s, 0.0) if root.end_s is not None else 0.0
    per_sub: dict[str, float] = {}
    span_counts: dict[str, int] = {}
    for seg in critical_path(trace, root):
        sub = seg.span.subsystem
        per_sub[sub] = per_sub.get(sub, 0.0) + seg.duration_s
    for span in trace.subtree(root):
        span_counts[span.subsystem] = span_counts.get(span.subsystem, 0) + 1
    rows = [
        {
            "subsystem": sub,
            "self_s": self_s,
            "share": (self_s / total) if total > 0 else 0.0,
            "spans": span_counts.get(sub, 0),
        }
        for sub, self_s in per_sub.items()
    ]
    rows.sort(key=lambda r: (-r["self_s"], r["subsystem"]))
    return rows


def event_counts(trace: Trace, root: SpanRecord | None = None) -> dict[str, int]:
    """Events by name (whole trace, or one subtree), sorted by name."""
    events = trace.events_under(root) if root is not None else trace.events
    counts: dict[str, int] = {}
    for event in events:
        counts[event.name] = counts.get(event.name, 0) + 1
    return dict(sorted(counts.items()))
