"""JSONL trace export and import.

One record per line.  Spans:

``{"kind": "span", "trace": 0, "span": 1, "parent": 0, "name": "net.send",
   "start": 1.5, "end": 2.25, "status": "ok", "attrs": {...}}``

Events:

``{"kind": "event", "trace": 0, "parent": 1, "name": "net.hop",
   "time": 1.75, "attrs": {...}}``

The format is append-friendly and diff-friendly (keys are emitted in a
fixed order), and loads back into the same record objects the tracer
produces, so :mod:`repro.observability.analysis` works identically on
live tracers and exported files.
"""

from __future__ import annotations

import json
import typing

from repro.observability.tracer import SpanRecord, TraceEvent


def _default(obj: typing.Any) -> typing.Any:
    """Best-effort JSON coercion for numpy scalars and odd attr values."""
    for attr in ("item",):  # numpy scalars
        if hasattr(obj, attr):
            return obj.item()
    return str(obj)


def write_jsonl(records: typing.Iterable[SpanRecord | TraceEvent], path) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the line count.

    Open spans are exported with ``"end": null`` -- analysis treats them
    as zero-duration, and the exporter does not mutate them.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), default=_default))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path) -> list[SpanRecord | TraceEvent]:
    """Load a JSONL trace back into record objects (see :func:`write_jsonl`)."""
    records: list[SpanRecord | TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            records.append(record_from_dict(payload, where=f"{path}:{lineno}"))
    return records


def record_from_dict(payload: dict, where: str = "<record>") -> SpanRecord | TraceEvent:
    """Rebuild one record object from its :meth:`to_dict` form."""
    kind = payload.get("kind")
    if kind == "span":
        record = SpanRecord(
            trace_id=int(payload["trace"]),
            span_id=int(payload["span"]),
            parent_id=None if payload.get("parent") is None else int(payload["parent"]),
            name=str(payload["name"]),
            start_s=float(payload["start"]),
            attrs=dict(payload.get("attrs") or {}),
        )
        if payload.get("end") is not None:
            record.end_s = float(payload["end"])
        record.status = str(payload.get("status", "ok"))
        return record
    if kind == "event":
        return TraceEvent(
            trace_id=int(payload["trace"]),
            parent_id=None if payload.get("parent") is None else int(payload["parent"]),
            name=str(payload["name"]),
            time_s=float(payload["time"]),
            attrs=dict(payload.get("attrs") or {}),
        )
    raise ValueError(f"{where}: unknown record kind {kind!r}")
