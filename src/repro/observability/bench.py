"""Benchmark-trajectory recording and regression gating.

The 19 experiment benchmarks print tables that vanish when the run ends.
This module makes their headline numbers persistent and comparable:

* :class:`BenchRecorder` -- collects :class:`BenchResult` rows
  (experiment id, metric name/value/unit, regression direction, and the
  parameters that produced the number, keyed by a stable parameter
  hash) and saves them as ``BENCH_results.json``.
  ``benchmarks/conftest.py`` exposes it as the ``record`` fixture, so
  every ``test_bench_*`` persists what its table prints.
* :func:`compare` / the CLI -- diff two result files:

  .. code-block:: bash

     python -m repro.observability.bench compare BENCH_baseline.json BENCH_results.json --tolerance 0.05

  Exit status 0 when every shared metric is within tolerance, 1 when
  any regressed (respecting each metric's recorded direction:
  ``higher`` is better, ``lower`` is better, or ``either`` = any drift
  beyond tolerance regresses), 2 on unreadable input.  Metrics present
  on only one side are reported but never fail the gate (experiments
  come and go; the gate is about the ones both runs measured).

  ``--only PATTERN`` (repeatable) restricts the comparison to metrics
  whose ``experiment/metric`` name matches a shell-style glob, so a
  zero-tolerance gate can be applied to the few metrics that must not
  drift at all without freezing every other number:

  .. code-block:: bash

     python -m repro.observability.bench compare old.json new.json \\
         --tolerance 0 --only 'E13-D/lost_advertisements'

Results are simulator metrics (deterministic from the seed), never wall
clock, so a tight tolerance is meaningful across machines.
"""

from __future__ import annotations

import argparse
import dataclasses
import fnmatch
import hashlib
import json
import math
import sys
import typing

#: Results-file schema version.
SCHEMA_VERSION = 1
#: Regression directions: which way "worse" points.
DIRECTIONS = ("higher", "lower", "either")


def params_hash(params: typing.Mapping[str, typing.Any]) -> str:
    """Stable 12-hex-digit digest of a parameter mapping."""
    blob = json.dumps(dict(params), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """One headline number from one experiment run."""

    experiment: str
    metric: str
    value: float
    unit: str = "1"
    direction: str = "either"
    params: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment or not self.metric:
            raise ValueError("experiment and metric must be non-empty")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity for matching across runs: same experiment, same
        metric, same parameters."""
        return (self.experiment, self.metric, params_hash(self.params))

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "params": dict(self.params),
            "params_hash": params_hash(self.params),
        }


class BenchRecorder:
    """Accumulates results during a benchmark session; saves on demand."""

    def __init__(self) -> None:
        self.results: list[BenchResult] = []

    def record(self, experiment: str, metric: str, value: float, *,
               unit: str = "1", direction: str = "either",
               **params: typing.Any) -> BenchResult:
        """Record one headline metric (keyword args become parameters).

        NaN is legal (an empty percentile is an honest result); infinite
        values are not."""
        value = float(value)
        if math.isinf(value):
            raise ValueError(f"{experiment}/{metric}: value must not be infinite")
        result = BenchResult(experiment, metric, value, unit=unit,
                             direction=direction, params=dict(params))
        if any(r.key == result.key for r in self.results):
            raise ValueError(f"duplicate bench result {result.key}")
        self.results.append(result)
        return result

    def __len__(self) -> int:
        return len(self.results)

    def save(self, path) -> int:
        """Write all results (sorted by key, diff-friendly); returns count."""
        payload = {
            "schema": SCHEMA_VERSION,
            "results": [r.to_dict() for r in sorted(self.results, key=lambda r: r.key)],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return len(self.results)


def load_results(path) -> dict[tuple[str, str, str], BenchResult]:
    """Load a results file back into ``{key: BenchResult}``."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "results" not in payload:
        raise ValueError(f"{path}: not a bench results file (no 'results' key)")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema {payload.get('schema')!r} "
                         f"(this reader speaks {SCHEMA_VERSION})")
    out: dict[tuple[str, str, str], BenchResult] = {}
    for row in payload["results"]:
        try:
            result = BenchResult(
                experiment=str(row["experiment"]),
                metric=str(row["metric"]),
                value=float(row["value"]),
                unit=str(row.get("unit", "1")),
                direction=str(row.get("direction", "either")),
                params=dict(row.get("params") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: malformed result row {row!r}: {exc}") from exc
        out[result.key] = result
    return out


def filter_results(results: typing.Mapping[tuple, BenchResult],
                   patterns: typing.Sequence[str]) -> dict[tuple, BenchResult]:
    """Keep results whose ``experiment/metric`` matches any shell-style
    glob in ``patterns`` (all of them when ``patterns`` is empty).  A
    pattern with no wildcard is an exact name, so a gate pinned to
    ``E13-D/lost_advertisements`` never silently widens."""
    if not patterns:
        return dict(results)
    return {key: r for key, r in results.items()
            if any(fnmatch.fnmatchcase(f"{r.experiment}/{r.metric}", p)
                   for p in patterns)}


@dataclasses.dataclass(frozen=True)
class Delta:
    """One matched metric's old-vs-new comparison."""

    old: BenchResult
    new: BenchResult
    rel: float  #: signed relative change; inf when one side is NaN

    @property
    def key(self) -> tuple[str, str, str]:
        return self.old.key


@dataclasses.dataclass
class CompareReport:
    """The full diff of two result files."""

    tolerance: float
    regressions: list[Delta] = dataclasses.field(default_factory=list)
    improvements: list[Delta] = dataclasses.field(default_factory=list)
    unchanged: list[Delta] = dataclasses.field(default_factory=list)
    added: list[BenchResult] = dataclasses.field(default_factory=list)
    removed: list[BenchResult] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _rel_change(old: float, new: float) -> float:
    if math.isnan(old) and math.isnan(new):
        return 0.0
    if math.isnan(old) or math.isnan(new):
        return math.inf  # appearing/disappearing NaN is always a change
    return (new - old) / max(abs(old), 1e-12)


def compare(old: typing.Mapping[tuple, BenchResult],
            new: typing.Mapping[tuple, BenchResult],
            tolerance: float = 0.05) -> CompareReport:
    """Classify every metric of ``new`` against ``old``.

    The *old* (baseline) row's direction decides which drift is a
    regression -- the baseline is the contract."""
    if not (tolerance >= 0 and math.isfinite(tolerance)):
        raise ValueError("tolerance must be finite and >= 0")
    report = CompareReport(tolerance)
    for key in sorted(set(old) | set(new)):
        if key not in old:
            report.added.append(new[key])
            continue
        if key not in new:
            report.removed.append(old[key])
            continue
        delta = Delta(old[key], new[key], _rel_change(old[key].value, new[key].value))
        direction = old[key].direction
        beyond = abs(delta.rel) > tolerance
        if not beyond:
            report.unchanged.append(delta)
        elif math.isinf(delta.rel) or direction == "either":
            # a NaN appearing or disappearing is never an improvement
            report.regressions.append(delta)
        elif (direction == "higher") == (delta.rel < 0):
            report.regressions.append(delta)
        else:
            report.improvements.append(delta)
    return report


def _name_table(headers: typing.Sequence[str],
                rows: typing.Sequence[typing.Sequence]) -> str:
    """A fixed-width table whose first column is left-justified and sized
    to the longest name (metric names outgrow one shared column width)."""
    name_w = max(len(headers[0]), *(len(str(r[0])) for r in rows)) + 2
    width = 14

    def cell(v: typing.Any) -> str:
        shown = f"{v:.4g}" if isinstance(v, float) else str(v)
        return f"{shown:>{width}}"

    out = [f"{headers[0]:<{name_w}}" + "".join(f"{h:>{width}}" for h in headers[1:])]
    out.append("-" * (name_w + width * (len(headers) - 1)))
    for row in rows:
        out.append(f"{row[0]!s:<{name_w}}" + "".join(cell(v) for v in row[1:]))
    return "\n".join(out)


def render_compare(report: CompareReport) -> str:
    """The comparison as text."""
    rows = []
    for label, deltas in (("REGRESSED", report.regressions),
                          ("improved", report.improvements),
                          ("ok", report.unchanged)):
        for d in deltas:
            exp, metric, phash = d.key
            rel = "nan!" if math.isinf(d.rel) else f"{100.0 * d.rel:+.2f}%"
            rows.append([f"{exp}/{metric}", phash, d.old.value, d.new.value,
                         rel, label])
    lines = []
    if rows:
        lines.append(_name_table(
            ["experiment/metric", "params", "old", "new", "change", "status"],
            rows))
    for r in report.added:
        lines.append(f"  new metric (no baseline): {r.experiment}/{r.metric} = {r.value:.6g}")
    for r in report.removed:
        lines.append(f"  missing from new run:     {r.experiment}/{r.metric} "
                     f"(baseline {r.value:.6g})")
    lines.append(
        f"{len(report.regressions)} regressed, {len(report.improvements)} improved, "
        f"{len(report.unchanged)} within ±{100.0 * report.tolerance:g}%, "
        f"{len(report.added)} added, {len(report.removed)} removed")
    return "\n".join(lines)


def render_show(results: dict[tuple, BenchResult]) -> str:
    rows = [[f"{r.experiment}/{r.metric}", r.value, r.unit, r.direction,
             params_hash(r.params)]
            for r in sorted(results.values(), key=lambda r: r.key)]
    return _name_table(["experiment/metric", "value", "unit",
                        "direction", "params"], rows)


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.bench",
        description="Inspect and diff benchmark result files "
                    "(BENCH_results.json).")
    sub = parser.add_subparsers(dest="command", required=True)
    p_compare = sub.add_parser("compare", help="diff two result files; "
                               "exit 1 on regressions beyond tolerance")
    p_compare.add_argument("old", help="baseline results file")
    p_compare.add_argument("new", help="candidate results file")
    p_compare.add_argument("--tolerance", type=float, default=0.05,
                           metavar="FRAC",
                           help="relative drift allowed per metric "
                                "(default 0.05 = 5%%)")
    p_compare.add_argument("--only", action="append", default=[],
                           metavar="PATTERN",
                           help="restrict the gate to experiment/metric "
                                "names matching this glob (repeatable); "
                                "errors if nothing matches")
    p_show = sub.add_parser("show", help="print one result file as a table")
    p_show.add_argument("path")
    args = parser.parse_args(argv)

    try:
        if args.command == "show":
            print(render_show(load_results(args.path)))
            return 0
        old = filter_results(load_results(args.old), args.only)
        new = filter_results(load_results(args.new), args.only)
        if args.only:
            # a typo'd gate must fail loudly, not pass by matching nothing:
            # every pattern must hit something, and at least one metric
            # must exist on BOTH sides (added/removed are never gated)
            names = {f"{r.experiment}/{r.metric}"
                     for r in (*old.values(), *new.values())}
            for pattern in args.only:
                if not any(fnmatch.fnmatchcase(name, pattern) for name in names):
                    raise ValueError(
                        f"--only {pattern!r} matched no metric in either file")
            if not set(old) & set(new):
                raise ValueError(
                    f"--only {args.only} matched no metric present in both "
                    "files; nothing would be gated")
        report = compare(old, new, tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_compare(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
