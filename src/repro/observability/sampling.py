"""Deterministic head + tail-based trace sampling.

A traced 10^5-query soak run cannot keep every span.  This module
decides, per *trace* (one root span and everything beneath it), what the
:class:`~repro.observability.tracer.Tracer` retains:

* **Head sampling** -- at root-span start, a deterministic hash of the
  trace's sampling key (the ``sampling_key`` attribute the query
  executor stamps, falling back to the trace id) against
  :attr:`SamplingConfig.head_rate`.  Hash-based, not RNG-based, so the
  same key is kept or dropped identically in every run, process, and
  worker count.
* **Tail retention** -- head-dropped traces are buffered until their
  root ends, then kept anyway when something interesting happened:
  any span ended with error status, the trace overlapped an SLO alert
  (:meth:`TraceSampler.note_alert`, wired from the
  :class:`~repro.observability.slo.SLOEvaluator`), or the root's
  duration is a slow outlier (an explicit threshold, or adaptively the
  configured quantile of a root-duration
  :class:`~repro.observability.sketch.QuantileSketch`).
* **Exemplar reservoir** -- a seeded Algorithm-R reservoir keeps a few
  representative happy-path traces so the retained set is never *only*
  pathologies.
* **Span budget** -- once retention has spent the budget, head keeps are
  deferred to the tail rules (error/alert/slow traces are always kept).

Free-floating events (``slo.fire``, ``slo.sample``, ``faults.inject`` --
anything recorded outside a span tree) are always retained: the
dashboard's timeline must survive sampling.

Every decision is counted under ``obs.sampling.*`` monitor counters and
summarized in one ``obs.sampling.summary`` trace event at export, so
dropped volume is always visible.  All state is bounded and all
decisions are deterministic functions of the workload and the seed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing

from repro.observability.sketch import DEFAULT_ALPHA, QuantileSketch
from repro.observability.tracer import SpanRecord, TraceEvent

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.tracer import Tracer

#: Retained-decision markers kept per trace id (bounded map).
_KEEP, _DROP, _RESERVOIR = "keep", "drop", "reservoir"
#: Decision-map bound: oldest decisions are forgotten past this many
#: traces; a record arriving for a forgotten trace is retained (safe
#: default, and only reachable for pathologically late records).
_MAX_DECISIONS = 8192
#: Minimum root-duration observations before the adaptive slow-outlier
#: threshold activates (quantiles of a handful of samples are noise).
_MIN_SLOW_SAMPLES = 20

_COUNTER_FIELDS = (
    "traces_emitted", "traces_retained", "traces_dropped",
    "spans_emitted", "spans_retained", "spans_dropped",
    "head_kept", "tail_kept", "exemplars_kept", "budget_deferred",
)


@dataclasses.dataclass(frozen=True)
class SamplingConfig:
    """Knobs for one :class:`TraceSampler`.

    Attributes
    ----------
    head_rate:
        Fraction of traces kept unconditionally at root start (0..1).
    slow_threshold_s:
        Explicit root-duration outlier threshold; ``None`` uses the
        adaptive ``slow_quantile`` of observed root durations instead.
    slow_quantile:
        Adaptive outlier quantile (default p99) of the root-duration
        sketch; applies once at least 20 roots have completed.  A root
        counts as slow when it clears the quantile estimate by the
        sketch's relative-error band.
    exemplar_capacity:
        Seeded reservoir size for happy-path traces (0 disables).
    span_budget:
        Soft cap on retained span records; past it, head keeps are
        deferred to the tail rules.  ``None`` = unlimited.
    alert_window_s:
        A trace counts as SLO-violating when an alert fired no earlier
        than ``alert_window_s`` before its root started.
    seed:
        Seeds the exemplar reservoir's RNG and salts the head hash.
    alpha:
        Relative error of the root-duration sketch.
    """

    head_rate: float = 0.1
    slow_threshold_s: float | None = None
    slow_quantile: float = 0.99
    exemplar_capacity: int = 8
    span_budget: int | None = None
    alert_window_s: float = 60.0
    seed: int = 0
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if not (0.0 <= self.head_rate <= 1.0):
            raise ValueError("head_rate must be in [0, 1]")
        if not (0.0 < self.slow_quantile <= 1.0):
            raise ValueError("slow_quantile must be in (0, 1]")
        if self.exemplar_capacity < 0:
            raise ValueError("exemplar_capacity must be >= 0")
        if self.span_budget is not None and self.span_budget < 1:
            raise ValueError("span_budget must be >= 1 or None")
        if self.alert_window_s < 0:
            raise ValueError("alert_window_s must be >= 0")


class TraceSampler:
    """Per-trace retention policy plugged into a :class:`Tracer`.

    The tracer routes every record through :meth:`offer` instead of
    appending directly, and notifies :meth:`on_span_end` when spans
    close; :meth:`finish` (called by ``Tracer.finalize``/``export``)
    flushes the exemplar reservoir and any still-open buffered traces.

    Attributes
    ----------
    stats:
        Monotonic decision counters (also mirrored to ``obs.sampling.*``
        monitor counters when a monitor is attached).
    durations:
        The root-duration :class:`QuantileSketch` driving the adaptive
        slow-outlier threshold.
    """

    def __init__(self, config: SamplingConfig | None = None) -> None:
        self.config = config or SamplingConfig()
        self.tracer: "Tracer | None" = None
        self.stats: dict[str, int] = {k: 0 for k in _COUNTER_FIELDS}
        self.durations = QuantileSketch(self.config.alpha)
        self._rng = random.Random(self.config.seed)
        self._decisions: dict[int, str] = {}
        self._buffers: dict[int, list] = {}
        self._roots: dict[int, SpanRecord] = {}
        self._reservoir: list[int] = []  # trace ids, slot-ordered
        self._reservoir_buffers: dict[int, list] = {}
        self._reservoir_seen = 0
        self._last_alert: float | None = None
        self._finished = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, tracer: "Tracer") -> None:
        """Attach to the tracer whose records this sampler filters."""
        self.tracer = tracer

    @property
    def _monitor(self):
        return self.tracer.monitor if self.tracer is not None else None

    def _count(self, field: str, amount: int = 1) -> None:
        self.stats[field] += amount
        monitor = self._monitor
        if monitor is not None:
            monitor.counter(f"obs.sampling.{field}").add(amount)

    def note_alert(self, now: float) -> None:
        """An SLO alert fired at ``now`` (called by the evaluator);
        traces overlapping it are tail-kept."""
        self._last_alert = now

    # ------------------------------------------------------------------
    # the record path (called by Tracer)
    # ------------------------------------------------------------------
    def offer(self, record) -> None:
        """Route one freshly-created record: retain, buffer, or drop."""
        is_span = isinstance(record, SpanRecord)
        if is_span:
            self._count("spans_emitted")
            if record.parent_id is None:
                self._offer_root(record)
                return
        decision = self._decisions.get(record.trace_id)
        if decision == _KEEP:
            self._retain(record)
        elif record.trace_id in self._buffers:
            self._buffers[record.trace_id].append(record)
        elif decision == _RESERVOIR:
            self._reservoir_buffers[record.trace_id].append(record)
        elif decision == _DROP:
            if is_span:
                self._count("spans_dropped")
        else:
            # free-floating events (slo.*, faults.*) open their own
            # trace ids with no root span: always retained.  Spans of a
            # forgotten (evicted) trace land here too -- retain rather
            # than guess.
            self._retain(record)

    def _offer_root(self, record: SpanRecord) -> None:
        self._count("traces_emitted")
        key = record.attrs.get("sampling_key", record.trace_id)
        if self._head_keep(key) and not self._over_budget():
            self._decide(record.trace_id, _KEEP)
            self._count("head_kept")
            self._count("traces_retained")
            record.attrs.setdefault("sampled", "head")
            self._retain(record)
            return
        if self._head_keep(key):
            self._count("budget_deferred")
        self._buffers[record.trace_id] = [record]
        self._roots[record.trace_id] = record

    def _head_keep(self, key) -> bool:
        rate = self.config.head_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = hashlib.blake2b(f"{self.config.seed}:{key}".encode(),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big") < rate * 2.0 ** 64

    def _over_budget(self) -> bool:
        budget = self.config.span_budget
        return budget is not None and self.stats["spans_retained"] >= budget

    def _retain(self, record) -> None:
        self.tracer._append(record)
        if isinstance(record, SpanRecord):
            self._count("spans_retained")

    def _decide(self, trace_id: int, decision: str) -> None:
        self._decisions[trace_id] = decision
        while len(self._decisions) > _MAX_DECISIONS:
            self._decisions.pop(next(iter(self._decisions)))

    # ------------------------------------------------------------------
    # tail decisions (called by Span.end via Tracer)
    # ------------------------------------------------------------------
    def on_span_end(self, record: SpanRecord) -> None:
        """A span closed; roots trigger the trace's tail decision."""
        if record.parent_id is not None:
            return
        self.durations.observe(record.duration_s)
        buffer = self._buffers.pop(record.trace_id, None)
        self._roots.pop(record.trace_id, None)
        if buffer is None:
            return  # head-kept (already retained) or a replayed end
        reason = self._tail_reason(record, buffer)
        if reason is not None:
            self._count("tail_kept")
            self._flush(record.trace_id, buffer, f"tail:{reason}")
        else:
            self._offer_exemplar(record.trace_id, buffer)

    def _tail_reason(self, root: SpanRecord, buffer: list) -> str | None:
        if any(isinstance(r, SpanRecord) and r.status != "ok" for r in buffer):
            return "error"
        if (self._last_alert is not None
                and self._last_alert >= root.start_s - self.config.alert_window_s):
            return "alert"
        threshold = self.config.slow_threshold_s
        if threshold is None and self.durations.count >= _MIN_SLOW_SAMPLES:
            # the quantile estimate is within alpha of a real observed
            # duration, so a root must clear it by the error band to
            # count as an outlier -- otherwise homogeneous workloads
            # (every duration in one bucket) flag every trace as slow
            threshold = (self.durations.quantile(self.config.slow_quantile)
                         * (1.0 + 2.0 * self.durations.alpha))
        if threshold is not None and root.duration_s >= threshold > 0.0:
            return "slow"
        return None

    def _offer_exemplar(self, trace_id: int, buffer: list) -> None:
        """Seeded Algorithm-R reservoir over happy-path traces."""
        capacity = self.config.exemplar_capacity
        self._reservoir_seen += 1
        if capacity > 0 and len(self._reservoir) < capacity:
            self._reservoir.append(trace_id)
            self._reservoir_buffers[trace_id] = buffer
            self._decide(trace_id, _RESERVOIR)
            return
        slot = self._rng.randrange(self._reservoir_seen) if capacity > 0 else 0
        if capacity > 0 and slot < capacity:
            evicted = self._reservoir[slot]
            self._reservoir[slot] = trace_id
            self._drop(evicted, self._reservoir_buffers.pop(evicted))
            self._reservoir_buffers[trace_id] = buffer
            self._decide(trace_id, _RESERVOIR)
        else:
            self._drop(trace_id, buffer)

    def _drop(self, trace_id: int, buffer: list) -> None:
        self._decide(trace_id, _DROP)
        self._count("traces_dropped")
        spans = sum(1 for r in buffer if isinstance(r, SpanRecord))
        if spans:
            self._count("spans_dropped", spans)

    def _flush(self, trace_id: int, buffer: list, reason: str) -> None:
        self._decide(trace_id, _KEEP)
        self._count("traces_retained")
        root = buffer[0]
        if isinstance(root, SpanRecord):
            root.attrs.setdefault("sampled", reason)
        for record in buffer:
            self._retain(record)

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Flush deferred retention (idempotent): exemplar-reservoir
        traces, then still-open buffered traces (their root never
        ended -- retained for debuggability)."""
        if self._finished:
            return
        self._finished = True
        for trace_id in sorted(self._reservoir_buffers):
            self._count("exemplars_kept")
            self._flush(trace_id, self._reservoir_buffers[trace_id], "exemplar")
        self._reservoir_buffers.clear()
        self._reservoir.clear()
        for trace_id in sorted(self._buffers):
            self._count("tail_kept")
            self._flush(trace_id, self._buffers[trace_id], "tail:open")
        self._buffers.clear()
        self._roots.clear()

    def reset(self) -> None:
        """Forget all state (between benchmark repetitions)."""
        self.stats = {k: 0 for k in _COUNTER_FIELDS}
        self.durations = QuantileSketch(self.config.alpha)
        self._rng = random.Random(self.config.seed)
        self._decisions.clear()
        self._buffers.clear()
        self._roots.clear()
        self._reservoir = []
        self._reservoir_buffers = {}
        self._reservoir_seen = 0
        self._last_alert = None
        self._finished = False

    def summary_event(self, trace_id: int, time_s: float) -> TraceEvent:
        """The end-of-run ``obs.sampling.summary`` event (stats + config)."""
        attrs = dict(self.stats)
        attrs["head_rate"] = self.config.head_rate
        attrs["exemplar_capacity"] = self.config.exemplar_capacity
        return TraceEvent(trace_id, None, "obs.sampling.summary", time_s, attrs)
