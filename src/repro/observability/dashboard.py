"""Grid health dashboard: ``python -m repro.observability.dashboard <trace.jsonl>``.

Renders, from one exported trace, everything an operator would ask of a
run after the fact:

* **activity** -- per-subsystem sparklines of span/event density over
  the run's time axis (where was the system busy, and when);
* **SLO status** -- one row per SLO seen in ``slo.sample`` events: the
  latest value against its objective, the breach fraction, and the
  sampled-value sparkline (the :class:`~repro.observability.slo.SLOEvaluator`
  emits these when tracing is on);
* **alert timeline** -- every ``slo.fire`` / ``slo.resolve`` interleaved
  with ``faults.inject`` / ``faults.recover``, so alerts line up with
  the faults that caused them;
* **query cost ledger** -- one row per query with its end-to-end
  latency, energy, bytes-on-air, hops, and uplink/grid usage (the
  :class:`~repro.observability.ledger.QueryCostLedger` fold of the same
  trace);
* **sampling** -- retained-vs-emitted trace/span counts and keep
  reasons from ``obs.sampling.summary`` events (exhaustive runs say
  so);
* **verdict** -- the health verdict reconstructed from the last sample
  of each SLO.

All rendering reuses :mod:`repro.reporting` (``sparkline``,
``format_table``); the input is the same JSONL the report CLI reads, so
one export feeds both tools.
"""

from __future__ import annotations

import argparse
import math
import sys
import typing

from repro.observability.analysis import Trace
from repro.observability.export import read_jsonl
from repro.observability.ledger import render_ledger
from repro.observability.tracer import TraceEvent
from repro.reporting import format_table, sparkline


def _time_range(trace: Trace) -> tuple[float, float]:
    """The run's [first, last] virtual-time extent across all records."""
    times: list[float] = []
    for span in trace.spans:
        times.append(span.start_s)
        if span.end_s is not None:
            times.append(span.end_s)
    times.extend(ev.time_s for ev in trace.events)
    if not times:
        return (0.0, 0.0)
    return (min(times), max(times))


def _bucketize(times: typing.Sequence[float], t0: float, t1: float,
               n_buckets: int) -> list[int]:
    """Histogram ``times`` into ``n_buckets`` equal buckets of [t0, t1]."""
    counts = [0] * n_buckets
    span = max(t1 - t0, 1e-300)
    for t in times:
        idx = min(int((t - t0) / span * n_buckets), n_buckets - 1)
        counts[idx] += 1
    return counts


def render_activity(trace: Trace, width: int = 48) -> str:
    """Per-subsystem activity sparklines over the run's time axis."""
    t0, t1 = _time_range(trace)
    by_subsystem: dict[str, list[float]] = {}
    for span in trace.spans:
        by_subsystem.setdefault(span.subsystem, []).append(span.start_s)
    for ev in trace.events:
        by_subsystem.setdefault(ev.subsystem, []).append(ev.time_s)
    if not by_subsystem:
        return "activity: no records"
    lines = [f"activity (spans+events per bucket, t = {t0:.6g} .. {t1:.6g} s):"]
    name_w = max(len(n) for n in by_subsystem) + 2
    for name in sorted(by_subsystem):
        times = by_subsystem[name]
        counts = _bucketize(times, t0, t1, width)
        lines.append(f"  {name:<{name_w}}{sparkline(counts)}  ({len(times)})")
    return "\n".join(lines)


def _slo_samples(trace: Trace) -> dict[str, list[TraceEvent]]:
    """``slo.sample`` events grouped by SLO name, in time order."""
    grouped: dict[str, list[TraceEvent]] = {}
    for ev in trace.events:
        if ev.name == "slo.sample" and "slo" in ev.attrs:
            grouped.setdefault(str(ev.attrs["slo"]), []).append(ev)
    for samples in grouped.values():
        samples.sort(key=lambda e: e.time_s)
    return grouped


def render_slos(trace: Trace) -> str:
    """SLO status table from the trace's ``slo.sample`` events."""
    grouped = _slo_samples(trace)
    if not grouped:
        return ("SLOs: no slo.sample events in this trace "
                "(run with an SLOEvaluator attached and tracing on)")
    rows = []
    for name in sorted(grouped):
        samples = grouped[name]
        values = [float(s.attrs.get("value", math.nan)) for s in samples]
        breaches = [bool(s.attrs.get("breached")) for s in samples]
        last = samples[-1]
        objective = (f"{last.attrs.get('comparison', '<=')} "
                     f"{float(last.attrs.get('objective', math.nan)):g}")
        breach_frac = sum(breaches) / len(breaches)
        rows.append([name, objective, f"{values[-1]:.4g}",
                     f"{breach_frac:.3f}",
                     "FIRING" if breaches[-1] else "ok",
                     "  " + (sparkline(values) or "-")])
    return "\n".join([
        "SLOs (from slo.sample events):",
        format_table(["slo", "objective", "last", "breach frac", "state", "trend"],
                     rows, width=16),
    ])


#: Event names that belong on the alert timeline, with display labels.
_TIMELINE_EVENTS = {
    "slo.fire": "ALERT fire",
    "slo.resolve": "alert resolve",
    "faults.inject": "fault inject",
    "faults.recover": "fault recover",
    "disc.broker_down": "BROKER down",
    "disc.promote": "broker promote",
}


def render_alerts(trace: Trace) -> str:
    """Chronological alert timeline, interleaved with fault transitions."""
    rows = []
    for ev in trace.events:
        label = _TIMELINE_EVENTS.get(ev.name)
        if label is None:
            continue
        if ev.name.startswith("slo."):
            detail = (f"{ev.attrs.get('slo')} value={float(ev.attrs.get('value', math.nan)):.4g} "
                      f"(objective {ev.attrs.get('comparison', '<=')} "
                      f"{float(ev.attrs.get('objective', math.nan)):g}, "
                      f"{ev.attrs.get('severity', '?')})")
        else:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(ev.attrs.items()))
        rows.append((ev.time_s, label, detail))
    if not rows:
        return "alert timeline: empty (no slo.*, faults.* or disc.* transitions)"
    rows.sort(key=lambda r: r[0])
    lines = ["alert timeline:"]
    for t, label, detail in rows:
        lines.append(f"  t={t:9.2f} s  {label:<14} {detail}")
    return "\n".join(lines)


def render_sampling(trace: Trace) -> str:
    """Trace-sampling summary from ``obs.sampling.summary`` events.

    Merged parallel traces carry one summary per trial world; the counts
    aggregate (they are disjoint per-world tallies).
    """
    summaries = [ev for ev in trace.events if ev.name == "obs.sampling.summary"]
    if not summaries:
        return ("sampling: exhaustive (no obs.sampling.summary events -- "
                "run with a TraceSampler to bound trace memory)")
    totals: dict[str, float] = {}
    for ev in summaries:
        for key, value in ev.attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[key] = totals.get(key, 0) + value
    emitted = int(totals.get("traces_emitted", 0))
    retained = int(totals.get("traces_retained", 0))
    frac = retained / emitted if emitted else math.nan
    lines = [
        f"sampling: {retained}/{emitted} traces retained ({frac:.1%})"
        if emitted else "sampling: on (no traces emitted)",
    ]
    rows = [
        ["traces", int(totals.get("traces_emitted", 0)),
         int(totals.get("traces_retained", 0)),
         int(totals.get("traces_dropped", 0))],
        ["spans", int(totals.get("spans_emitted", 0)),
         int(totals.get("spans_retained", 0)),
         int(totals.get("spans_dropped", 0))],
    ]
    lines.append(format_table(["kind", "emitted", "retained", "dropped"],
                              rows, width=10))
    lines.append(
        f"  kept: head={int(totals.get('head_kept', 0))}  "
        f"tail={int(totals.get('tail_kept', 0))}  "
        f"exemplar={int(totals.get('exemplars_kept', 0))}  "
        f"budget-deferred={int(totals.get('budget_deferred', 0))}")
    return "\n".join(lines)


def render_verdict(trace: Trace) -> str:
    """Health verdict reconstructed from each SLO's final sample."""
    grouped = _slo_samples(trace)
    if not grouped:
        return "verdict: unknown (no SLO samples)"
    firing_page, firing, breached_ever = [], [], []
    for name, samples in grouped.items():
        last = samples[-1]
        if any(bool(s.attrs.get("breached")) for s in samples):
            breached_ever.append(name)
        if bool(last.attrs.get("breached")):
            firing.append(name)
            if last.attrs.get("severity") == "page":
                firing_page.append(name)
    if firing_page:
        verdict = "CRITICAL"
    elif firing or breached_ever:
        verdict = "DEGRADED"
    else:
        verdict = "HEALTHY"
    suffix = f"  (firing: {', '.join(sorted(firing))})" if firing else ""
    return f"verdict: {verdict}{suffix}"


def render_dashboard(trace: Trace, width: int = 48) -> str:
    """The whole dashboard body."""
    t0, t1 = _time_range(trace)
    header = (f"trace: {len(trace.spans)} spans, {len(trace.events)} events, "
              f"{t1 - t0:.6g} s of simulated time")
    return "\n\n".join([
        header,
        render_activity(trace, width=width),
        render_slos(trace),
        render_alerts(trace),
        render_ledger(trace),
        render_sampling(trace),
        render_verdict(trace),
    ])


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.dashboard",
        description="Render a grid health dashboard (activity sparklines, "
                    "SLO status, alert timeline) from an exported trace.")
    parser.add_argument("trace", help="path to a trace exported as JSONL")
    parser.add_argument("--width", type=int, default=48,
                        help="sparkline width in characters (default 48)")
    args = parser.parse_args(argv)
    if args.width < 1:
        print("error: --width must be >= 1", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: {args.trace}: empty trace (no records)", file=sys.stderr)
        return 2
    print(render_dashboard(Trace(records), width=args.width))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
