"""Bounded-memory streaming telemetry primitives.

Grid-scale monitoring cannot retain every raw observation ("Computational
Grids" flags exactly this regime): a 10^5-query soak run would grow the
Monitor's histogram lists and the SLO engine's windows without bound.
This module provides the two fixed-memory substitutes the telemetry path
is built on:

* :class:`QuantileSketch` -- a DDSketch-style log-bucketed quantile
  sketch with a configurable *relative* error bound ``alpha``: every
  reported quantile ``est`` of a true value ``x`` satisfies
  ``|est - x| <= alpha * |x|``.  Buckets are integer counts keyed by
  ``ceil(log_gamma |x|)`` with ``gamma = (1+alpha)/(1-alpha)``, so
  :meth:`merge` is exact integer addition -- merging sketches of two
  streams equals sketching the concatenated stream, which is what keeps
  ``Monitor.merge()`` and the trial runner's seed-ordered parallel
  reduction bit-identical at any worker count.
* :class:`MultiResolutionSeries` -- a multi-tier ring buffer of
  per-bucket aggregates (count/sum/min/max/last) at widening time
  resolutions (default 1 s / 10 s / 60 s of *simulated* time), with
  deterministic front-eviction once a tier's ring is full: recent
  history at full resolution, older history downsampled, fixed memory.

:class:`TelemetryConfig` bundles the knobs
(:meth:`~repro.simkernel.monitor.Monitor.configure` and
``PervasiveGridRuntime(telemetry=...)`` consume it).

This module deliberately imports nothing from ``repro`` so the sim
kernel's monitor can import it lazily without a package cycle.
Everything here is deterministic: no wall clock, no global RNG.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import typing

__all__ = ["QuantileSketch", "MultiResolutionSeries", "TelemetryConfig",
           "DEFAULT_ALPHA"]

#: Default relative-error bound for quantile sketches (1%).
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch (DDSketch-style).

    Positive and negative values live in separate bucket maps keyed by
    ``ceil(log_gamma |x|)``; exact zeros get their own counter.  Exact
    streaming scalars (count, sum, min, max, last) ride along so merged
    summaries keep exact means and extremes.  Memory is bounded by the
    number of *distinct* buckets, ``O(log(max/min) / alpha)`` -- about
    440 buckets covering nine decades at ``alpha = 0.01``.

    Quantiles interpolate nothing: the bucket midpoint
    ``2 * gamma^i / (gamma + 1)`` is within ``alpha`` relative error of
    every value the bucket holds, and results are clamped to the exact
    observed ``[min, max]``.
    """

    __slots__ = ("alpha", "_gamma", "_mult", "count", "sum", "min", "max",
                 "last", "_zero", "_pos", "_neg")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not (0.0 < alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._mult = 1.0 / math.log(self._gamma)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = math.nan
        self._zero = 0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}

    # -- recording -----------------------------------------------------
    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) * self._mult)

    def _midpoint(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Fold one observation in (O(1), a handful of float ops)."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if value > 0.0:
            idx = self._index(value)
            self._pos[idx] = self._pos.get(idx, 0) + 1
        elif value < 0.0:
            idx = self._index(-value)
            self._neg[idx] = self._neg.get(idx, 0) + 1
        else:
            self._zero += 1

    # -- reading -------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def cells(self) -> int:
        """Retained storage cells (the bounded-memory accounting unit)."""
        return len(self._pos) + len(self._neg) + 1

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]); nan when empty.

        Within ``alpha`` relative error of the exact empirical quantile
        (nearest-rank convention matching ``np.percentile`` up to the
        bucket's guaranteed error band).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        cum = 0
        # ascending value order: negatives (largest magnitude first),
        # zeros, positives
        for idx in sorted(self._neg, reverse=True):
            cum += self._neg[idx]
            if cum > rank:
                return self._clamp(-self._midpoint(idx))
        cum += self._zero
        if cum > rank:
            return self._clamp(0.0)
        for idx in sorted(self._pos):
            cum += self._pos[idx]
            if cum > rank:
                return self._clamp(self._midpoint(idx))
        return self.max  # pragma: no cover - defensive (rank <= count-1)

    def percentile(self, q: float) -> float:
        """``q``-th percentile (``q`` in [0, 100]), np.percentile-style."""
        return self.quantile(q / 100.0)

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def mean(self) -> float:
        """Exact arithmetic mean (nan when empty)."""
        return self.sum / self.count if self.count else math.nan

    # -- algebra -------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in exactly (integer bucket addition); returns self.

        Requires matching ``alpha`` -- bucket boundaries must agree for
        the merge to stay within the error bound.
        """
        self._check_alpha(other)
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        if other.count:
            self.last = other.last
        self._zero += other._zero
        for idx, n in other._pos.items():
            self._pos[idx] = self._pos.get(idx, 0) + n
        for idx, n in other._neg.items():
            self._neg[idx] = self._neg.get(idx, 0) + n
        return self

    def diff(self, older: "QuantileSketch | None") -> "QuantileSketch":
        """The sketch of observations in ``self`` but not in ``older``.

        ``older`` must be a snapshot (:meth:`copy`) of this sketch's own
        past -- bucket-wise subtraction is then exact.  The delta's
        min/max are bucket-midpoint approximations (the exact extremes
        of just the new observations are unrecoverable), still within
        ``alpha`` relative error.  ``older=None`` returns a copy.
        """
        if older is None:
            return self.copy()
        self._check_alpha(older)
        out = QuantileSketch(self.alpha)
        out.count = self.count - older.count
        out.sum = self.sum - older.sum
        out.last = self.last
        out._zero = self._zero - older._zero
        if out.count < 0 or out._zero < 0:
            raise ValueError("diff() needs an older snapshot of the same sketch")
        for idx, n in self._pos.items():
            d = n - older._pos.get(idx, 0)
            if d < 0:
                raise ValueError("diff() needs an older snapshot of the same sketch")
            if d:
                out._pos[idx] = d
        for idx, n in self._neg.items():
            d = n - older._neg.get(idx, 0)
            if d < 0:
                raise ValueError("diff() needs an older snapshot of the same sketch")
            if d:
                out._neg[idx] = d
        if out.count:
            lo, hi = [], []
            if out._neg:
                lo.append(-self._midpoint(max(out._neg)))
                hi.append(-self._midpoint(min(out._neg)))
            if out._zero:
                lo.append(0.0)
                hi.append(0.0)
            if out._pos:
                lo.append(self._midpoint(min(out._pos)))
                hi.append(self._midpoint(max(out._pos)))
            out.min = min(lo)
            out.max = max(hi)
        return out

    def copy(self) -> "QuantileSketch":
        """An independent snapshot."""
        out = QuantileSketch(self.alpha)
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        out.last = self.last
        out._zero = self._zero
        out._pos = dict(self._pos)
        out._neg = dict(self._neg)
        return out

    def _check_alpha(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot combine sketches with alpha {self.alpha} and {other.alpha}")

    # -- identity / export ---------------------------------------------
    def state(self) -> tuple:
        """Canonical value: equal states <=> identical sketches.

        The determinism gates compare serial-vs-parallel reductions on
        this (bucket maps in sorted order, scalars verbatim).
        """
        return (self.alpha, self.count, self.sum, self.min, self.max,
                self.last, self._zero,
                tuple(sorted(self._pos.items())),
                tuple(sorted(self._neg.items())))

    def to_dict(self) -> dict:
        """JSON-ready form (keys stringified for JSON round-tripping)."""
        return {
            "alpha": self.alpha, "count": self.count, "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "last": self.last if self.count else None,
            "zero": self._zero,
            "pos": {str(k): v for k, v in sorted(self._pos.items())},
            "neg": {str(k): v for k, v in sorted(self._neg.items())},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "QuantileSketch":
        out = cls(doc["alpha"])
        out.count = int(doc["count"])
        out.sum = float(doc["sum"])
        out.min = math.inf if doc["min"] is None else float(doc["min"])
        out.max = -math.inf if doc["max"] is None else float(doc["max"])
        out.last = math.nan if doc["last"] is None else float(doc["last"])
        out._zero = int(doc["zero"])
        out._pos = {int(k): int(v) for k, v in doc["pos"].items()}
        out._neg = {int(k): int(v) for k, v in doc["neg"].items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantileSketch(alpha={self.alpha}, n={self.count}, "
                f"cells={self.cells})")


# bucket tuple layout for MultiResolutionSeries tiers
_IDX, _COUNT, _SUM, _MIN, _MAX, _LAST = range(6)
#: Storage cells per tier bucket (the footprint accounting unit).
BUCKET_CELLS = 6


class MultiResolutionSeries:
    """Fixed-memory time series: per-tier rings of bucket aggregates.

    Each tier covers the time axis at one resolution; a sample at time
    ``t`` folds into bucket ``floor(t / resolution)`` of every tier.
    When a tier exceeds ``capacity`` buckets the *oldest* bucket is
    evicted (counted in :attr:`evictions`), so tier ``r`` retains the
    most recent ``r * capacity`` seconds: 4 minutes at 1 s, 40 minutes
    at 10 s, 4 hours at 60 s with the defaults.  Out-of-order samples
    (monitor merges restart the time axis) fold into their proper bucket
    while it is still retained and are dropped (counted in
    :attr:`late_drops`) once it has been evicted.
    """

    __slots__ = ("resolutions", "capacity", "_tiers", "evictions", "late_drops")

    def __init__(self, resolutions: typing.Sequence[float] = (1.0, 10.0, 60.0),
                 capacity: int = 240) -> None:
        if not resolutions:
            raise ValueError("need at least one resolution tier")
        res = tuple(float(r) for r in resolutions)
        if any(r <= 0 for r in res) or list(res) != sorted(set(res)):
            raise ValueError("resolutions must be positive, unique, ascending")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.resolutions = res
        self.capacity = int(capacity)
        # per tier: list of [idx, count, sum, min, max, last], ascending idx
        self._tiers: list[list[list]] = [[] for _ in res]
        self.evictions = 0
        self.late_drops = 0

    def record(self, time: float, value: float) -> None:
        """Fold one sample into every tier (O(tiers) amortized)."""
        value = float(value)
        for res, buckets in zip(self.resolutions, self._tiers):
            idx = int(time // res)
            if buckets and (last := buckets[-1])[_IDX] == idx:
                last[_COUNT] += 1
                last[_SUM] += value
                if value < last[_MIN]:
                    last[_MIN] = value
                if value > last[_MAX]:
                    last[_MAX] = value
                last[_LAST] = value
            else:
                self._fold(buckets, [idx, 1, value, value, value, value])

    def _fold(self, buckets: list[list], bucket: list) -> None:
        """Insert-or-merge one bucket, keeping ascending order + capacity."""
        idx = bucket[_IDX]
        if not buckets or idx > buckets[-1][_IDX]:
            buckets.append(bucket)
        else:
            if idx < buckets[0][_IDX]:
                # the target bucket was already evicted; retaining the
                # sample would resurrect unbounded history
                self.late_drops += bucket[_COUNT]
                return
            pos = bisect.bisect_left(buckets, idx, key=lambda b: b[_IDX])
            if pos < len(buckets) and buckets[pos][_IDX] == idx:
                tgt = buckets[pos]
                tgt[_COUNT] += bucket[_COUNT]
                tgt[_SUM] += bucket[_SUM]
                if bucket[_MIN] < tgt[_MIN]:
                    tgt[_MIN] = bucket[_MIN]
                if bucket[_MAX] > tgt[_MAX]:
                    tgt[_MAX] = bucket[_MAX]
                tgt[_LAST] = bucket[_LAST]
            else:
                buckets.insert(pos, bucket)
        while len(buckets) > self.capacity:
            del buckets[0]
            self.evictions += 1

    def merge(self, other: "MultiResolutionSeries") -> "MultiResolutionSeries":
        """Fold ``other``'s buckets in, tier by tier; returns self."""
        if other.resolutions != self.resolutions:
            raise ValueError("cannot merge series with different tier resolutions")
        for buckets, theirs in zip(self._tiers, other._tiers):
            for bucket in theirs:
                self._fold(buckets, list(bucket))
        self.late_drops += other.late_drops
        return self

    def samples(self, resolution: float | None = None) -> list[tuple]:
        """``(bucket_start_s, count, sum, min, max, last)`` rows for one
        tier (finest by default), oldest first."""
        if resolution is None:
            tier = 0
        else:
            try:
                tier = self.resolutions.index(float(resolution))
            except ValueError:
                raise ValueError(
                    f"no tier at resolution {resolution!r} (have {self.resolutions})"
                ) from None
        res = self.resolutions[tier]
        return [(b[_IDX] * res, b[_COUNT], b[_SUM], b[_MIN], b[_MAX], b[_LAST])
                for b in self._tiers[tier]]

    @property
    def cells(self) -> int:
        """Retained storage cells across all tiers (bounded by
        ``len(resolutions) * capacity * BUCKET_CELLS``)."""
        return sum(len(buckets) for buckets in self._tiers) * BUCKET_CELLS

    def __len__(self) -> int:
        return sum(len(buckets) for buckets in self._tiers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MultiResolutionSeries(res={self.resolutions}, "
                f"buckets={[len(b) for b in self._tiers]})")


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Bounded-telemetry knobs for one run.

    Consumed by :meth:`repro.simkernel.monitor.Monitor.configure` and
    ``PervasiveGridRuntime(telemetry=...)``.  ``None`` caps mean
    unlimited (the pre-sketch behavior).

    Attributes
    ----------
    histogram_max_raw / series_max_raw:
        Exact raw observations each instrument retains (newest-first
        ring).  While an instrument has dropped nothing its reductions
        are exact; past the cap, percentiles come from its sketch and
        the drop count is visible on the instrument.
    sketch_alpha:
        Relative-error bound for every :class:`QuantileSketch`.
    series_resolutions / tier_capacity:
        Shape of each time series' :class:`MultiResolutionSeries`.
    max_trace_records:
        Ring size for ``Tracer.records`` (None = unlimited, the
        append-only default; evictions count under ``obs.trace.dropped``).
    """

    histogram_max_raw: int | None = 1024
    series_max_raw: int | None = 1024
    sketch_alpha: float = DEFAULT_ALPHA
    series_resolutions: tuple[float, ...] = (1.0, 10.0, 60.0)
    tier_capacity: int = 240
    max_trace_records: int | None = None

    def __post_init__(self) -> None:
        for field in ("histogram_max_raw", "series_max_raw", "max_trace_records"):
            v = getattr(self, field)
            if v is not None and v < 1:
                raise ValueError(f"{field} must be >= 1 or None, got {v!r}")
        if not (0.0 < self.sketch_alpha < 1.0):
            raise ValueError("sketch_alpha must be in (0, 1)")
