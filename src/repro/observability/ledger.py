"""Per-query cost ledger: resource attribution for every run.

The paper's Decision Maker trades handheld energy against latency per
query; the tracer already follows each query across subsystems (one
trace id per root span).  This module folds that causality into an
accounting record: one :class:`QueryCost` per ``query.run`` span,
attributing **end-to-end latency, energy (J), bytes on air, hops, and
uplink/grid usage** to the individual query that caused them.  The
records are exactly the per-query (context, cost) training rows the
learned-adaptive Decision Maker consumes, and
:func:`render_ledger` is the dashboard's cost section.

Sources of truth
----------------
* the query spans themselves (``query.run`` / ``query.epoch``), which
  the executor stamps with the measured actuals (``energy_j``,
  ``data_bits``, ``time_s``) of every outcome;
* the subtree under each root: ``net.send`` spans (hops, per-message
  energy), ``net.collect`` spans (in-network message counts),
  ``grid.uplink`` spans (bits and wall of WAN transfers), and
  ``grid.offload`` / ``grid.job`` spans (grid usage).

Because the ledger is a pure fold of the trace, it works identically on
a live tracer, an exported JSONL file, and the merged trace of a
sharded :class:`~repro.parallel.TrialRunner` sweep -- and it never
touches the :class:`~repro.simkernel.monitor.Monitor`, so it cannot
perturb the bit-identical merge invariant.

``root_name`` generalizes the fold: ``"composition.execute"`` ledgers a
composition workload the same way (latency/status only -- compositions
carry no radio energy).
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing

from repro.observability.analysis import Trace
from repro.observability.tracer import SpanRecord, Tracer

#: Ledger JSONL schema version (stamped on every exported record).
SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class QueryCost:
    """Everything one query cost, end to end.

    Attributes
    ----------
    trace_id / span_id:
        Identity of the root span (stable join key back into the trace).
    text:
        The query text (root's ``text`` attr; empty when absent).
    model:
        Execution model(s) used; epochs that switched models join with
        ``+`` (the adaptivity the Decision Maker is paid for).
    success:
        Root status was ``ok``.
    start_s / latency_s:
        Virtual start time and end-to-end duration of the root span.
    epochs:
        Continuous-query epochs under the root (0 for one-shots).
    energy_j / data_bits:
        Measured actuals summed over the root's outcomes (the numbers
        the executor stamped on the query spans).
    bytes_on_air:
        ``data_bits / 8`` -- the paper's bytes-on-air axis.
    messages / hops:
        Unicast sends under the root and the hops they took, plus
        in-network collection messages counted by ``net.collect``.
    uplink_transfers / uplink_bits / uplink_s:
        WAN uplink usage attributed to this query.
    grid_offloads / grid_jobs / grid_busy_s:
        Wired-grid usage attributed to this query.
    """

    trace_id: int
    span_id: int
    text: str
    model: str
    success: bool
    start_s: float
    latency_s: float
    epochs: int
    energy_j: float
    data_bits: float
    bytes_on_air: float
    messages: float
    hops: float
    uplink_transfers: int
    uplink_bits: float
    uplink_s: float
    grid_offloads: int
    grid_jobs: int
    grid_busy_s: float

    def to_dict(self) -> dict:
        """JSON-ready form (the ledger JSONL schema)."""
        out = dataclasses.asdict(self)
        out["schema"] = SCHEMA_VERSION
        return out


def _float_attr(span: SpanRecord, key: str) -> float:
    try:
        return float(span.attrs.get(key, 0.0) or 0.0)
    except (TypeError, ValueError):
        return 0.0


def _cost_of(trace: Trace, root: SpanRecord) -> QueryCost:
    """Fold one root span's subtree into a :class:`QueryCost`."""
    epochs = 0
    models: list[str] = []
    energy_j = 0.0
    data_bits = 0.0
    messages = 0.0
    hops = 0.0
    uplink_transfers = 0
    uplink_bits = 0.0
    uplink_s = 0.0
    grid_offloads = 0
    grid_jobs = 0
    grid_busy_s = 0.0

    epoch_like = 0  # spans carrying stamped measured actuals
    for span in trace.subtree(root):
        name = span.name
        if name == "query.epoch":
            epochs += 1
        if span is root or name == "query.epoch":
            if "energy_j" in span.attrs:
                epoch_like += 1
                energy_j += _float_attr(span, "energy_j")
                data_bits += _float_attr(span, "data_bits")
            model = span.attrs.get("model")
            if model and (not models or models[-1] != model):
                models.append(str(model))
        elif name == "net.send":
            messages += 1.0
            hops += _float_attr(span, "hops")
        elif name == "net.collect":
            messages += _float_attr(span, "messages")
        elif name == "grid.uplink":
            uplink_transfers += 1
            uplink_bits += _float_attr(span, "bits")
            uplink_s += span.duration_s
        elif name == "grid.offload":
            grid_offloads += 1
        elif name == "grid.job":
            grid_jobs += 1
            grid_busy_s += span.duration_s

    # a one-shot root (epoch_like == 0) carries no stamped actuals only
    # when it failed before execution; sums stay 0 honestly in that case
    return QueryCost(
        trace_id=root.trace_id,
        span_id=root.span_id,
        text=str(root.attrs.get("text", "")),
        model="+".join(models),
        success=root.status == "ok",
        start_s=root.start_s,
        latency_s=root.duration_s,
        epochs=epochs,
        energy_j=energy_j,
        data_bits=data_bits,
        bytes_on_air=data_bits / 8.0,
        messages=messages,
        hops=hops,
        uplink_transfers=uplink_transfers,
        uplink_bits=uplink_bits,
        uplink_s=uplink_s,
        grid_offloads=grid_offloads,
        grid_jobs=grid_jobs,
        grid_busy_s=grid_busy_s,
    )


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile without numpy (nan on empty input)."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
    return ordered[rank]


class QueryCostLedger:
    """An ordered collection of :class:`QueryCost` records.

    Build one with :meth:`from_trace` (a :class:`Trace`, a raw record
    iterable, or a live :class:`Tracer`); iterate it, summarize it, or
    export it as JSONL for the Decision Maker's training pipeline.
    """

    def __init__(self, records: typing.Sequence[QueryCost] = ()) -> None:
        self.records: list[QueryCost] = list(records)

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, source: Trace | Tracer | typing.Iterable,
                   root_name: str = "query.run") -> "QueryCostLedger":
        """Fold every span named ``root_name`` (wherever it sits in the
        forest -- merged parallel traces nest them under synthesized
        ``parallel.trial`` roots) into one ledger, in start order."""
        if isinstance(source, Trace):
            trace = source
        elif isinstance(source, Tracer):
            trace = Trace(source.records)
        else:
            trace = Trace(source)
        roots = [s for s in trace.find(root_name)
                 if s.name == root_name and s.end_s is not None]
        return cls([_cost_of(trace, root) for root in roots])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> typing.Iterator[QueryCost]:
        return iter(self.records)

    def to_dicts(self) -> list[dict]:
        """All records, JSON-ready (Decision-Maker training rows)."""
        return [r.to_dict() for r in self.records]

    def export_jsonl(self, path) -> int:
        """Write one record per line; returns the line count."""
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True))
                fh.write("\n")
                count += 1
        return count

    def summary(self) -> dict:
        """Aggregate costs across the ledger (all plain floats).

        Deterministic for a seeded run -- safe to persist as bench
        metrics and to compare at zero tolerance across worker counts.
        Percentiles are nan when no query succeeded.
        """
        ok = [r for r in self.records if r.success]
        latencies = [r.latency_s for r in ok]
        energies = [r.energy_j for r in ok]
        return {
            "queries": len(self.records),
            "succeeded": len(ok),
            "success_rate": (len(ok) / len(self.records)) if self.records else math.nan,
            "latency_p50_s": _percentile(latencies, 50.0),
            "latency_p95_s": _percentile(latencies, 95.0),
            "energy_p50_j": _percentile(energies, 50.0),
            "energy_total_j": sum(r.energy_j for r in self.records),
            "bytes_on_air_total": sum(r.bytes_on_air for r in self.records),
            "hops_total": sum(r.hops for r in self.records),
            "uplink_bits_total": sum(r.uplink_bits for r in self.records),
            "uplink_s_total": sum(r.uplink_s for r in self.records),
            "grid_jobs_total": sum(r.grid_jobs for r in self.records),
            "grid_busy_s_total": sum(r.grid_busy_s for r in self.records),
            "epochs_total": sum(r.epochs for r in self.records),
        }


def render_ledger(trace: Trace, root_name: str = "query.run",
                  max_rows: int = 20) -> str:
    """The ledger as a dashboard section (one row per query + totals)."""
    from repro.reporting import format_table

    ledger = QueryCostLedger.from_trace(trace, root_name=root_name)
    if not len(ledger):
        return (f"query cost ledger: no closed {root_name!r} spans in this "
                "trace (run with trace=True and submit queries)")
    rows: list[list] = []
    for r in ledger.records[:max_rows]:
        text = r.text if len(r.text) <= 28 else r.text[:25] + "..."
        rows.append([
            f"{r.start_s:.6g}", text or f"trace {r.trace_id}",
            r.model or "-", r.epochs, f"{r.latency_s:.4g}",
            f"{r.energy_j * 1e3:.4g}", f"{r.bytes_on_air:.4g}",
            f"{r.hops:.0f}", f"{r.uplink_bits:.4g}", r.grid_jobs,
            "ok" if r.success else "FAIL",
        ])
    dropped = len(ledger) - max_rows
    lines = [f"query cost ledger ({len(ledger)} queries):"]
    lines.append(format_table(
        ["t (s)", "query", "model", "epochs", "latency (s)", "energy (mJ)",
         "bytes", "hops", "uplink (b)", "jobs", "status"],
        rows, width=13))
    if dropped > 0:
        lines.append(f"  ... {dropped} more queries (see export_jsonl)")
    s = ledger.summary()
    lines.append(
        f"  totals: {s['succeeded']}/{s['queries']} ok, "
        f"p50 latency {s['latency_p50_s']:.4g} s, "
        f"p95 {s['latency_p95_s']:.4g} s, "
        f"energy {s['energy_total_j'] * 1e3:.4g} mJ, "
        f"{s['bytes_on_air_total']:.4g} bytes on air, "
        f"{s['hops_total']:.0f} hops, "
        f"{s['uplink_bits_total']:.4g} uplink bits, "
        f"{s['grid_jobs_total']:.0f} grid jobs")
    return "\n".join(lines)
