"""Span-based tracing over *simulated* time.

A :class:`Tracer` records what happened during a run as an append-only
sequence of :class:`SpanRecord` (an interval of virtual time with a
parent) and :class:`TraceEvent` (an instant) entries.  Recording is
cheap -- one object append, no reductions, no I/O -- so instrumentation
does not distort timing-sensitive benchmarks; analysis and export happen
after the run (:mod:`repro.observability.analysis`,
:mod:`repro.observability.export`).

Causality
---------
Spans form parent/child trees.  The tracer keeps a *current span*;
:meth:`Tracer.span` context managers nest naturally, and code that hops
across scheduled callbacks (almost everything in this callback-style
codebase) inherits its parent automatically when the shared
:class:`~repro.simkernel.simulator.Simulator` carries the tracer: the
simulator captures the current span at ``schedule()`` time and restores
it around the callback, so a query's uplink transfer scheduled three
callbacks deep still lands under the query's span.  Every root span
opens a new trace id; descendants inherit it, which is how one query's
journey is followed across subsystems.

Disabled tracing
----------------
``Tracer(sim, enabled=False)`` (and the shared :data:`NOOP_TRACER`) turn
every operation into an early return on a singleton.  Instrumentation
sites guard attribute-rich calls with ``if tracer.enabled:`` so the
disabled record path allocates nothing (asserted by a tier-1 test).

Bounded recording
-----------------
Two opt-in mechanisms keep long soak runs from growing without bound:
``max_records`` turns :attr:`Tracer.records` into a ring (oldest record
evicted, counted on :attr:`Tracer.dropped` and the ``obs.trace.dropped``
monitor counter when a monitor is attached), and a
:class:`~repro.observability.sampling.TraceSampler` decides per *trace*
what is retained at all (deterministic head sampling plus tail-based
retention of error/SLO-violating/slow traces; see
:mod:`repro.observability.sampling`).  Both default off: the append-only
behavior above is unchanged unless asked for.
"""

from __future__ import annotations

import collections
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.simulator import Simulator

#: Span ended normally.
STATUS_OK = "ok"
#: Span ended representing a failure (drop, timeout, failed attempt).
STATUS_ERROR = "error"


class SpanRecord:
    """One interval of virtual time, belonging to a trace tree.

    Attributes
    ----------
    trace_id:
        Id shared by every span/event descending from one root span.
    span_id / parent_id:
        Tree structure (``parent_id`` is ``None`` for roots).
    name:
        Dotted span name; the prefix before the first dot is the
        subsystem (``net.send`` -> ``net``).
    start_s / end_s:
        Virtual-time interval; ``end_s`` is ``None`` while open.
    attrs:
        Key/value annotations (kept JSON-friendly by callers).
    status:
        ``"ok"`` or ``"error"`` once ended.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_s",
                 "end_s", "attrs", "status")

    def __init__(self, trace_id: int, span_id: int, parent_id: int | None,
                 name: str, start_s: float, attrs: dict) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs = attrs
        self.status = STATUS_OK

    @property
    def duration_s(self) -> float:
        """Span length (0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def subsystem(self) -> str:
        """The name's first dotted component."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> dict:
        """JSON-ready form (the JSONL export schema)."""
        return {
            "kind": "span", "trace": self.trace_id, "span": self.span_id,
            "parent": self.parent_id, "name": self.name,
            "start": self.start_s, "end": self.end_s, "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, trace={self.trace_id}, "
                f"[{self.start_s:.6g}, {self.end_s}], {self.status})")


class TraceEvent:
    """A fire-and-forget instant attributed to a span (or free-floating)."""

    __slots__ = ("trace_id", "parent_id", "name", "time_s", "attrs")

    def __init__(self, trace_id: int, parent_id: int | None, name: str,
                 time_s: float, attrs: dict) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.time_s = time_s
        self.attrs = attrs

    @property
    def subsystem(self) -> str:
        """The name's first dotted component."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> dict:
        """JSON-ready form (the JSONL export schema)."""
        return {
            "kind": "event", "trace": self.trace_id, "parent": self.parent_id,
            "name": self.name, "time": self.time_s, "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.name!r}, t={self.time_s:.6g})"


class Span:
    """Open-span handle: annotate, emit child events, end.

    Usable either as a context manager (``with tracer.span(...)``, which
    also makes it the current span) or held across callbacks and ended
    explicitly with :meth:`end`.
    """

    __slots__ = ("_tracer", "record", "_parent")

    def __init__(self, tracer: "Tracer", record: SpanRecord,
                 parent: "Span | None" = None) -> None:
        self._tracer = tracer
        self.record = record
        #: Parent handle, kept so later work can attach to the nearest
        #: still-open ancestor once this span has ended.
        self._parent = parent

    # -- introspection -------------------------------------------------
    @property
    def name(self) -> str:
        return self.record.name

    @property
    def trace_id(self) -> int:
        return self.record.trace_id

    @property
    def span_id(self) -> int:
        return self.record.span_id

    @property
    def ended(self) -> bool:
        return self.record.end_s is not None

    # -- mutation ------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Merge annotations into the span; returns self for chaining."""
        self.record.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Emit an instant event parented to *this* span."""
        self._tracer._event_under(self.record, name, attrs)

    def end(self, status: str = STATUS_OK) -> None:
        """Close the span at the current virtual time (idempotent)."""
        if self.record.end_s is None:
            self.record.end_s = self._tracer._now()
            self.record.status = status
            if self._tracer.sampler is not None:
                self._tracer.sampler.on_span_end(self.record)

    def end_at(self, time_s: float, status: str = STATUS_OK) -> None:
        """Close the span at an explicit virtual time (idempotent).

        For analytic models that compute a phase's duration without
        scheduling an event at its boundary: the span can be stamped with
        the phase's true end instead of whenever the completion callback
        happens to run.  ``time_s`` is clamped to the span's start.
        """
        if self.record.end_s is None:
            self.record.end_s = max(float(time_s), self.record.start_s)
            self.record.status = status
            if self._tracer.sampler is not None:
                self._tracer.sampler.on_span_end(self.record)

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)
        self.end(STATUS_ERROR if exc_type is not None else STATUS_OK)


class _NoopSpan:
    """Shared do-nothing span for disabled tracers (never allocates)."""

    __slots__ = ()

    record = None
    name = ""
    trace_id = -1
    span_id = -1
    ended = True

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        return None

    def end(self, status: str = STATUS_OK) -> None:
        return None

    def end_at(self, time_s: float, status: str = STATUS_OK) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Append-only recorder of spans and events over virtual time.

    Parameters
    ----------
    sim:
        Clock source.  May be ``None`` only for a disabled tracer.
    enabled:
        When False every method early-returns on shared singletons;
        instrumentation sites additionally guard with
        ``if tracer.enabled:`` to keep the disabled path allocation-free.
    max_records:
        Optional ring size for :attr:`records`: once full, the oldest
        record is evicted per append and counted on :attr:`dropped` (and
        the ``obs.trace.dropped`` counter when :attr:`monitor` is set).
        Default ``None``: unlimited, the historical append-only log.
    sampler:
        Optional :class:`~repro.observability.sampling.TraceSampler`;
        when set, every record routes through its per-trace retention
        policy instead of appending unconditionally.
    monitor:
        Optional :class:`~repro.simkernel.monitor.Monitor` receiving the
        ``obs.trace.*`` / ``obs.sampling.*`` counters.

    Attributes
    ----------
    records:
        The record log, in retention order (spans appear at their
        *start*; their ``end_s`` is filled in place when they close;
        sampler-deferred traces flush at their tail decision).
    dropped:
        Records evicted by the ``max_records`` ring so far.
    """

    def __init__(self, sim: "Simulator | None", enabled: bool = True, *,
                 max_records: int | None = None,
                 sampler: "typing.Any | None" = None,
                 monitor: "typing.Any | None" = None) -> None:
        if enabled and sim is None:
            raise ValueError("an enabled tracer needs a simulator for timestamps")
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1 or None, got {max_records!r}")
        if sampler is not None and not enabled:
            raise ValueError("a sampler needs an enabled tracer")
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.records: typing.MutableSequence[SpanRecord | TraceEvent] = (
            [] if max_records is None else collections.deque())
        self.dropped = 0
        self.monitor = monitor
        self.sampler = sampler
        self._finalized = False
        self._trace_ids = itertools.count()
        self._span_ids = itertools.count()
        self._stack: list[Span] = []
        if sampler is not None:
            sampler.bind(self)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span | _NoopSpan:
        """Start a span under the current one; use as a context manager
        (entering makes it current) or call :meth:`Span.end` yourself."""
        if not self.enabled:
            return NOOP_SPAN
        return self._begin(name, self.current_span, attrs)

    def span_under(self, parent: Span | _NoopSpan | None, name: str, **attrs) -> Span | _NoopSpan:
        """Start a span with an explicit parent (``None`` = new root)."""
        if not self.enabled:
            return NOOP_SPAN
        return self._begin(name, parent if isinstance(parent, Span) else None, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instant event under the current span."""
        if not self.enabled:
            return
        current = self._stack[-1].record if self._stack else None
        self._event_under(current, name, attrs)

    # ------------------------------------------------------------------
    # current-span context
    # ------------------------------------------------------------------
    @property
    def current_span(self) -> Span | None:
        """The innermost active span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def use(self, span: Span | _NoopSpan | None) -> "_Activation":
        """Context manager making ``span`` current without ending it on
        exit -- the re-entry idiom for callback code that holds a span
        across asynchronous hops."""
        if not self.enabled or not isinstance(span, Span):
            return _NOOP_ACTIVATION
        return _Activation(self, span)

    # ------------------------------------------------------------------
    # export / reset
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Flush sampling state (idempotent; no-op without a sampler).

        Retains the exemplar reservoir and still-open buffered traces,
        then appends one ``obs.sampling.summary`` event carrying the
        retained-vs-emitted counters.  Called automatically by
        :meth:`export`; call it directly before reading
        :attr:`records` in-process at the end of a sampled run.
        """
        if self.sampler is None or self._finalized:
            return
        self._finalized = True
        self.sampler.finish()
        self._append(self.sampler.summary_event(next(self._trace_ids), self._now()))

    def export(self, path) -> int:
        """Write all records as JSONL; returns the record count."""
        from repro.observability.export import write_jsonl

        self.finalize()
        return write_jsonl(self.records, path)

    def spans(self) -> list[SpanRecord]:
        """All span records, in start order."""
        return [r for r in self.records if isinstance(r, SpanRecord)]

    def events(self) -> list[TraceEvent]:
        """All event records, in recording order."""
        return [r for r in self.records if isinstance(r, TraceEvent)]

    def clear(self) -> None:
        """Drop all records (between benchmark repetitions)."""
        self.records.clear()
        self._stack.clear()
        self.dropped = 0
        self._finalized = False
        if self.sampler is not None:
            self.sampler.reset()

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # internals (also called by Simulator context propagation)
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.sim.now  # type: ignore[union-attr]

    @staticmethod
    def _nearest_open(span: Span | None) -> Span | None:
        """``span`` or its closest unended ancestor (None when all ended).

        Callback-style code routinely closes a span and then, in the same
        callback, starts the next stage (discovery ends, execution
        begins); the new work belongs to the enclosing still-open span,
        not to a fresh root."""
        while span is not None and span.ended:
            span = span._parent
        return span

    def _begin(self, name: str, parent: Span | None, attrs: dict) -> Span:
        parent = self._nearest_open(parent)
        if parent is not None:
            trace_id = parent.record.trace_id
            parent_id = parent.record.span_id
        else:
            trace_id = next(self._trace_ids)
            parent_id = None
        record = SpanRecord(trace_id, next(self._span_ids), parent_id,
                            name, self._now(), attrs)
        if self.sampler is None:
            self._append(record)
        else:
            self.sampler.offer(record)
        return Span(self, record, parent)

    def _event_under(self, parent: SpanRecord | None, name: str, attrs: dict) -> None:
        if not self.enabled:
            return
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), None
        record = TraceEvent(trace_id, parent_id, name, self._now(), attrs)
        if self.sampler is None:
            self._append(record)
        else:
            self.sampler.offer(record)

    def _append(self, record: SpanRecord | TraceEvent) -> None:
        """Final retention: append, evicting from the ring when bounded."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.records.popleft()
            self.dropped += 1
            if self.monitor is not None:
                self.monitor.counter("obs.trace.dropped").add(1)
        self.records.append(record)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate out-of-order exits from callback-style code
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)

    # -- hooks used by Simulator.schedule/step -------------------------
    def _capture(self) -> Span | None:
        """Snapshot the current span (taken when an event is scheduled)."""
        if not self.enabled or not self._stack:
            return None
        return self._nearest_open(self._stack[-1])

    def _activate(self, span: Span | None) -> list[Span]:
        """Swap the stack to ``[span]`` for a callback; returns the old
        stack for :meth:`_deactivate`.  A captured span that ended before
        its callback runs is stood in for by its nearest open ancestor."""
        old = self._stack
        span = self._nearest_open(span)
        self._stack = [span] if span is not None else []
        return old

    def _deactivate(self, old: list[Span]) -> None:
        self._stack = old


class _Activation:
    """Re-entry context: temporarily make one span current."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)


class _NoopActivation:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_ACTIVATION = _NoopActivation()

#: Shared disabled tracer: the default everywhere instrumentation is wired.
NOOP_TRACER = Tracer(sim=None, enabled=False)
