"""CLI for wall-clock profile exports: hotspots, rollups, before/after.

Usage::

    python -m repro.observability.profile PROFILE.json [--top N] [--collapsed]
    python -m repro.observability.profile --diff OLD.json NEW.json [--top N]

The first form renders the top-N wall-clock hotspots (self/cumulative
time and call counts per handler) and the per-subsystem wall rollup of
one export written by
:meth:`~repro.observability.profiling.HookProfiler.write`;
``--collapsed`` dumps the flamegraph-compatible collapsed-stack lines
instead, ready to pipe into any tool that speaks ``frame;frame N``.

The second form is the profile-before/after protocol (EXPERIMENTS.md):
handler rows are matched by name -- which is deterministic for a seeded
workload -- and reported with old/new self time and delta, plus handlers
that appeared or disappeared, so an optimization PR can show exactly
where the wall clock moved.

Exit codes: 0 on success, 2 on unreadable/invalid input.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.observability.profiling import load_profile, subsystem_wall_rollup
from repro.reporting import format_table


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.4g} ms"


def render_hotspots(doc: dict, top: int = 15) -> str:
    """Top-N handlers by self wall time, plus the subsystem rollup."""
    handlers = doc.get("handlers", [])
    lines = [
        f"profiled {doc.get('events', 0)} event dispatches, "
        f"{len(handlers)} handlers, "
        f"{float(doc.get('wall_s', 0.0)) * 1e3:.4g} ms wall"
    ]
    if not handlers:
        lines.append("no handlers recorded (profiler enabled but nothing ran?)")
        return "\n".join(lines)
    total = max(float(doc.get("wall_s", 0.0)), 0.0)
    rows = []
    for row in handlers[:top]:
        share = (float(row["self_s"]) / total) if total > 0 else 0.0
        rows.append([
            row["name"], row["subsystem"], row["calls"],
            _fmt_s(float(row["self_s"])), _fmt_s(float(row["cum_s"])),
            f"{share:.1%}",
        ])
    lines.append(f"top {min(top, len(handlers))} handlers by self time:")
    lines.append(format_table(
        ["handler", "subsystem", "calls", "self", "cum", "share"],
        rows, width=17))
    if len(handlers) > top:
        lines.append(f"  ... {len(handlers) - top} more handlers")
    lines.append("")
    lines.append("wall time by subsystem:")
    sub_rows = [[r["subsystem"], r["handlers"], r["calls"],
                 _fmt_s(float(r["self_s"])), f"{float(r['share']):.1%}"]
                for r in subsystem_wall_rollup(doc)]
    lines.append(format_table(
        ["subsystem", "handlers", "calls", "self", "share"],
        sub_rows, width=14))
    return "\n".join(lines)


def render_collapsed(doc: dict) -> str:
    """Collapsed-stack lines (``frame;frame microseconds``)."""
    collapsed = doc.get("collapsed", {})
    return "\n".join(f"{path} {us}" for path, us in collapsed.items())


def render_diff(old: dict, new: dict, top: int = 15) -> str:
    """Before/after comparison of two exports, matched by handler name."""
    old_by = {r["name"]: r for r in old.get("handlers", [])}
    new_by = {r["name"]: r for r in new.get("handlers", [])}
    old_wall = float(old.get("wall_s", 0.0))
    new_wall = float(new.get("wall_s", 0.0))
    delta_pct = ((new_wall - old_wall) / old_wall * 100.0) if old_wall > 0 else float("nan")
    lines = [
        f"total wall: {_fmt_s(old_wall)} -> {_fmt_s(new_wall)} "
        f"({delta_pct:+.1f}%)"
    ]
    common = sorted(
        (name for name in new_by if name in old_by),
        key=lambda n: -abs(float(new_by[n]["self_s"]) - float(old_by[n]["self_s"])),
    )
    if common:
        rows = []
        for name in common[:top]:
            o, n = old_by[name], new_by[name]
            o_self, n_self = float(o["self_s"]), float(n["self_s"])
            pct = ((n_self - o_self) / o_self * 100.0) if o_self > 0 else float("nan")
            rows.append([name, f"{o['calls']}->{n['calls']}",
                         _fmt_s(o_self), _fmt_s(n_self), f"{pct:+.1f}%"])
        lines.append(f"top {min(top, len(common))} handlers by |Δ self|:")
        lines.append(format_table(
            ["handler", "calls", "self (old)", "self (new)", "Δ"],
            rows, width=17))
    appeared = sorted(set(new_by) - set(old_by))
    disappeared = sorted(set(old_by) - set(new_by))
    if appeared:
        lines.append("appeared: " + ", ".join(appeared))
    if disappeared:
        lines.append("disappeared: " + ", ".join(disappeared))
    if not appeared and not disappeared:
        lines.append("handler sets identical (stable hotspot names)")
    return "\n".join(lines)


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.profile",
        description="Render wall-clock profile exports (hotspots, rollups, diffs).",
    )
    parser.add_argument("profile", nargs="?", default=None,
                        help="profile export (JSON) written by HookProfiler.write")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="show the top N handlers (default 15)")
    parser.add_argument("--collapsed", action="store_true",
                        help="dump flamegraph collapsed-stack lines instead")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
                        help="compare two exports of the same workload")
    args = parser.parse_args(argv)

    if (args.profile is None) == (args.diff is None):
        parser.error("give exactly one of PROFILE or --diff OLD NEW")
    if args.diff is not None and args.collapsed:
        parser.error("--collapsed does not combine with --diff")

    try:
        if args.diff is not None:
            old, new = (load_profile(p) for p in args.diff)
            old_names = {r["name"] for r in old.get("handlers", [])}
            new_names = {r["name"] for r in new.get("handlers", [])}
            if not old_names & new_names:
                # disjoint handler sets: nothing to match by name, so a
                # rendered diff would be an empty (misleading) table
                print("error: profiles share no handler names "
                      "(are these the same workload?)", file=sys.stderr)
                return 2
            print(render_diff(old, new, top=args.top))
        else:
            doc = load_profile(args.profile)
            if args.collapsed:
                out = render_collapsed(doc)
                if out:
                    print(out)
            else:
                print(render_hotspots(doc, top=args.top))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
