"""Events and event handles for the DES kernel.

An :class:`Event` is a callback scheduled at a virtual time.  Events are
totally ordered by ``(time, priority, seq)``: ties in time are broken by an
explicit priority (lower runs first) and then by insertion order, which is
what makes simulation runs bit-for-bit reproducible.

Events are plain ``__slots__`` objects (not dataclasses) because they are
the single most-allocated object in a large simulation; the event lists in
:mod:`repro.simkernel.eventlist` recycle fired events through a free list,
so a steady-state run allocates no new Event objects at all.  Recycling is
made safe for outstanding :class:`EventHandle`\\ s by a generation counter:
the handle remembers the generation it was issued against and turns into
an inert "already fired" token once the event is reused.
"""

from __future__ import annotations

import typing


#: Priority for events that must run before ordinary events at the same time
#: (e.g. topology updates that must precede message deliveries).
PRIORITY_HIGH = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL = 10
#: Priority for bookkeeping that must observe all normal events at a time.
PRIORITY_LOW = 20


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.simkernel.simulator.Simulator.schedule`
    rather than directly.  The ordering (``time``, ``priority``, ``seq``)
    defines the execution order inside the event list.

    Attributes
    ----------
    time:
        Virtual time at which the callback fires.
    priority:
        Tie-break among events at the same time; lower fires first.
    seq:
        Global insertion sequence number; final tie-break, guaranteeing
        FIFO order for equal (time, priority).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Set via :meth:`EventHandle.cancel`; cancelled events are skipped
        (lazy deletion -- cheaper than heap surgery) and reclaimed by the
        event list's compaction pass.
    label:
        Optional human-readable tag used by tracing.
    trace_ctx:
        Span captured from the scheduler's tracer at schedule time (None
        when tracing is disabled); restored as the current span around
        the callback, so causality follows work across scheduled hops.
    gen:
        Reuse generation.  Bumped every time the event object is recycled
        into a free list; handles compare it to detect reuse.
    in_queue:
        True while the event sits in an event list (live or tombstoned);
        lets ``cancel`` bookkeeping distinguish queued events from ones
        already dispatched.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled",
                 "label", "trace_ctx", "gen", "in_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: typing.Callable[[], None],
        cancelled: bool = False,
        label: str = "",
        trace_ctx: typing.Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self.trace_ctx = trace_ctx
        self.gen = 0
        self.in_queue = False

    def __lt__(self, other: "Event") -> bool:
        # hand-written lexicographic compare: called O(log n) times per
        # push/pop, so avoiding dataclass tuple construction matters
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (f"Event(t={self.time:.6g}, prio={self.priority}, "
                f"seq={self.seq}, {state}, label={self.label!r})")


class EventHandle:
    """Caller-facing handle to a scheduled event.

    Allows cancellation and introspection without exposing the event-list
    entry mutably.  Handles are cheap; the kernel returns one per
    ``schedule``.  A handle stays valid for ever: once the underlying
    event has fired and been recycled for a new schedule, the handle
    detects the generation change and behaves as "already fired".
    """

    __slots__ = ("_event", "_gen", "_time", "_label", "_requested", "_owner")

    def __init__(self, event: Event, owner: typing.Any = None) -> None:
        self._event = event
        self._gen = event.gen
        self._time = event.time
        self._label = event.label
        #: True once cancel() has been called on *this handle* -- kept
        #: separately so the answer survives event recycling.
        self._requested = False
        self._owner = owner

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (or would have)."""
        return self._time

    @property
    def label(self) -> str:
        """The label given at scheduling time."""
        return self._label

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        event = self._event
        if event.gen == self._gen:
            return event.cancelled
        return self._requested

    def cancel(self) -> None:
        """Prevent the event from firing.

        Idempotent.  Cancelling an event that already fired has no effect
        (the kernel recycles the event object after firing; the stale
        generation tells this handle there is nothing left to suppress).
        """
        self._requested = True
        event = self._event
        if event.gen == self._gen and not event.cancelled:
            event.cancelled = True
            if self._owner is not None:
                self._owner.note_cancel(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {state}, label={self.label!r})"
