"""Events and event handles for the DES kernel.

An :class:`Event` is a callback scheduled at a virtual time.  Events are
totally ordered by ``(time, priority, seq)``: ties in time are broken by an
explicit priority (lower runs first) and then by insertion order, which is
what makes simulation runs bit-for-bit reproducible.
"""

from __future__ import annotations

import dataclasses
import typing


#: Priority for events that must run before ordinary events at the same time
#: (e.g. topology updates that must precede message deliveries).
PRIORITY_HIGH = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL = 10
#: Priority for bookkeeping that must observe all normal events at a time.
PRIORITY_LOW = 20


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.simkernel.simulator.Simulator.schedule`
    rather than directly.  The dataclass ordering (``time``, ``priority``,
    ``seq``) defines the execution order inside the event heap.

    Attributes
    ----------
    time:
        Virtual time at which the callback fires.
    priority:
        Tie-break among events at the same time; lower fires first.
    seq:
        Global insertion sequence number; final tie-break, guaranteeing
        FIFO order for equal (time, priority).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Set via :class:`EventHandle.cancel`; cancelled events are skipped
        (lazy deletion -- cheaper than heap surgery).
    label:
        Optional human-readable tag used by tracing.
    trace_ctx:
        Span captured from the scheduler's tracer at schedule time (None
        when tracing is disabled); restored as the current span around
        the callback, so causality follows work across scheduled hops.
    """

    time: float
    priority: int
    seq: int
    callback: typing.Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    label: str = dataclasses.field(default="", compare=False)
    trace_ctx: typing.Any = dataclasses.field(default=None, compare=False)


class EventHandle:
    """Caller-facing handle to a scheduled event.

    Allows cancellation and introspection without exposing the heap entry
    mutably.  Handles are cheap; the kernel returns one per ``schedule``.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def label(self) -> str:
        """The label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Idempotent.  Cancelling an event that already fired has no effect
        (the kernel clears the callback after firing, so there is nothing
        left to suppress).
        """
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {state}, label={self.label!r})"
