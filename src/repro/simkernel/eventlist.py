"""Pending-event containers for the DES kernel.

Two interchangeable implementations of the same contract sit behind
:class:`~repro.simkernel.simulator.Simulator`:

* :class:`HeapEventList` -- the classic single binary heap.  O(log n)
  push/pop, unbeatable at small populations.
* :class:`CalendarQueue` -- a bucketed event list (R. Brown, CACM 1988).
  Events hash into year-of-buckets by ``floor(time / width)``; push and
  pop touch one small per-bucket heap, giving amortised O(1) behaviour
  when event times are spread across the calendar -- the regime a
  10k-100k node simulation with per-hop timers lives in.

Both preserve the exact kernel total order ``(time, priority, seq)``:
for any sequence of push/pop/cancel operations the two containers yield
bit-identical event sequences (fuzz-proven in
``tests/simkernel/test_calendar_queue.py``).

Shared mechanics
----------------
*Slot reuse*: fired and compacted events are recycled through a bounded
free list (:meth:`alloc` / :meth:`recycle`), so steady-state simulation
allocates no Event objects.  Generation counters on the events keep
outstanding :class:`~repro.simkernel.event.EventHandle` objects safe.

*Cancellation accounting*: ``EventHandle.cancel`` notifies the owning
list (:meth:`note_cancel`), so ``len(list)`` is always the number of
*live* events -- the count monitors and dashboards want -- while
:attr:`queued` keeps the raw entry count including tombstones.  When
tombstones outnumber live events (and exceed a floor), the list compacts:
cancelled entries are swept out and recycled instead of lingering until
their virtual time arrives.
"""

from __future__ import annotations

import heapq
import math
import typing

from repro.simkernel.event import Event

#: Recycled events kept for reuse; beyond this they are dropped for GC.
FREELIST_MAX = 8192
#: Compaction fires when tombstones exceed both this floor and the live count.
COMPACT_MIN_TOMBSTONES = 64


class _EventListBase:
    """Allocation, recycling and cancellation bookkeeping shared by both
    containers.  Subclasses provide the actual ordering structure."""

    def __init__(self) -> None:
        self._live = 0
        self._tombstones = 0
        self._free: list[Event] = []

    # -- slot reuse ----------------------------------------------------
    def alloc(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: typing.Callable[[], None],
        label: str = "",
        trace_ctx: typing.Any = None,
    ) -> Event:
        """A fresh-or-recycled Event carrying the given schedule."""
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.label = label
            event.trace_ctx = trace_ctx
            return event
        return Event(time, priority, seq, callback, label=label, trace_ctx=trace_ctx)

    def recycle(self, event: Event) -> None:
        """Return a dispatched/compacted event to the free list.

        Bumps the generation so outstanding handles go inert, and clears
        reference-holding fields so recycling never extends the life of
        callbacks or trace spans.
        """
        event.gen += 1
        event.callback = None  # type: ignore[assignment]
        event.trace_ctx = None
        event.label = ""
        event.cancelled = False
        event.in_queue = False
        if len(self._free) < FREELIST_MAX:
            self._free.append(event)

    # -- cancellation --------------------------------------------------
    def note_cancel(self, event: Event) -> None:
        """Bookkeeping hook called by ``EventHandle.cancel``."""
        if not event.in_queue:
            return  # already dispatched (or swept); nothing queued to count
        self._on_cancel()
        self._live -= 1
        self._tombstones += 1
        if self._tombstones > COMPACT_MIN_TOMBSTONES and self._tombstones > self._live:
            self._compact()

    def _on_cancel(self) -> None:
        """Subclass hook run before cancel bookkeeping (cache invalidation)."""

    def _compact(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- sizes ---------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* (non-cancelled) queued events."""
        return self._live

    @property
    def queued(self) -> int:  # pragma: no cover - trivial, overridden
        """Raw entry count including cancelled tombstones."""
        raise NotImplementedError


class HeapEventList(_EventListBase):
    """The classic single binary heap with lazy cancellation."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[Event] = []

    def push(self, event: Event) -> None:
        event.in_queue = True
        heapq.heappush(self._heap, event)
        self._live += 1

    def peek(self) -> Event | None:
        """The next live event, pruning cancelled heads (no removal)."""
        heap = self._heap
        while heap:
            head = heap[0]
            if not head.cancelled:
                return head
            heapq.heappop(heap)
            self._tombstones -= 1
            head.in_queue = False
            self.recycle(head)
        return None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        head = self.peek()
        if head is None:
            return None
        heapq.heappop(self._heap)
        head.in_queue = False
        self._live -= 1
        return head

    def _compact(self) -> None:
        live = [e for e in self._heap if not e.cancelled]
        dead = [e for e in self._heap if e.cancelled]
        heapq.heapify(live)  # heap order is irrelevant to pop order: the
        self._heap = live    # (time, priority, seq) total order is strict
        self._tombstones = 0
        for event in dead:
            event.in_queue = False
            self.recycle(event)

    @property
    def queued(self) -> int:
        return len(self._heap)


class CalendarQueue(_EventListBase):
    """Bucketed event list with amortised O(1) push/pop.

    Events are placed by virtual bucket number ``floor(time / width)``
    into ``nbuckets`` buckets (a "year" of days); each bucket is a small
    heap so same-bucket events keep the exact kernel order.  Pop scans
    bucket-by-bucket along the calendar from the current cursor; a full
    fruitless year falls back to a direct min search (rare: only after
    large time jumps).

    The window membership test uses the *same* float computation as
    placement (``floor(time / width)``), never a reconstructed
    ``(vb + 1) * width`` bound, so placement and scan can never disagree
    about which window an event belongs to -- this is what makes the pop
    sequence bit-identical to the heap's under every float input.

    Resizing doubles (or halves) the bucket count when the live
    population crosses 2x (or 1/4x) the bucket count, re-estimating the
    width from the live events' time span; resize is a pure function of
    queue content, so runs remain deterministic.
    """

    MIN_BUCKETS = 32
    MAX_BUCKETS = 1 << 20

    def __init__(self) -> None:
        super().__init__()
        self._nbuckets = self.MIN_BUCKETS
        self._width = 1.0
        self._buckets: list[list[Event]] = [[] for _ in range(self._nbuckets)]
        self._vbucket = 0  # virtual (un-modded) bucket number of the cursor
        #: Memoized result of the last scan, valid until any push/cancel/
        #: pop mutates what the head might be (the run loop peeks then
        #: pops, so this halves scan work on the hot path).
        self._hot: list[Event] | None = None

    # -- placement -----------------------------------------------------
    def _vbucket_of(self, time: float) -> int:
        return math.floor(time / self._width)

    def push(self, event: Event) -> None:
        event.in_queue = True
        self._hot = None
        vb = self._vbucket_of(event.time)
        heapq.heappush(self._buckets[vb % self._nbuckets], event)
        self._live += 1
        if vb < self._vbucket:
            # defensive: an event behind the cursor (e.g. pushed before
            # the first pop with a negative start time) must stay visible
            self._vbucket = vb
        if self._live > 2 * self._nbuckets and self._nbuckets < self.MAX_BUCKETS:
            self._resize()

    # -- scanning ------------------------------------------------------
    def _prune(self, bucket: list[Event]) -> None:
        while bucket and bucket[0].cancelled:
            head = heapq.heappop(bucket)
            self._tombstones -= 1
            head.in_queue = False
            self.recycle(head)

    def _scan(self) -> list[Event] | None:
        """The bucket whose head is the globally next live event."""
        if self._hot is not None:
            return self._hot
        if self._live == 0:
            return None
        n = self._nbuckets
        vb = self._vbucket
        for _ in range(n):
            bucket = self._buckets[vb % n]
            self._prune(bucket)
            if bucket and self._vbucket_of(bucket[0].time) <= vb:
                self._vbucket = vb
                self._hot = bucket
                return bucket
            vb += 1
        # a whole year without a hit: jump straight to the earliest event
        best: list[Event] | None = None
        for bucket in self._buckets:
            self._prune(bucket)
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        if best is None:
            return None
        self._vbucket = self._vbucket_of(best[0].time)
        self._hot = best
        return best

    def peek(self) -> Event | None:
        bucket = self._scan()
        return bucket[0] if bucket else None

    def pop(self) -> Event | None:
        bucket = self._scan()
        if not bucket:
            return None
        event = heapq.heappop(bucket)
        event.in_queue = False
        self._live -= 1
        self._hot = None
        if self._nbuckets > self.MIN_BUCKETS and self._live < self._nbuckets // 4:
            self._resize()
        return event

    # -- resize & compaction -------------------------------------------
    def _collect_live(self) -> list[Event]:
        """Drain every bucket, recycling tombstones, returning live events."""
        live: list[Event] = []
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    event.in_queue = False
                    self.recycle(event)
                else:
                    live.append(event)
            bucket.clear()
        self._tombstones = 0
        return live

    def _resize(self) -> None:
        self._hot = None
        live = self._collect_live()
        n = self.MIN_BUCKETS
        while n < len(live) and n < self.MAX_BUCKETS:
            n *= 2
        self._nbuckets = n
        if live:
            lo = min(e.time for e in live)
            hi = max(e.time for e in live)
            span = hi - lo
            # aim for ~one event per bucket-day across the live span; the
            # 1e-9 floor keeps degenerate same-time populations finite
            self._width = max(span / max(len(live), 1), 1e-9)
            self._buckets = [[] for _ in range(n)]
            w = self._width
            nb = self._nbuckets
            for event in live:
                self._buckets[math.floor(event.time / w) % nb].append(event)
            for bucket in self._buckets:
                if len(bucket) > 1:
                    heapq.heapify(bucket)
            self._vbucket = self._vbucket_of(lo)
        else:
            self._width = 1.0
            self._buckets = [[] for _ in range(n)]
            self._vbucket = 0

    def _on_cancel(self) -> None:
        self._hot = None

    def _compact(self) -> None:
        # reuse the resize machinery: redistribution recycles tombstones
        self._resize()

    @property
    def queued(self) -> int:
        return self._live + self._tombstones


#: Names accepted by ``Simulator(queue=...)``.
EVENT_LISTS: dict[str, type[_EventListBase]] = {
    "heap": HeapEventList,
    "calendar": CalendarQueue,
}
