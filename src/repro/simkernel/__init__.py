"""Deterministic discrete-event simulation (DES) kernel.

This package is the foundation of every simulated substrate in the
reproduction (wireless network, sensor network, grid, agents).  It provides:

* :class:`~repro.simkernel.simulator.Simulator` -- a single-threaded,
  deterministic event loop with a virtual clock.
* :class:`~repro.simkernel.event.Event` -- a scheduled callback with a
  stable total order (time, priority, sequence number) so that runs are
  exactly reproducible from a seed.
* :class:`~repro.simkernel.process.Process` -- lightweight cooperative
  processes built on generators (``yield Delay(dt)`` / ``yield Waiter()``),
  in the style of SimPy, so protocol logic reads sequentially.
* :class:`~repro.simkernel.rng.RandomStreams` -- named, independent random
  substreams derived from one root seed, so adding a new consumer of
  randomness never perturbs existing streams.
* :class:`~repro.simkernel.monitor.Monitor` -- time-series statistics
  collection (counters, time-weighted averages, event logs).

Design notes
------------
All "concurrency" in the reproduction is simulated time on one OS thread.
This follows the HPC guidance used for this project: make it work and make
it deterministic first; the numeric hot paths (field evaluation, PDE
assembly, energy sums) are vectorized with numpy in their own modules,
while the event loop itself is ordinary Python because profiling shows it
is not the bottleneck at the scales the paper's scenarios require
(hundreds of nodes, tens of thousands of events).
"""

from repro.simkernel.event import Event, EventHandle
from repro.simkernel.eventlist import CalendarQueue, HeapEventList
from repro.simkernel.simulator import Simulator, SimulationError
from repro.simkernel.process import Process, Delay, Waiter, Interrupt
from repro.simkernel.rng import RandomStreams
from repro.simkernel.monitor import Monitor, TimeSeries, Counter, Gauge, Histogram

__all__ = [
    "Event",
    "EventHandle",
    "CalendarQueue",
    "HeapEventList",
    "Simulator",
    "SimulationError",
    "Process",
    "Delay",
    "Waiter",
    "Interrupt",
    "RandomStreams",
    "Monitor",
    "TimeSeries",
    "Counter",
    "Gauge",
    "Histogram",
]
