"""The deterministic event loop.

:class:`Simulator` owns the virtual clock and the pending-event list.  All
substrates (network, sensors, grid, agents) schedule work through one
shared ``Simulator`` so cross-subsystem causality is consistent.

The pending-event container is pluggable (``queue="heap"`` or
``queue="calendar"``, see :mod:`repro.simkernel.eventlist`); both preserve
the exact ``(time, priority, seq)`` total order, so the choice affects
wall-clock speed only -- never a simulation result.
"""

from __future__ import annotations

import math
import typing

from repro.simkernel.event import Event, EventHandle, PRIORITY_NORMAL
from repro.simkernel.eventlist import EVENT_LISTS, _EventListBase


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial virtual time (default ``0.0``).
    queue:
        Pending-event container: ``"heap"`` (default; the classic binary
        heap) or ``"calendar"`` (bucketed calendar queue, amortised O(1)
        per event -- the right choice for 10k+ node simulations).  Both
        yield bit-identical event sequences; an already-constructed
        event-list instance is also accepted.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0, queue: str | _EventListBase = "heap") -> None:
        self._now = float(start_time)
        if isinstance(queue, str):
            try:
                queue = EVENT_LISTS[queue]()
            except KeyError:
                raise SimulationError(
                    f"unknown queue {queue!r}; expected one of {sorted(EVENT_LISTS)}"
                ) from None
        self._events: _EventListBase = queue
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        #: Optional :class:`repro.observability.tracer.Tracer`.  When set
        #: (and enabled), the simulator captures the tracer's current
        #: span at ``schedule()`` time and restores it around the
        #: callback, so trace causality follows work across event hops.
        self.tracer = None
        #: Optional :class:`repro.observability.profiling.HookProfiler`.
        #: When set (and enabled), every event dispatch is timed in
        #: *wall clock* and attributed to its handler; the guard below is
        #: one attribute load + identity check, so the default (``None``)
        #: keeps the dispatch hot path allocation-free.
        self.profiler = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of *live* events awaiting execution.

        Cancelled-but-unswept tombstones are excluded -- this is the
        number monitors and dashboards should show.  The raw entry count
        (the pre-PR-10 ``pending`` semantics) lives on :attr:`queued`.
        """
        return len(self._events)

    @property
    def queued(self) -> int:
        """Raw pending-list entry count, cancelled tombstones included.

        This is the historical ``pending`` semantics: how many entries
        the event list physically holds.  ``queued - pending`` is the
        current tombstone debt awaiting compaction.
        """
        return self._events.queued

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: typing.Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now.

        ``delay`` must be finite and non-negative; zero delays are allowed
        and fire in FIFO order after currently-executing events at the same
        time and priority.
        """
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(f"delay must be finite and >= 0, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time`` (>= now)."""
        if not math.isfinite(time) or time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now={self._now!r}); time must be finite and >= now"
            )
        tracer = self.tracer
        ctx = tracer._capture() if tracer is not None and tracer.enabled else None
        events = self._events
        event = events.alloc(float(time), priority, self._seq, callback,
                             label=label, trace_ctx=ctx)
        self._seq += 1
        events.push(event)
        return EventHandle(event, events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if no live
        event remains (simulation exhausted).
        """
        event = self._events.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_executed += 1
        callback, event.callback = event.callback, _already_fired
        profiler = self.profiler
        profiling = profiler is not None and profiler.enabled
        if profiling:
            profiler._begin_event(event, callback)
        try:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                # run under the span current at schedule time (possibly
                # none), not whatever span the stepping code is inside
                saved = tracer._activate(event.trace_ctx)
                try:
                    callback()
                finally:
                    tracer._deactivate(saved)
            else:
                callback()
        finally:
            if profiling:
                profiler._end_event()
            # safe to reuse: the callback ran (or raised) and the event
            # left the list; handles detect the generation bump
            self._events.recycle(event)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the next event's time exceeds ``until`` and
            advance the clock to exactly ``until``.  If omitted, run until
            no live event remains.
        max_events:
            Safety valve: stop after executing this many events.

        The loop also stops early if :meth:`stop` is called from inside an
        event callback.

        Clock contract: on return, ``now`` has advanced to ``until``
        unless the run was cut short (by :meth:`stop` or ``max_events``)
        while a live event at or before ``until`` is still pending -- the
        clock never jumps past work that has not run.  Every exit path
        obeys the same rule; in particular a ``max_events`` exit whose
        only remaining events are cancelled or later than ``until`` still
        lands exactly on ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        events = self._events
        try:
            while not self._stopped:
                head = events.peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
            if until is not None and not self._stopped and self._now < until:
                head = events.peek()
                if head is None or head.time > until:
                    self._now = float(until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that the current :meth:`run` return after this event."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6g}, pending={self.pending}, executed={self._events_executed})"


def _already_fired() -> None:  # pragma: no cover - defensive
    raise SimulationError("event callback invoked twice")
