"""Named independent random substreams.

Reproducibility discipline: every consumer of randomness (mobility model,
radio loss, workload generator, learner, ...) asks :class:`RandomStreams`
for a *named* stream.  Stream state is derived from ``(root_seed, name)``
via ``numpy.random.SeedSequence``, so

* the same root seed always reproduces the same run, and
* adding a new named consumer never perturbs existing streams (unlike a
  single shared generator, where any extra draw shifts every later draw).
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """Factory of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    root_seed:
        Any integer.  Two ``RandomStreams`` with the same root seed yield
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.get("mobility")
    >>> b = streams.get("mobility")
    >>> a is b
    True
    >>> streams2 = RandomStreams(42)
    >>> float(streams2.get("mobility").random()) == float(... )  # doctest: +SKIP
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            # Stable 32-bit digest of the name; crc32 is deterministic
            # across processes (unlike hash(), which is salted).
            digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.root_seed, digest])
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child ``RandomStreams`` namespace.

        Used when a subsystem (e.g. each sensor network in a sweep) needs
        its own namespace of streams that is still a pure function of the
        root seed.
        """
        digest = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(root_seed=(self.root_seed * 1_000_003 + digest) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
