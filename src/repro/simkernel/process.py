"""Generator-based cooperative processes on top of the event loop.

Protocol logic (agent behaviours, routing rounds, query epochs) reads much
more naturally as sequential code than as hand-written callback chains.
:class:`Process` wraps a generator; the generator *yields* small command
objects and the kernel resumes it when the command completes:

``yield Delay(dt)``
    Sleep for ``dt`` virtual time units.

``yield waiter`` (a :class:`Waiter`)
    Block until someone calls :meth:`Waiter.trigger`; the value passed to
    ``trigger`` becomes the result of the ``yield`` expression.

``yield other_process``
    Block until the other process terminates; its return value becomes the
    result of the ``yield``.

Processes may be interrupted with :meth:`Process.interrupt`, which raises
:class:`Interrupt` inside the generator at its current suspension point --
this is how we model node failure and disconnection tearing down in-flight
protocol activity.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.simkernel.simulator import SimulationError, Simulator


@dataclasses.dataclass(frozen=True)
class Delay:
    """Yield command: suspend the process for ``duration`` time units."""

    duration: float


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt` (e.g. the failure reason).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Waiter:
    """A one-shot condition a process can block on.

    A ``Waiter`` is triggered at most once.  Multiple processes may wait on
    the same ``Waiter``; all are resumed with the same value, in the order
    they began waiting.
    """

    __slots__ = ("_sim", "_triggered", "_value", "_callbacks")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._triggered = False
        self._value: object = None
        self._callbacks: list[typing.Callable[[object], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> object:
        """The value passed to :meth:`trigger` (None before triggering)."""
        return self._value

    def trigger(self, value: object = None) -> None:
        """Fire the waiter, resuming all waiting processes *now*.

        Resumptions are scheduled as zero-delay events so that they run
        after the currently executing callback completes, preserving
        run-to-completion semantics.
        """
        if self._triggered:
            raise SimulationError("Waiter triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self._sim.schedule(0.0, lambda cb=cb: cb(value), label="waiter-resume")

    def _subscribe(self, callback: typing.Callable[[object], None]) -> None:
        if self._triggered:
            self._sim.schedule(0.0, lambda: callback(self._value), label="waiter-late")
        else:
            self._callbacks.append(callback)


ProcessGenerator = typing.Generator[typing.Union[Delay, "Waiter", "Process"], object, object]


class Process:
    """A cooperative process driven by the simulator.

    Parameters
    ----------
    sim:
        The owning simulator.
    generator:
        The generator implementing the process body.
    name:
        Optional label used in repr/tracing.

    Notes
    -----
    The process starts on the *next* zero-delay event after construction,
    not synchronously, so that constructing processes inside other
    callbacks cannot reorder events.
    """

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = "") -> None:
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        self._result: object = None
        self._done_waiter = Waiter(sim)
        self._pending_handle = sim.schedule(0.0, lambda: self._resume(None), label=f"start:{self.name}")
        self._interrupt_pending: Interrupt | None = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    @property
    def result(self) -> object:
        """The generator's return value (None until it finishes)."""
        return self._result

    @property
    def done(self) -> Waiter:
        """A waiter triggered with the result when the process finishes."""
        return self._done_waiter

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a dead process is a no-op (the usual race when a node
        dies while its protocol step was already completing).
        """
        if not self._alive:
            return
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        exc = Interrupt(cause)
        self._pending_handle = self._sim.schedule(
            0.0, lambda: self._resume_throw(exc), label=f"interrupt:{self.name}"
        )

    # ------------------------------------------------------------------
    def _resume(self, value: object) -> None:
        if not self._alive:
            return
        self._pending_handle = None
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            self._finish(None)
            return
        self._dispatch(command)

    def _resume_throw(self, exc: Interrupt) -> None:
        if not self._alive:
            return
        self._pending_handle = None
        try:
            command = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            self._finish(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: object) -> None:
        if isinstance(command, Delay):
            self._pending_handle = self._sim.schedule(
                command.duration, lambda: self._resume(None), label=f"delay:{self.name}"
            )
        elif isinstance(command, Waiter):
            command._subscribe(self._resume)
        elif isinstance(command, Process):
            command.done._subscribe(self._resume)
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _finish(self, result: object) -> None:
        self._alive = False
        self._result = result
        self._done_waiter.trigger(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"
