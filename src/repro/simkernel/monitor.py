"""Statistics collection for simulation runs.

:class:`Monitor` aggregates named :class:`Counter`, :class:`Gauge`,
:class:`Histogram` and :class:`TimeSeries` instruments.  Instruments are
cheap to record into (append / scalar assignment) and reduce to summary
statistics only on demand, so instrumentation does not distort
timing-sensitive benchmarks.

Memory bounds
-------------
Histograms and time series are *bounded*: each retains an exact raw tail
of the newest ``max_raw`` observations (default 1024) and, once the tail
would overflow, spills into a mergeable
:class:`~repro.observability.sketch.QuantileSketch` (and, for series, a
:class:`~repro.observability.sketch.MultiResolutionSeries` of
downsampled tiers).  While nothing has been dropped every reduction is
exact -- bit-identical to the historical raw-list behavior; past the cap,
counts/means/extremes stay exact (streamed scalars) and percentiles come
from the sketch within its configured relative error.  ``max_raw=None``
restores unbounded raw retention.  :meth:`Monitor.configure` applies a
:class:`~repro.observability.sketch.TelemetryConfig` to every current
and future instrument; :meth:`Monitor.footprint` reports retained cells
(the deterministic memory accounting the E14 benchmark gates on).

Naming conventions for instruments live in
:mod:`repro.observability.metrics` (``<subsystem>.<noun>[_<unit>]``);
:meth:`Monitor.merge` combines monitors across benchmark repetitions --
sketch merges are exact integer bucket addition, so the parallel trial
runner's seed-ordered reduction stays bit-identical at any worker count.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing

import numpy as np

#: Default exact-raw-tail length for histograms and time series.
DEFAULT_MAX_RAW = 1024
#: Default sketch relative-error bound (mirrors sketch.DEFAULT_ALPHA).
DEFAULT_ALPHA = 0.01
#: Default downsampling tiers for time series (simulated seconds).
DEFAULT_RESOLUTIONS = (1.0, 10.0, 60.0)
#: Default ring capacity (buckets) per downsampling tier.
DEFAULT_TIER_CAPACITY = 240


def _sketch_module():
    """Import :mod:`repro.observability.sketch` lazily.

    Deferred to first use (instrument spill) because importing the
    ``repro.observability`` package at module scope would cycle back
    into this module via the metrics catalog.
    """
    from repro.observability import sketch

    return sketch


@dataclasses.dataclass
class Counter:
    """A monotonically accumulating scalar (messages sent, joules spent)."""

    name: str
    value: float = 0.0
    increments: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` (may be fractional, must be finite)."""
        if not math.isfinite(amount):
            raise ValueError(f"counter {self.name!r}: amount must be finite, got {amount!r}")
        self.value += amount
        self.increments += 1

    def reset(self) -> None:
        """Zero the counter (used between benchmark repetitions)."""
        self.value = 0.0
        self.increments = 0


@dataclasses.dataclass
class Gauge:
    """A last-value-wins scalar (queue depth, active faults, % battery)."""

    name: str
    value: float = math.nan
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the instrument's current value (must be finite)."""
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name!r}: value must be finite, got {value!r}")
        self.value = float(value)
        self.updates += 1

    def reset(self) -> None:
        """Forget the value (used between benchmark repetitions)."""
        self.value = math.nan
        self.updates = 0


class Histogram:
    """A bounded distribution of observations (latencies, sizes).

    Observations are buffered raw in a Python list until ``max_raw``
    would be exceeded, then *spilled*: the raw buffer becomes a ring of
    the newest ``max_raw`` values and a :class:`QuantileSketch` carries
    the full distribution forever.  While :attr:`dropped` is 0 every
    reduction is exact over the raw values (the historical behavior);
    afterwards count/mean/max stay exact and :meth:`percentile` answers
    from the sketch within its ``alpha`` relative-error bound.
    """

    __slots__ = ("name", "_values", "_max_raw", "_alpha", "_dropped", "_sketch")

    def __init__(self, name: str, max_raw: int | None = DEFAULT_MAX_RAW,
                 alpha: float = DEFAULT_ALPHA) -> None:
        self.name = name
        self._values: typing.MutableSequence[float] = []
        self._max_raw = max_raw
        self._alpha = alpha
        self._dropped = 0
        self._sketch = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        sketch = self._sketch
        if sketch is None:
            self._values.append(value)
            if self._max_raw is not None and len(self._values) >= self._max_raw:
                self._spill()
            return
        sketch.observe(value)
        ring = self._values
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self._dropped += 1
        ring.append(value)

    def _spill(self) -> None:
        """Switch to sketch-backed mode, folding the raw buffer in."""
        sketch = _sketch_module().QuantileSketch(self._alpha)
        for v in self._values:
            sketch.observe(v)
        self._sketch = sketch
        before = len(self._values)
        self._values = collections.deque(self._values, maxlen=self._max_raw)
        # a reconfigure-shrink spills with more raw values than the new
        # cap; the truncated oldest ones count as dropped
        self._dropped += before - len(self._values)

    def __len__(self) -> int:
        return self._sketch.count if self._sketch is not None else len(self._values)

    @property
    def values(self) -> np.ndarray:
        """Retained raw observations as a float64 array (copy).

        The complete history while :attr:`dropped` is 0; the newest
        ``max_raw`` observations afterwards.
        """
        return np.fromiter(self._values, dtype=np.float64, count=len(self._values))

    @property
    def dropped(self) -> int:
        """Observations no longer in the raw tail (0 = tail is complete)."""
        return self._dropped

    @property
    def sketch(self):
        """The instrument's :class:`QuantileSketch` (None until spilled)."""
        return self._sketch

    @property
    def sum(self) -> float:
        """Exact sum of all observations ever recorded."""
        if self._sketch is not None:
            return self._sketch.sum
        return float(builtins_sum(self._values))

    @property
    def last(self) -> float:
        """Most recent observation (nan when empty)."""
        if self._values:
            return self._values[-1]
        return self._sketch.last if self._sketch is not None else math.nan

    def ensure_sketch(self) -> None:
        """Materialize the sketch now (idempotent).

        The SLO evaluator calls this on watched instruments so sketch
        deltas are available from its first tick, before any drop.
        """
        if self._sketch is None:
            self._spill()

    @property
    def cells(self) -> int:
        """Retained storage cells (raw tail + sketch buckets)."""
        return len(self._values) + (self._sketch.cells if self._sketch is not None else 0)

    def mean(self) -> float:
        """Arithmetic mean, exact at any volume (nan when empty)."""
        if self._dropped:
            return self._sketch.mean()
        return float(np.mean(self.values)) if len(self._values) else math.nan

    def max(self) -> float:
        """Largest observation ever, exact at any volume (nan when empty)."""
        if self._dropped:
            return self._sketch.max
        return float(np.max(self.values)) if len(self._values) else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (nan when empty).

        Exact (interpolated, numpy convention) while the raw tail is
        complete; from the sketch -- within ``alpha`` relative error --
        once observations have been dropped.
        """
        if self._dropped:
            return self._sketch.percentile(q)
        return float(np.percentile(self.values, q)) if len(self._values) else math.nan

    def extend(self, other: "Histogram") -> None:
        """Fold every observation of ``other`` in (sketches merge exactly)."""
        if other._sketch is None:
            if self._sketch is None and self._max_raw is None:
                self._values.extend(other._values)
                return
            for v in other._values:
                self.observe(v)
            return
        if self._sketch is None:
            self._spill()
        self._sketch.merge(other._sketch)
        self._dropped += other._dropped
        ring = self._values
        for v in other._values:
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self._dropped += 1
            ring.append(v)

    def reconfigure(self, max_raw: int | None = None, alpha: float | None = None) -> None:
        """Re-bound the instrument (meant for empty/young instruments).

        Shrinking ``max_raw`` below the current buffer spills and trims
        the oldest values; ``alpha`` cannot change once a sketch exists.
        """
        if alpha is not None:
            if self._sketch is not None and alpha != self._alpha:
                raise ValueError(
                    f"histogram {self.name!r}: cannot change alpha after spilling")
            self._alpha = alpha
        if max_raw is not None or self._max_raw is not None:
            self._max_raw = max_raw
            if self._sketch is None:
                if max_raw is not None and len(self._values) >= max_raw:
                    self._spill()
            else:
                before = len(self._values)
                self._values = collections.deque(self._values, maxlen=max_raw)
                self._dropped += before - len(self._values)


class TimeSeries:
    """A bounded sequence of ``(time, value)`` samples.

    Provides summary reductions used throughout the experiment harness.
    Samples are buffered raw in Python lists (HPC guide: vectorize
    reductions, keep the recording path allocation-free in the common
    case) until ``max_raw`` would be exceeded, then *spilled*: the raw
    buffers become rings of the newest samples, a
    :class:`QuantileSketch` carries the value distribution, and a
    :class:`MultiResolutionSeries` (:attr:`tiers`) keeps deterministic
    downsampled history at widening time resolutions.  While
    :attr:`dropped` is 0 every reduction is exact.
    """

    __slots__ = ("name", "_times", "_values", "_max_raw", "_alpha",
                 "_resolutions", "_tier_capacity", "_dropped", "_sketch",
                 "tiers")

    def __init__(self, name: str, max_raw: int | None = DEFAULT_MAX_RAW,
                 alpha: float = DEFAULT_ALPHA,
                 resolutions: typing.Sequence[float] = DEFAULT_RESOLUTIONS,
                 tier_capacity: int = DEFAULT_TIER_CAPACITY) -> None:
        self.name = name
        self._times: typing.MutableSequence[float] = []
        self._values: typing.MutableSequence[float] = []
        self._max_raw = max_raw
        self._alpha = alpha
        self._resolutions = tuple(resolutions)
        self._tier_capacity = tier_capacity
        self._dropped = 0
        self._sketch = None
        #: Downsampled multi-resolution history (None until spilled;
        #: call :meth:`ensure_sketch` to materialize eagerly).
        self.tiers = None

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        sketch = self._sketch
        if sketch is None:
            self._times.append(time)
            self._values.append(value)
            if self._max_raw is not None and len(self._values) >= self._max_raw:
                self._spill()
            return
        sketch.observe(value)
        self.tiers.record(time, value)
        ring = self._values
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self._dropped += 1
        self._times.append(time)
        ring.append(value)

    def _spill(self) -> None:
        """Switch to sketch+tier-backed mode, folding the raw buffers in."""
        mod = _sketch_module()
        sketch = mod.QuantileSketch(self._alpha)
        tiers = mod.MultiResolutionSeries(self._resolutions, self._tier_capacity)
        for t, v in zip(self._times, self._values):
            sketch.observe(v)
            tiers.record(t, v)
        self._sketch = sketch
        self.tiers = tiers
        before = len(self._values)
        self._times = collections.deque(self._times, maxlen=self._max_raw)
        self._values = collections.deque(self._values, maxlen=self._max_raw)
        # a reconfigure-shrink spills with more raw samples than the new
        # cap; the truncated oldest ones count as dropped
        self._dropped += before - len(self._values)

    def __len__(self) -> int:
        return self._sketch.count if self._sketch is not None else len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Retained sample times as a float64 array (copy)."""
        return np.fromiter(self._times, dtype=np.float64, count=len(self._times))

    @property
    def values(self) -> np.ndarray:
        """Retained sample values as a float64 array (copy)."""
        return np.fromiter(self._values, dtype=np.float64, count=len(self._values))

    @property
    def dropped(self) -> int:
        """Samples no longer in the raw tail (0 = tail is complete)."""
        return self._dropped

    @property
    def sketch(self):
        """The value-distribution :class:`QuantileSketch` (None until spilled)."""
        return self._sketch

    def ensure_sketch(self) -> None:
        """Materialize sketch and tiers now (idempotent); see
        :meth:`Histogram.ensure_sketch`."""
        if self._sketch is None:
            self._spill()

    @property
    def cells(self) -> int:
        """Retained storage cells (raw tails + sketch + tier buckets)."""
        total = 2 * len(self._values)
        if self._sketch is not None:
            total += self._sketch.cells + self.tiers.cells
        return total

    def mean(self) -> float:
        """Arithmetic mean of values, exact at any volume (nan when empty)."""
        if self._dropped:
            return self._sketch.mean()
        return float(np.mean(self.values)) if len(self._values) else math.nan

    def total(self) -> float:
        """Sum of values, exact at any volume (0 when empty)."""
        if self._dropped:
            return self._sketch.sum
        return float(np.sum(self.values)) if len(self._values) else 0.0

    def max(self) -> float:
        """Maximum value ever, exact at any volume (nan when empty)."""
        if self._dropped:
            return self._sketch.max
        return float(np.max(self.values)) if len(self._values) else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of values (nan when empty); exact
        while the raw tail is complete, sketch-backed afterwards."""
        if self._dropped:
            return self._sketch.percentile(q)
        return float(np.percentile(self.values, q)) if len(self._values) else math.nan

    def last(self) -> float:
        """Most recent value (nan when empty); always exact (the ring
        keeps the newest samples)."""
        if self._values:
            return self._values[-1]
        return math.nan

    def extend(self, other: "TimeSeries") -> None:
        """Fold every sample of ``other`` in, in ``other``'s order."""
        if other._sketch is None:
            if self._sketch is None and self._max_raw is None:
                self._times.extend(other._times)
                self._values.extend(other._values)
                return
            for t, v in zip(other._times, other._values):
                self.record(t, v)
            return
        if self._sketch is None:
            self._spill()
        self._sketch.merge(other._sketch)
        self.tiers.merge(other.tiers)
        self._dropped += other._dropped
        ring = self._values
        for t, v in zip(other._times, other._values):
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self._dropped += 1
            self._times.append(t)
            ring.append(v)

    def reconfigure(self, max_raw: int | None = None, alpha: float | None = None,
                    resolutions: typing.Sequence[float] | None = None,
                    tier_capacity: int | None = None) -> None:
        """Re-bound the instrument (meant for empty/young instruments);
        sketch/tier shape cannot change once spilled."""
        if self._sketch is not None and any(
                v is not None for v in (alpha, resolutions, tier_capacity)):
            if ((alpha is not None and alpha != self._alpha)
                    or (resolutions is not None and tuple(resolutions) != self._resolutions)
                    or (tier_capacity is not None and tier_capacity != self._tier_capacity)):
                raise ValueError(
                    f"series {self.name!r}: cannot reshape sketch/tiers after spilling")
        if alpha is not None:
            self._alpha = alpha
        if resolutions is not None:
            self._resolutions = tuple(resolutions)
        if tier_capacity is not None:
            self._tier_capacity = tier_capacity
        self._max_raw = max_raw
        if self._sketch is None:
            if max_raw is not None and len(self._values) >= max_raw:
                self._spill()
        else:
            before = len(self._values)
            self._times = collections.deque(self._times, maxlen=max_raw)
            self._values = collections.deque(self._values, maxlen=max_raw)
            self._dropped += before - len(self._values)


#: plain built-in sum, aliased so ``Histogram.sum`` (a property) can use it
builtins_sum = sum


class Monitor:
    """A registry of named instruments for one simulation run.

    Keyword parameters bound new histograms/series (see
    :class:`Histogram` / :class:`TimeSeries`); :meth:`configure` changes
    them for current and future instruments in one call.
    """

    def __init__(self, *, histogram_max_raw: int | None = DEFAULT_MAX_RAW,
                 series_max_raw: int | None = DEFAULT_MAX_RAW,
                 sketch_alpha: float = DEFAULT_ALPHA,
                 series_resolutions: typing.Sequence[float] = DEFAULT_RESOLUTIONS,
                 tier_capacity: int = DEFAULT_TIER_CAPACITY) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}
        self._histogram_max_raw = histogram_max_raw
        self._series_max_raw = series_max_raw
        self._sketch_alpha = sketch_alpha
        self._series_resolutions = tuple(series_resolutions)
        self._tier_capacity = tier_capacity

    def configure(self, config=None, **overrides) -> "Monitor":
        """Apply telemetry bounds to current and future instruments.

        ``config`` is duck-typed against
        :class:`~repro.observability.sketch.TelemetryConfig` (only the
        monitor-relevant fields are read); keyword ``overrides`` win.
        Returns self.
        """
        fields = ("histogram_max_raw", "series_max_raw", "sketch_alpha",
                  "series_resolutions", "tier_capacity")
        updates: dict[str, typing.Any] = {}
        if config is not None:
            for field in fields:
                if hasattr(config, field):
                    updates[field] = getattr(config, field)
        for field, value in overrides.items():
            if field not in fields:
                raise TypeError(f"unknown telemetry field {field!r}")
            updates[field] = value
        if "series_resolutions" in updates:
            updates["series_resolutions"] = tuple(updates["series_resolutions"])
        for field, value in updates.items():
            setattr(self, f"_{field}", value)
        for histogram in self._histograms.values():
            histogram.reconfigure(max_raw=self._histogram_max_raw,
                                  alpha=self._sketch_alpha)
        for series in self._series.values():
            series.reconfigure(max_raw=self._series_max_raw,
                               alpha=self._sketch_alpha,
                               resolutions=self._series_resolutions,
                               tier_capacity=self._tier_capacity)
        return self

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, max_raw=self._histogram_max_raw,
                                  alpha=self._sketch_alpha)
            self._histograms[name] = histogram
        return histogram

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name, max_raw=self._series_max_raw,
                                alpha=self._sketch_alpha,
                                resolutions=self._series_resolutions,
                                tier_capacity=self._tier_capacity)
            self._series[name] = series
        return series

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def footprint(self) -> dict[str, int]:
        """Retained telemetry cells per instrument kind, plus ``total``.

        Counts *cells* (scalar slots held), not bytes: deterministic
        across platforms and Python builds, which is what lets CI gate
        "telemetry memory stays flat" at a tight tolerance.
        """
        out = {
            "counters": 2 * len(self._counters),
            "gauges": 2 * len(self._gauges),
            "histograms": builtins_sum(h.cells for h in self._histograms.values()),
            "series": builtins_sum(s.cells for s in self._series.values()),
        }
        out["total"] = builtins_sum(out.values())
        return out

    def summary(self) -> dict[str, typing.Any]:
        """A flat summary dict, deterministically ordered.

        Per counter: its value under the bare name plus
        ``<name>.increments`` (so rates per recording can be derived);
        then gauges, histogram reductions (count/mean/p50/p95/p99/max),
        and per-series mean/total/max.  Keys are emitted in sorted order
        within each instrument kind, so two runs of the same workload
        diff cleanly.
        """
        out: dict[str, typing.Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
            out[f"{name}.increments"] = counter.increments
        for name, gauge in sorted(self._gauges.items()):
            if gauge.updates:
                out[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            if len(histogram):
                out[f"{name}.count"] = len(histogram)
                out[f"{name}.mean"] = histogram.mean()
                out[f"{name}.p50"] = histogram.percentile(50)
                out[f"{name}.p95"] = histogram.percentile(95)
                out[f"{name}.p99"] = histogram.percentile(99)
                out[f"{name}.max"] = histogram.max()
        for name, series in sorted(self._series.items()):
            if len(series):
                out[f"{name}.mean"] = series.mean()
                out[f"{name}.total"] = series.total()
                out[f"{name}.max"] = series.max()
        return out

    def merge(self, other: "Monitor") -> "Monitor":
        """Fold ``other``'s instruments into this monitor, in place.

        Collision semantics, per instrument kind:

        * counters: values and increment counts both add;
        * gauges: last writer wins -- ``other``'s value replaces ours
          when it has been set (merging repetitions keeps the most
          recent reading);
        * histograms: observations fold in (raw concatenation while
          complete; exact sketch merges once either side has spilled);
        * time series: samples fold in, in ``other``'s order
          (repetition *i+1*'s virtual clock restarts, so callers who
          need a global axis offset times themselves).

        Merging is deterministic in the fold order, which the parallel
        trial runner fixes by seed -- serial and parallel reductions are
        bit-identical, sketches included.

        Returns ``self`` so reductions chain:
        ``Monitor().merge(a).merge(b).summary()``.
        """
        for name, counter in other._counters.items():
            mine = self.counter(name)
            mine.value += counter.value
            mine.increments += counter.increments
        for name, gauge in other._gauges.items():
            if gauge.updates:
                mine_g = self.gauge(name)
                mine_g.value = gauge.value
                mine_g.updates += gauge.updates
        for name, histogram in other._histograms.items():
            self.histogram(name).extend(histogram)
        for name, series in other._series.items():
            self.series(name).extend(series)
        return self
