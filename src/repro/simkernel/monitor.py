"""Statistics collection for simulation runs.

:class:`Monitor` aggregates named :class:`Counter` and :class:`TimeSeries`
instruments.  Instruments are cheap to record into (append / integer add)
and reduce to summary statistics only on demand, so instrumentation does
not distort timing-sensitive benchmarks.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np


@dataclasses.dataclass
class Counter:
    """A monotonically accumulating scalar (messages sent, joules spent)."""

    name: str
    value: float = 0.0
    increments: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` (may be fractional, must be finite)."""
        if not math.isfinite(amount):
            raise ValueError(f"counter {self.name!r}: amount must be finite, got {amount!r}")
        self.value += amount
        self.increments += 1

    def reset(self) -> None:
        """Zero the counter (used between benchmark repetitions)."""
        self.value = 0.0
        self.increments = 0


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples.

    Provides summary reductions used throughout the experiment harness.
    Samples are buffered in Python lists and converted to numpy arrays
    lazily (HPC guide: vectorize reductions, keep the recording path
    allocation-free in the common case).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float64 array (copy)."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float64 array (copy)."""
        return np.asarray(self._values, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean of values (nan when empty)."""
        return float(np.mean(self._values)) if self._values else math.nan

    def total(self) -> float:
        """Sum of values (0 when empty)."""
        return float(np.sum(self._values)) if self._values else 0.0

    def max(self) -> float:
        """Maximum value (nan when empty)."""
        return float(np.max(self._values)) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of values (nan when empty)."""
        return float(np.percentile(self._values, q)) if self._values else math.nan

    def last(self) -> float:
        """Most recent value (nan when empty)."""
        return self._values[-1] if self._values else math.nan


class Monitor:
    """A registry of named instruments for one simulation run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        return series

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def summary(self) -> dict[str, typing.Any]:
        """A flat summary dict (counters + per-series mean/total/max)."""
        out: dict[str, typing.Any] = dict(self.counters())
        for name, series in sorted(self._series.items()):
            if len(series):
                out[f"{name}.mean"] = series.mean()
                out[f"{name}.total"] = series.total()
                out[f"{name}.max"] = series.max()
        return out
