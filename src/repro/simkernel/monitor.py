"""Statistics collection for simulation runs.

:class:`Monitor` aggregates named :class:`Counter`, :class:`Gauge`,
:class:`Histogram` and :class:`TimeSeries` instruments.  Instruments are
cheap to record into (append / scalar assignment) and reduce to summary
statistics only on demand, so instrumentation does not distort
timing-sensitive benchmarks.

Naming conventions for instruments live in
:mod:`repro.observability.metrics` (``<subsystem>.<noun>[_<unit>]``);
:meth:`Monitor.merge` combines monitors across benchmark repetitions.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np


@dataclasses.dataclass
class Counter:
    """A monotonically accumulating scalar (messages sent, joules spent)."""

    name: str
    value: float = 0.0
    increments: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` (may be fractional, must be finite)."""
        if not math.isfinite(amount):
            raise ValueError(f"counter {self.name!r}: amount must be finite, got {amount!r}")
        self.value += amount
        self.increments += 1

    def reset(self) -> None:
        """Zero the counter (used between benchmark repetitions)."""
        self.value = 0.0
        self.increments = 0


@dataclasses.dataclass
class Gauge:
    """A last-value-wins scalar (queue depth, active faults, % battery)."""

    name: str
    value: float = math.nan
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the instrument's current value (must be finite)."""
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name!r}: value must be finite, got {value!r}")
        self.value = float(value)
        self.updates += 1

    def reset(self) -> None:
        """Forget the value (used between benchmark repetitions)."""
        self.value = math.nan
        self.updates = 0


class Histogram:
    """An append-only distribution of observations (latencies, sizes).

    Observations are buffered in a Python list and reduced lazily, like
    :class:`TimeSeries` but without the time axis -- the instrument for
    "what did the distribution look like", not "how did it evolve".
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """Observations as a float64 array (copy)."""
        return np.asarray(self._values, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean (nan when empty)."""
        return float(np.mean(self._values)) if self._values else math.nan

    def max(self) -> float:
        """Largest observation (nan when empty)."""
        return float(np.max(self._values)) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (nan when empty)."""
        return float(np.percentile(self._values, q)) if self._values else math.nan

    def extend(self, other: "Histogram") -> None:
        """Append every observation of ``other``."""
        self._values.extend(other._values)


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples.

    Provides summary reductions used throughout the experiment harness.
    Samples are buffered in Python lists and converted to numpy arrays
    lazily (HPC guide: vectorize reductions, keep the recording path
    allocation-free in the common case).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float64 array (copy)."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float64 array (copy)."""
        return np.asarray(self._values, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean of values (nan when empty)."""
        return float(np.mean(self._values)) if self._values else math.nan

    def total(self) -> float:
        """Sum of values (0 when empty)."""
        return float(np.sum(self._values)) if self._values else 0.0

    def max(self) -> float:
        """Maximum value (nan when empty)."""
        return float(np.max(self._values)) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of values (nan when empty)."""
        return float(np.percentile(self._values, q)) if self._values else math.nan

    def last(self) -> float:
        """Most recent value (nan when empty)."""
        return self._values[-1] if self._values else math.nan


class Monitor:
    """A registry of named instruments for one simulation run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        return series

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def summary(self) -> dict[str, typing.Any]:
        """A flat summary dict, deterministically ordered.

        Per counter: its value under the bare name plus
        ``<name>.increments`` (so rates per recording can be derived);
        then gauges, histogram reductions, and per-series
        mean/total/max.  Keys are emitted in sorted order within each
        instrument kind, so two runs of the same workload diff cleanly.
        """
        out: dict[str, typing.Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
            out[f"{name}.increments"] = counter.increments
        for name, gauge in sorted(self._gauges.items()):
            if gauge.updates:
                out[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            if len(histogram):
                out[f"{name}.count"] = len(histogram)
                out[f"{name}.mean"] = histogram.mean()
                out[f"{name}.p50"] = histogram.percentile(50)
                out[f"{name}.p95"] = histogram.percentile(95)
                out[f"{name}.max"] = histogram.max()
        for name, series in sorted(self._series.items()):
            if len(series):
                out[f"{name}.mean"] = series.mean()
                out[f"{name}.total"] = series.total()
                out[f"{name}.max"] = series.max()
        return out

    def merge(self, other: "Monitor") -> "Monitor":
        """Fold ``other``'s instruments into this monitor, in place.

        Collision semantics, per instrument kind:

        * counters: values and increment counts both add;
        * gauges: last writer wins -- ``other``'s value replaces ours
          when it has been set (merging repetitions keeps the most
          recent reading);
        * histograms: observation lists concatenate;
        * time series: sample lists concatenate in ``other``'s order
          (repetition *i+1*'s virtual clock restarts, so callers who
          need a global axis offset times themselves).

        Returns ``self`` so reductions chain:
        ``Monitor().merge(a).merge(b).summary()``.
        """
        for name, counter in other._counters.items():
            mine = self.counter(name)
            mine.value += counter.value
            mine.increments += counter.increments
        for name, gauge in other._gauges.items():
            if gauge.updates:
                mine_g = self.gauge(name)
                mine_g.value = gauge.value
                mine_g.updates += gauge.updates
        for name, histogram in other._histograms.items():
            self.histogram(name).extend(histogram)
        for name, series in other._series.items():
            mine_s = self.series(name)
            mine_s._times.extend(series._times)
            mine_s._values.extend(series._values)
        return self
