"""The base-station-to-grid WAN uplink."""

from __future__ import annotations

import typing

from repro.simkernel import Simulator


class Uplink:
    """A shared-capacity WAN link between a base station and the grid.

    Transfers are serialized (one pipe): a transfer submitted while
    another is in flight queues behind it.  This models the paper's point
    that shipping raw sensor streams can exceed "the capacity of the
    wireless connections" and the base station's uplink.

    Parameters
    ----------
    bandwidth_bps:
        Link throughput.
    latency_s:
        One-way propagation latency per transfer.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float = 10e6, latency_s: float = 0.05) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self._free_at = sim.now
        self.bits_transferred = 0.0
        self.transfers = 0
        #: WAN availability: False models a backhaul outage -- the
        #: pervasive layer must then keep computation local.
        self.online = True

    def transfer_time(self, bits: float) -> float:
        """Unloaded transfer time for ``bits`` (no queueing)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits / self.bandwidth_bps + self.latency_s

    def estimate_completion(self, bits: float) -> float:
        """Finish time if a transfer of ``bits`` were submitted now."""
        start = max(self._free_at, self.sim.now)
        return start + self.transfer_time(bits)

    def transfer(self, bits: float, on_complete: typing.Callable[[], None] | None = None) -> float:
        """Start a transfer; returns its finish time.

        Raises ``RuntimeError`` during an outage -- callers must check
        :attr:`online` (the execution models do).
        """
        if not self.online:
            raise RuntimeError("uplink is offline")
        finish = self.estimate_completion(bits)
        self._free_at = finish
        self.bits_transferred += bits
        self.transfers += 1
        if on_complete is not None:
            self.sim.schedule(finish - self.sim.now, on_complete, label="uplink-transfer")
        return finish
