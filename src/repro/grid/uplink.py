"""The base-station-to-grid WAN uplink."""

from __future__ import annotations

import math
import typing


from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER
from repro.simkernel import Simulator


class Uplink:
    """A shared-capacity WAN link between a base station and the grid.

    Transfers are serialized (one pipe): a transfer submitted while
    another is in flight queues behind it.  This models the paper's point
    that shipping raw sensor streams can exceed "the capacity of the
    wireless connections" and the base station's uplink.

    Availability is first-class: :attr:`online` may be toggled directly
    or via :meth:`set_online` (the fault layer drives outage windows
    through it), subscribers registered with :meth:`subscribe` observe
    every edge, and with ``queue_when_offline=True`` transfers submitted
    during an outage are deferred and drained on recovery instead of
    raising.

    Parameters
    ----------
    bandwidth_bps:
        Link throughput.
    latency_s:
        One-way propagation latency per transfer.
    queue_when_offline:
        When True, :meth:`transfer` during an outage queues the transfer
        for the next recovery instead of raising ``RuntimeError``.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 10e6,
        latency_s: float = 0.05,
        queue_when_offline: bool = False,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.queue_when_offline = queue_when_offline
        self._free_at = sim.now
        self.bits_transferred = 0.0
        self.transfers = 0
        self.outages = 0
        self._online = True
        self._subscribers: list[typing.Callable[[bool], None]] = []
        self._deferred: list[typing.Callable[[], None]] = []
        #: Instrumentation sinks, wired by :class:`GridInfrastructure`
        #: (or left as the no-ops).
        self.tracer = NOOP_TRACER
        self.monitor = None

    # ------------------------------------------------------------------
    # availability
    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        """WAN availability: False models a backhaul outage -- the
        pervasive layer must then keep computation local."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        self.set_online(bool(value))

    def set_online(self, value: bool) -> None:
        """Flip availability, notifying subscribers on every edge and
        draining transfers deferred during the outage on recovery."""
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        if not value:
            self.outages += 1
        if self.tracer.enabled:
            self.tracer.event("grid.uplink_edge", online=value,
                              deferred=len(self._deferred))
        for callback in list(self._subscribers):
            callback(value)
        if value and self._deferred:
            pending, self._deferred = self._deferred, []
            for thunk in pending:
                thunk()

    def subscribe(self, callback: typing.Callable[[bool], None]) -> None:
        """Register an availability observer ``callback(online)``; fired
        on every online/offline edge, after internal state has settled."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: typing.Callable[[bool], None]) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def when_online(self, callback: typing.Callable[[], None]) -> None:
        """Run ``callback`` now if online, else once at the next recovery."""
        if self._online:
            callback()
        else:
            self._deferred.append(callback)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer_time(self, bits: float) -> float:
        """Unloaded transfer time for ``bits`` (no queueing)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits / self.bandwidth_bps + self.latency_s

    def estimate_completion(self, bits: float) -> float:
        """Finish time if a transfer of ``bits`` were submitted now.

        Returns ``math.inf`` during an outage: an offline uplink has no
        finite completion time, so planners comparing estimates will
        never choose grid offload while the backhaul is down.
        """
        if not self._online:
            return math.inf
        start = max(self._free_at, self.sim.now)
        return start + self.transfer_time(bits)

    def transfer(self, bits: float, on_complete: typing.Callable[[], None] | None = None) -> float:
        """Start a transfer; returns its finish time.

        During an outage: raises ``RuntimeError`` by default, or (with
        ``queue_when_offline=True``) defers the transfer to the next
        recovery and returns ``math.inf`` (the true finish time is
        unknown until the link returns; ``on_complete`` still fires after
        the deferred transfer completes).
        """
        if not self._online:
            if not self.queue_when_offline:
                raise RuntimeError("uplink is offline")
            if self.monitor is not None:
                self.monitor.counter("grid.uplink_deferred").add()
            if self.tracer.enabled:
                self.tracer.event("grid.uplink_deferred", bits=bits)
            self._deferred.append(lambda: self.transfer(bits, on_complete))
            return math.inf
        start = max(self._free_at, self.sim.now)
        finish = start + self.transfer_time(bits)
        self._free_at = finish
        self.bits_transferred += bits
        self.transfers += 1
        if self.monitor is not None:
            self.monitor.counter("grid.uplink_transfers").add()
        span = NOOP_SPAN
        if self.tracer.enabled:
            span = self.tracer.span("grid.uplink", bits=bits,
                                    wait_s=start - self.sim.now)
        if on_complete is not None or span is not NOOP_SPAN:
            def finish_transfer() -> None:
                span.end()
                if on_complete is not None:
                    on_complete()

            self.sim.schedule(finish - self.sim.now, finish_transfer,
                              label="uplink-transfer")
        return finish
