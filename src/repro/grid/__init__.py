"""Wired Grid substrate.

Simulates the "networked computational resources (a.k.a 'The Grid')" the
pervasive layer offloads to: compute sites with finite throughput and FIFO
queues, a least-loaded scheduler, and a WAN uplink from each base station.
Only *relative* compute and transfer costs matter for the partitioning
decision, so sites are modelled by an effective ops/second rate rather
than by microarchitecture.

* :mod:`~repro.grid.job` -- :class:`ComputeJob` descriptions.
* :mod:`~repro.grid.resource` -- :class:`GridResource`, a queued server.
* :mod:`~repro.grid.scheduler` -- least-loaded dispatch across sites.
* :mod:`~repro.grid.uplink` -- the base-station-to-grid WAN link.
* :mod:`~repro.grid.infrastructure` -- :class:`GridInfrastructure` façade.
"""

from repro.grid.job import ComputeJob, JobResult
from repro.grid.resource import GridResource
from repro.grid.scheduler import GridScheduler
from repro.grid.uplink import Uplink
from repro.grid.infrastructure import GridInfrastructure

__all__ = [
    "ComputeJob",
    "JobResult",
    "GridResource",
    "GridScheduler",
    "Uplink",
    "GridInfrastructure",
]
