"""The grid façade: sites + scheduler + uplink in one object."""

from __future__ import annotations

import math
import typing

from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, STATUS_ERROR, Tracer
from repro.simkernel import Monitor, Simulator
from repro.grid.job import ComputeJob, JobResult
from repro.grid.resource import GridResource
from repro.grid.scheduler import GridScheduler
from repro.grid.uplink import Uplink


class GridInfrastructure:
    """Everything behind the base station's uplink.

    Parameters
    ----------
    sim:
        Shared simulator.
    site_rates:
        ops/second of each compute site (default: one workstation-class
        and one supercomputer-class site, the paper's "from the ASCI
        terraflop machines to workstations" span).
    uplink:
        WAN link from the base station (default 10 Mb/s, 50 ms).

    The canonical offload pattern is :meth:`offload`: upload input bits,
    run the job on the best site, download output bits, then invoke the
    caller's callback.  :meth:`estimate_offload_time` predicts the same
    pipeline without executing it -- the Decision Maker compares this
    estimate against in-network execution.
    """

    def __init__(
        self,
        sim: Simulator,
        site_rates: typing.Sequence[float] = (1e9, 1e12),
        uplink: Uplink | None = None,
        monitor: Monitor | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.resources = [
            GridResource(sim, name=f"site{i}", ops_per_second=rate)
            for i, rate in enumerate(site_rates)
        ]
        self.scheduler = GridScheduler(self.resources)
        self.uplink = uplink or Uplink(sim)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.set_instrumentation(self.monitor, self.tracer)

    def set_instrumentation(self, monitor: Monitor | None, tracer: Tracer | None) -> None:
        """Point the whole grid (sites, scheduler, uplink) at one
        monitor/tracer pair; either may be None/no-op."""
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        for part in (self.scheduler, self.uplink, *self.resources):
            part.monitor = monitor
            part.tracer = self.tracer

    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        """Whether the grid is reachable through the uplink."""
        return self.uplink.online

    def estimate_offload_time(self, job: ComputeJob) -> float:
        """Predicted upload + queue + compute + download time for ``job``.

        ``math.inf`` during an uplink outage -- planners comparing
        offload against local execution then never pick the grid.
        """
        if not self.uplink.online:
            return math.inf
        upload = self.uplink.transfer_time(job.input_bits)
        compute = self.scheduler.estimate_turnaround(job)
        download = self.uplink.transfer_time(job.output_bits)
        return upload + compute + download

    def offload(
        self,
        job: ComputeJob,
        on_complete: typing.Callable[[JobResult], None] | None = None,
        on_failure: typing.Callable[[str], None] | None = None,
        max_attempts: int = 1,
    ) -> None:
        """Run ``job`` on the grid: upload, execute, download, callback.

        Failures (uplink offline at either transfer leg, or the job
        failing on-site with attempts exhausted) invoke ``on_failure``
        with a reason tag; without an ``on_failure`` the uplink's
        ``RuntimeError`` propagates as before.  ``max_attempts`` enables
        checkpointed re-submission across sites (see
        :meth:`GridScheduler.submit`).
        """

        tracer = self.tracer
        span = NOOP_SPAN
        if tracer.enabled:
            span = tracer.span("grid.offload", job_id=job.job_id, ops=job.ops,
                               input_bits=job.input_bits, output_bits=job.output_bits)

        def leg(bits: float, then: typing.Callable[[], None]) -> None:
            if not self.uplink.online and not self.uplink.queue_when_offline:
                if tracer.enabled:
                    span.set(fail_reason="uplink-offline")
                span.end(STATUS_ERROR)
                if on_failure is None:
                    raise RuntimeError("uplink is offline")
                on_failure("uplink-offline")
                return
            with tracer.use(span):
                self.uplink.transfer(bits, then)

        def after_upload() -> None:
            def after_compute(result: JobResult) -> None:
                if not result.success:
                    if tracer.enabled:
                        span.set(fail_reason=result.error or "job-failed",
                                 site=result.resource)
                    span.end(STATUS_ERROR)
                    if on_failure is not None:
                        on_failure(result.error or "job-failed")
                    elif on_complete is not None:
                        on_complete(result)
                    return

                def after_download() -> None:
                    if tracer.enabled:
                        span.set(site=result.resource)
                    span.end()
                    if on_complete is not None:
                        # re-stamp finish time to include the download leg
                        on_complete(
                            JobResult(
                                job_id=result.job_id,
                                value=result.value,
                                submitted_at=result.submitted_at,
                                started_at=result.started_at,
                                finished_at=self.sim.now,
                                resource=result.resource,
                            )
                        )

                leg(job.output_bits, after_download)

            profiler = self.sim.profiler
            if profiler is not None and profiler.enabled:
                # site selection is the grid's wall-clock cost; frame it so
                # the flamegraph separates scheduling from event dispatch
                with profiler.frame("grid.schedule", "grid"):
                    self.scheduler.submit(job, after_compute, max_attempts=max_attempts)
            else:
                self.scheduler.submit(job, after_compute, max_attempts=max_attempts)

        leg(job.input_bits, after_upload)

    def fastest_rate(self) -> float:
        """ops/second of the fastest site (used by cost estimators)."""
        return max(r.ops_per_second for r in self.resources)
