"""A grid compute site: a FIFO-queued server with a fixed ops/s rate."""

from __future__ import annotations

import typing

from repro.simkernel import Simulator
from repro.grid.job import ComputeJob, JobResult


class GridResource:
    """One compute site (workstation cluster, supercomputer partition).

    Jobs are served FIFO at ``ops_per_second``.  The site tracks when it
    will next be free, so ``submit`` can be called at any time and the job
    simply queues.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Site name (appears in :class:`~repro.grid.job.JobResult`).
    ops_per_second:
        Effective throughput.
    """

    def __init__(self, sim: Simulator, name: str, ops_per_second: float) -> None:
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        self.sim = sim
        self.name = name
        self.ops_per_second = float(ops_per_second)
        self._free_at = sim.now
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    @property
    def free_at(self) -> float:
        """Virtual time at which the current queue drains."""
        return max(self._free_at, self.sim.now)

    @property
    def backlog_s(self) -> float:
        """Seconds of queued work ahead of a new submission."""
        return max(self._free_at - self.sim.now, 0.0)

    def service_time(self, job: ComputeJob) -> float:
        """Execution time for ``job`` on this site (excludes queueing)."""
        return job.ops / self.ops_per_second

    def estimate_turnaround(self, job: ComputeJob) -> float:
        """Queue wait + service time if submitted now."""
        return self.backlog_s + self.service_time(job)

    def submit(
        self,
        job: ComputeJob,
        on_complete: typing.Callable[[JobResult], None] | None = None,
    ) -> float:
        """Enqueue ``job``; returns its predicted finish time.

        ``on_complete`` fires (with the :class:`JobResult`) when the job
        finishes; the job's ``compute`` callable runs at that moment.
        """
        submitted = self.sim.now
        started = self.free_at
        service = self.service_time(job)
        finished = started + service
        self._free_at = finished
        self.busy_seconds += service

        def complete() -> None:
            value = job.compute() if job.compute is not None else None
            self.jobs_completed += 1
            if on_complete is not None:
                on_complete(
                    JobResult(
                        job_id=job.job_id,
                        value=value,
                        submitted_at=submitted,
                        started_at=started,
                        finished_at=finished,
                        resource=self.name,
                    )
                )

        self.sim.schedule(finished - submitted, complete, label=f"job:{job.job_id}")
        return finished

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction over a horizon (for scheduler diagnostics)."""
        if horizon_s <= 0:
            return 0.0
        return min(self.busy_seconds / horizon_s, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridResource({self.name!r}, {self.ops_per_second:.3g} ops/s, backlog={self.backlog_s:.3g}s)"
