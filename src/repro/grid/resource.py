"""A grid compute site: a FIFO-queued server with a fixed ops/s rate."""

from __future__ import annotations

import typing

import numpy as np

from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, STATUS_ERROR
from repro.simkernel import Simulator
from repro.grid.job import ComputeJob, JobResult


class GridResource:
    """One compute site (workstation cluster, supercomputer partition).

    Jobs are served FIFO at ``ops_per_second``.  The site tracks when it
    will next be free, so ``submit`` can be called at any time and the job
    simply queues.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Site name (appears in :class:`~repro.grid.job.JobResult`).
    ops_per_second:
        Effective throughput.
    fail_prob:
        Probability a job fails mid-service at this site.  A failing job
        runs for a uniform fraction of its service time, durably
        checkpoints the work done (advancing ``job.checkpoint_fraction``)
        and reports ``JobResult(success=False, error="site-failure")`` --
        the scheduler's re-submission path picks it up from there.
    rng:
        Failure-draw generator; required when ``fail_prob > 0`` (draw it
        from a named stream so failures are reproducible).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ops_per_second: float,
        fail_prob: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        if not 0.0 <= fail_prob < 1.0:
            raise ValueError("fail_prob must be in [0, 1)")
        if fail_prob > 0.0 and rng is None:
            raise ValueError("fail_prob > 0 requires an rng for reproducible draws")
        self.sim = sim
        self.name = name
        self.ops_per_second = float(ops_per_second)
        self.fail_prob = float(fail_prob)
        self.rng = rng
        self._free_at = sim.now
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.busy_seconds = 0.0
        #: Instrumentation sinks, wired by :class:`GridInfrastructure`.
        self.tracer = NOOP_TRACER
        self.monitor = None

    @property
    def free_at(self) -> float:
        """Virtual time at which the current queue drains."""
        return max(self._free_at, self.sim.now)

    @property
    def backlog_s(self) -> float:
        """Seconds of queued work ahead of a new submission."""
        return max(self._free_at - self.sim.now, 0.0)

    def service_time(self, job: ComputeJob) -> float:
        """Execution time for ``job``'s remaining work (excludes queueing)."""
        return job.remaining_ops / self.ops_per_second

    def estimate_turnaround(self, job: ComputeJob) -> float:
        """Queue wait + service time if submitted now."""
        return self.backlog_s + self.service_time(job)

    def submit(
        self,
        job: ComputeJob,
        on_complete: typing.Callable[[JobResult], None] | None = None,
    ) -> float:
        """Enqueue ``job``; returns its predicted finish time.

        ``on_complete`` fires (with the :class:`JobResult`) when the job
        finishes or fails; the job's ``compute`` callable runs only on
        success.  A mid-service failure occupies the site for the partial
        service time, checkpoints the completed fraction on the job, and
        reports ``success=False``.
        """
        submitted = self.sim.now
        started = self.free_at
        service = self.service_time(job)
        if self.monitor is not None:
            self.monitor.histogram("grid.queue_wait").observe(started - submitted)
        span = NOOP_SPAN
        if self.tracer.enabled:
            span = self.tracer.span("grid.job", job_id=job.job_id, site=self.name,
                                    ops=job.remaining_ops, wait_s=started - submitted)
        fails = self.fail_prob > 0.0 and float(self.rng.random()) < self.fail_prob
        if fails:
            # dies a uniform way through the remaining work; everything up
            # to that point is checkpointed.  Drawn from the open-at-zero
            # interval (0, 1]: uniform() can return exactly 0.0, which
            # would make a zero-duration, zero-checkpoint failure whose
            # span has started == finished
            progress = 1.0 - float(self.rng.uniform(0.0, 1.0))
            service *= progress
            finished = started + service
            self._free_at = finished
            self.busy_seconds += service

            def fail() -> None:
                job.checkpoint_fraction += (1.0 - job.checkpoint_fraction) * progress
                self.jobs_failed += 1
                if self.tracer.enabled:
                    span.set(checkpoint=job.checkpoint_fraction)
                span.end(STATUS_ERROR)
                if on_complete is not None:
                    on_complete(
                        JobResult(
                            job_id=job.job_id,
                            value=None,
                            submitted_at=submitted,
                            started_at=started,
                            finished_at=finished,
                            resource=self.name,
                            success=False,
                            error="site-failure",
                        )
                    )

            self.sim.schedule(finished - submitted, fail, label=f"job:{job.job_id}:fail")
            return finished

        finished = started + service
        self._free_at = finished
        self.busy_seconds += service

        def complete() -> None:
            value = job.compute() if job.compute is not None else None
            self.jobs_completed += 1
            span.end()
            if on_complete is not None:
                on_complete(
                    JobResult(
                        job_id=job.job_id,
                        value=value,
                        submitted_at=submitted,
                        started_at=started,
                        finished_at=finished,
                        resource=self.name,
                    )
                )

        self.sim.schedule(finished - submitted, complete, label=f"job:{job.job_id}")
        return finished

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction over a horizon (for scheduler diagnostics)."""
        if horizon_s <= 0:
            return 0.0
        return min(self.busy_seconds / horizon_s, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridResource({self.name!r}, {self.ops_per_second:.3g} ops/s, backlog={self.backlog_s:.3g}s)"
