"""Least-loaded dispatch across grid sites."""

from __future__ import annotations

import typing

from repro.grid.job import ComputeJob, JobResult
from repro.grid.resource import GridResource


class GridScheduler:
    """Chooses the site with the earliest predicted finish for each job.

    This is the classic MCT (minimum completion time) heuristic used by
    grid metaschedulers of the paper's era; it is deterministic (ties
    broken by registration order).
    """

    def __init__(self, resources: list[GridResource]) -> None:
        if not resources:
            raise ValueError("scheduler needs at least one resource")
        self.resources = list(resources)
        self.dispatched = 0

    def best_resource(self, job: ComputeJob) -> GridResource:
        """The site minimizing queue-wait + service time for ``job``."""
        return min(self.resources, key=lambda r: r.estimate_turnaround(job))

    def estimate_turnaround(self, job: ComputeJob) -> float:
        """Turnaround of ``job`` on the best site, if submitted now."""
        return self.best_resource(job).estimate_turnaround(job)

    def submit(
        self,
        job: ComputeJob,
        on_complete: typing.Callable[[JobResult], None] | None = None,
    ) -> GridResource:
        """Dispatch ``job`` to the best site; returns the chosen site."""
        resource = self.best_resource(job)
        resource.submit(job, on_complete)
        self.dispatched += 1
        return resource
