"""Least-loaded dispatch across grid sites."""

from __future__ import annotations

import typing

from repro.grid.job import ComputeJob, JobResult
from repro.grid.resource import GridResource
from repro.observability.tracer import NOOP_TRACER


class GridScheduler:
    """Chooses the site with the earliest predicted finish for each job.

    This is the classic MCT (minimum completion time) heuristic used by
    grid metaschedulers of the paper's era; it is deterministic (ties
    broken by registration order).  When sites can fail
    (``GridResource(fail_prob=...)``), ``submit(max_attempts=n)`` re-runs
    a failed job from its checkpoint on the next-best site, excluding
    sites that already failed it (until every site has, at which point
    the exclusion resets -- a site that failed once is better than no
    site).
    """

    def __init__(self, resources: list[GridResource]) -> None:
        if not resources:
            raise ValueError("scheduler needs at least one resource")
        self.resources = list(resources)
        self.dispatched = 0
        self.resubmissions = 0
        #: Instrumentation sinks, wired by :class:`GridInfrastructure`.
        self.tracer = NOOP_TRACER
        self.monitor = None

    def best_resource(
        self,
        job: ComputeJob,
        exclude: typing.AbstractSet[str] = frozenset(),
    ) -> GridResource:
        """The site minimizing queue-wait + service time for ``job``.

        ``exclude`` removes named sites from consideration; if that
        empties the pool, the full pool is used instead.
        """
        pool = [r for r in self.resources if r.name not in exclude] or self.resources
        return min(pool, key=lambda r: r.estimate_turnaround(job))

    def estimate_turnaround(self, job: ComputeJob) -> float:
        """Turnaround of ``job`` on the best site, if submitted now."""
        return self.best_resource(job).estimate_turnaround(job)

    def submit(
        self,
        job: ComputeJob,
        on_complete: typing.Callable[[JobResult], None] | None = None,
        max_attempts: int = 1,
    ) -> GridResource:
        """Dispatch ``job`` to the best site; returns the chosen site.

        With ``max_attempts > 1``, a failed attempt re-submits the
        checkpointed job to the next-best site (skipping sites that
        already failed it) until it succeeds or attempts run out; only
        the final :class:`JobResult` reaches ``on_complete``.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

        def attempt(n: int, failed_sites: set[str]) -> GridResource:
            resource = self.best_resource(job, exclude=failed_sites)
            if self.tracer.enabled:
                self.tracer.event("grid.dispatch", job_id=job.job_id,
                                  site=resource.name, attempt=n)

            def done(result: JobResult) -> None:
                if result.success or n >= max_attempts:
                    if on_complete is not None:
                        on_complete(result)
                    return
                failed_sites.add(result.resource)
                self.resubmissions += 1
                if self.monitor is not None:
                    self.monitor.counter("grid.jobs_resubmitted").add()
                if self.tracer.enabled:
                    self.tracer.event("grid.resubmit", job_id=job.job_id,
                                      failed_site=result.resource, attempt=n + 1,
                                      checkpoint=job.checkpoint_fraction)
                attempt(n + 1, failed_sites)

            resource.submit(job, done)
            return resource

        first = attempt(1, set())
        self.dispatched += 1
        if self.monitor is not None:
            self.monitor.counter("grid.jobs_dispatched").add()
        return first
