"""Compute job descriptions."""

from __future__ import annotations

import dataclasses
import itertools
import typing

_job_ids = itertools.count()


@dataclasses.dataclass
class ComputeJob:
    """One unit of work submitted to the grid (or run locally).

    Attributes
    ----------
    ops:
        Abstract operation count (floating-point-op-equivalents).  The
        query cost model produces this; resources divide by their rate.
    input_bits / output_bits:
        Data shipped to / from the compute site, driving transfer cost.
    compute:
        Optional callable performing the *actual* computation (e.g. the
        PDE solve); invoked at completion so results are real, while
        timing comes from the cost model.
    name:
        Human-readable tag.
    checkpoint_fraction:
        Fraction of ``ops`` already completed and durably checkpointed.
        A site that fails mid-service advances this before reporting
        failure, so a re-submission only pays for the remaining work.
    """

    ops: float
    input_bits: float = 0.0
    output_bits: float = 0.0
    compute: typing.Callable[[], typing.Any] | None = None
    name: str = ""
    job_id: int = dataclasses.field(default_factory=lambda: next(_job_ids))
    checkpoint_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.ops < 0 or self.input_bits < 0 or self.output_bits < 0:
            raise ValueError("ops and bit counts must be non-negative")
        if not 0.0 <= self.checkpoint_fraction <= 1.0:
            raise ValueError("checkpoint_fraction must be in [0, 1]")

    @property
    def remaining_ops(self) -> float:
        """Operations still to run past the last checkpoint."""
        return self.ops * (1.0 - self.checkpoint_fraction)


@dataclasses.dataclass(frozen=True)
class JobResult:
    """Completion record for a job.

    Attributes
    ----------
    job_id:
        Id of the completed job.
    value:
        Return value of the job's ``compute`` callable (None if absent).
    submitted_at / started_at / finished_at:
        Queueing timeline in virtual time.
    resource:
        Name of the site that ran the job.
    success:
        False when the site failed mid-service (the job may be
        re-submitted; its ``checkpoint_fraction`` has been advanced).
    error:
        Failure reason tag ("" on success).
    """

    job_id: int
    value: typing.Any
    submitted_at: float
    started_at: float
    finished_at: float
    resource: str
    success: bool = True
    error: str = ""

    @property
    def queue_wait_s(self) -> float:
        """Seconds spent waiting in the site's queue."""
        return self.started_at - self.submitted_at

    @property
    def service_s(self) -> float:
        """Seconds spent executing."""
        return self.finished_at - self.started_at

    @property
    def turnaround_s(self) -> float:
        """Submit-to-finish wall time."""
        return self.finished_at - self.submitted_at
