"""Binding tasks to discovered services."""

from __future__ import annotations

import dataclasses

from repro.composition.task import TaskGraph, TaskSpec
from repro.discovery.matcher import MatchResult
from repro.discovery.registry import ServiceRegistry


class BindingError(Exception):
    """Raised when no service matches a task."""


@dataclasses.dataclass
class Binding:
    """A task bound to a concrete service instance."""

    task: TaskSpec
    match: MatchResult

    @property
    def provider(self) -> str:
        """The agent name to invoke."""
        return self.match.service.provider

    @property
    def service_name(self) -> str:
        """The bound service's instance name."""
        return self.match.service.name


class Binder:
    """Resolves every task of a graph to the best available service.

    Parameters
    ----------
    registry:
        The discovery registry (a broker's store).
    """

    def __init__(self, registry: ServiceRegistry) -> None:
        self.registry = registry
        self.bind_count = 0

    def bind_task(
        self,
        task: TaskSpec,
        exclude: set[str] | None = None,
        exclude_providers: set[str] | None = None,
    ) -> Binding:
        """Bind one task; ``exclude`` names services to avoid (failed
        ones), ``exclude_providers`` names host agents to avoid (e.g.
        providers whose circuit breaker is open).

        Raises :class:`BindingError` when nothing matches.
        """
        self.bind_count += 1
        matches = self.registry.search(task.to_request())
        exclude = exclude or set()
        exclude_providers = exclude_providers or set()
        for match in matches:
            if match.service.name in exclude:
                continue
            if match.service.provider in exclude_providers:
                continue
            if match.service.provider:
                return Binding(task=task, match=match)
        raise BindingError(f"no service for task {task.name!r} (category {task.category!r})")

    def bind_graph(
        self,
        graph: TaskGraph,
        exclude: set[str] | None = None,
        exclude_providers: set[str] | None = None,
    ) -> dict[str, Binding]:
        """Bind every task; raises on the first unbindable task."""
        return {
            task.name: self.bind_task(task, exclude, exclude_providers)
            for task in graph.tasks()
        }

    def total_advertised_cost(self, bindings: dict[str, Binding]) -> float:
        """Sum of the bound services' advertised costs (optimization metric)."""
        return sum(b.match.service.cost for b in bindings.values())
