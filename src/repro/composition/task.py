"""Task specifications and task graphs."""

from __future__ import annotations

import dataclasses

import networkx as nx

from repro.discovery.constraints import Constraint, Preference
from repro.discovery.description import ServiceRequest


@dataclasses.dataclass
class TaskSpec:
    """One primitive task to be bound to a service.

    Attributes
    ----------
    name:
        Graph-unique task name.
    category:
        Ontology class of the service needed.
    inputs / outputs:
        Data-type classes consumed/produced.
    constraints / preferences:
        Forwarded into the discovery request for this task.
    params:
        Free-form invocation parameters passed to the provider.
    """

    name: str
    category: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    constraints: tuple[Constraint, ...] = ()
    preferences: tuple[Preference, ...] = ()
    params: dict = dataclasses.field(default_factory=dict)

    def to_request(self) -> ServiceRequest:
        """The discovery request that finds a service for this task."""
        return ServiceRequest(
            category=self.category,
            inputs=self.inputs,
            outputs=self.outputs,
            constraints=self.constraints,
            preferences=self.preferences,
        )


class TaskGraph:
    """A DAG of :class:`TaskSpec` with data-flow edges.

    An edge ``a -> b`` means task ``b`` consumes the output of task ``a``.
    The graph is validated acyclic on every edge insertion.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._specs: dict[str, TaskSpec] = {}

    # ------------------------------------------------------------------
    def add_task(self, spec: TaskSpec) -> None:
        """Add one task (name must be unique)."""
        if spec.name in self._specs:
            raise ValueError(f"duplicate task name {spec.name!r}")
        self._specs[spec.name] = spec
        self._g.add_node(spec.name)

    def add_edge(self, producer: str, consumer: str) -> None:
        """Add a data-flow edge; rejects cycles and unknown tasks."""
        for name in (producer, consumer):
            if name not in self._specs:
                raise KeyError(f"unknown task {name!r}")
        self._g.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(producer, consumer)
            raise ValueError(f"edge {producer!r}->{consumer!r} creates a cycle")

    # ------------------------------------------------------------------
    def task(self, name: str) -> TaskSpec:
        """The spec for ``name`` (KeyError if absent)."""
        return self._specs[name]

    def tasks(self) -> list[TaskSpec]:
        """All specs in topological order (deterministic tie-break)."""
        return [self._specs[n] for n in self.topological_order()]

    def topological_order(self) -> list[str]:
        """Topological order, ties broken lexicographically."""
        return list(nx.lexicographical_topological_sort(self._g))

    def predecessors(self, name: str) -> list[str]:
        """Producers feeding ``name``, sorted."""
        return sorted(self._g.predecessors(name))

    def successors(self, name: str) -> list[str]:
        """Consumers of ``name``'s output, sorted."""
        return sorted(self._g.successors(name))

    def sources(self) -> list[str]:
        """Tasks with no producers, sorted."""
        return sorted(n for n in self._g.nodes if self._g.in_degree(n) == 0)

    def sinks(self) -> list[str]:
        """Tasks with no consumers, sorted."""
        return sorted(n for n in self._g.nodes if self._g.out_degree(n) == 0)

    def levels(self) -> list[list[str]]:
        """Antichains executable in parallel (classic level schedule)."""
        depth: dict[str, int] = {}
        for name in self.topological_order():
            preds = self.predecessors(name)
            depth[name] = 1 + max((depth[p] for p in preds), default=-1)
        out: dict[int, list[str]] = {}
        for name, d in depth.items():
            out.setdefault(d, []).append(name)
        return [sorted(out[d]) for d in sorted(out)]

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph(tasks={len(self)}, edges={self._g.number_of_edges()})"
