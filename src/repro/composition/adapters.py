"""Mediating interfaces: composing services across interaction paradigms.

"We need different services following different information exchange
mechanisms to operate together to realize a heterogeneous service
composition platform.  Examples of such mechanisms include services that
follow the message-passing paradigm ..., services that follow the remote
method invocation mechanism like SOAP or agent-based services that
follow a certain agent language.  A good service composition platform
should be able to communicate with all the different services." (§3)

This module provides two foreign-paradigm service hosts and the
*adapter* (§2's "mediating interfaces") that lets the composition
manager drive them through its native invoke/role protocol:

* :class:`RPCServiceAgent` -- a SOAP-style request/response endpoint: it
  understands ``{"method": ..., "args": ...}`` envelopes with content
  type ``"rpc"`` and nothing else.
* :class:`MailboxServiceAgent` -- a message-passing endpoint: raw
  payload in, result posted to a named reply-to mailbox; no
  conversations, no performative semantics.
* :class:`ParadigmAdapter` -- a Ronin agent that *advertises itself* as
  the provider, translates the manager's centralized ``invoke`` and
  distributed ``role``/``data`` messages into the wrapped paradigm, and
  translates results back.  The manager never learns the difference.
"""

from __future__ import annotations

import itertools
import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.agents.envelope import Envelope
from repro.simkernel import Simulator

_rpc_ids = itertools.count()


class RPCServiceAgent(Agent):
    """A SOAP-style RPC endpoint (not a Ronin service).

    Speaks only ``content_type="rpc"`` envelopes shaped
    ``{"call_id", "method", "args"}`` and replies with
    ``{"call_id", "return"}``.  Sending it ACL performatives does
    nothing -- that is the point: it cannot participate in composition
    without a mediating adapter.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        methods: dict[str, typing.Callable[[typing.Any], typing.Any]],
        service_time_s: float = 0.01,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.SERVICE_PROVIDER))
        if service_time_s < 0:
            raise ValueError("service_time_s must be non-negative")
        self.sim = sim
        self.methods = dict(methods)
        self.service_time_s = service_time_s
        self.calls = 0

    def setup(self) -> None:
        self.on_raw(self._handle_raw)

    def _handle_raw(self, envelope: Envelope) -> None:
        if envelope.content_type != "rpc" or not isinstance(envelope.content, dict):
            return
        request = envelope.content
        method = self.methods.get(str(request.get("method")))
        call_id = request.get("call_id")
        self.calls += 1

        def respond() -> None:
            if self.platform is None:
                return
            if method is None:
                payload = {"call_id": call_id, "fault": f"no such method {request.get('method')!r}"}
            else:
                payload = {"call_id": call_id, "return": method(request.get("args"))}
            self.send(envelope.sender, payload, content_type="rpc")

        self.sim.schedule(self.service_time_s, respond, label=f"rpc:{self.name}")


class MailboxServiceAgent(Agent):
    """A message-passing endpoint: payload in, result to a mailbox.

    Understands ``content_type="msg"`` envelopes whose content is
    ``{"payload", "reply_to"}``; computes and posts
    ``{"payload": result}`` to ``reply_to``.  No correlation ids at all
    (the adapter must serialize calls to correlate).
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        func: typing.Callable[[typing.Any], typing.Any],
        service_time_s: float = 0.01,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.SERVICE_PROVIDER))
        self.sim = sim
        self.func = func
        self.service_time_s = service_time_s
        self.handled = 0

    def setup(self) -> None:
        self.on_raw(self._handle_raw)

    def _handle_raw(self, envelope: Envelope) -> None:
        if envelope.content_type != "msg" or not isinstance(envelope.content, dict):
            return
        content = envelope.content
        self.handled += 1

        def respond() -> None:
            if self.platform is None:
                return
            self.send(content["reply_to"], {"payload": self.func(content.get("payload"))},
                      content_type="msg")

        self.sim.schedule(self.service_time_s, respond, label=f"msg:{self.name}")


class ParadigmAdapter(Agent):
    """Presents a foreign-paradigm service as a native composition provider.

    Parameters
    ----------
    name:
        Adapter agent name (this is what gets advertised as the
        ``ServiceDescription.provider``).
    backend:
        Name of the wrapped endpoint.
    paradigm:
        ``"rpc"`` or ``"msg"``.
    method:
        For RPC backends: the method name to call.
    """

    def __init__(self, name: str, backend: str, paradigm: str, method: str = "run") -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.FACILITATOR))
        if paradigm not in ("rpc", "msg"):
            raise ValueError("paradigm must be 'rpc' or 'msg'")
        self.backend = backend
        self.paradigm = paradigm
        self.method = method
        #: call id / FIFO queue -> continuation awaiting the backend result
        self._rpc_waiting: dict[typing.Any, typing.Callable[[typing.Any], None]] = {}
        self._msg_queue: list[typing.Callable[[typing.Any], None]] = []
        self.translated = 0
        self._roles: dict[tuple[str, str], dict] = {}

    def setup(self) -> None:
        self.on(Performative.REQUEST, self._handle_request)
        self.on_raw(self._handle_raw)

    # ------------------------------------------------------------------
    # outbound: native protocol -> foreign paradigm
    # ------------------------------------------------------------------
    def _call_backend(self, payload: typing.Any,
                      then: typing.Callable[[typing.Any], None]) -> None:
        self.translated += 1
        if self.paradigm == "rpc":
            call_id = next(_rpc_ids)
            self._rpc_waiting[call_id] = then
            self.send(self.backend,
                      {"call_id": call_id, "method": self.method, "args": payload},
                      content_type="rpc")
        else:
            # message passing has no correlation: serialize via FIFO
            self._msg_queue.append(then)
            self.send(self.backend, {"payload": payload, "reply_to": self.name},
                      content_type="msg")

    def _handle_raw(self, envelope: Envelope) -> None:
        if envelope.content_type == "rpc" and isinstance(envelope.content, dict):
            then = self._rpc_waiting.pop(envelope.content.get("call_id"), None)
            if then is not None and "fault" not in envelope.content:
                then(envelope.content.get("return"))
        elif envelope.content_type == "msg" and isinstance(envelope.content, dict):
            if self._msg_queue:
                self._msg_queue.pop(0)(envelope.content.get("payload"))

    # ------------------------------------------------------------------
    # inbound: the manager's native protocol
    # ------------------------------------------------------------------
    def _handle_request(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict):
            self.reply(msg, Performative.FAILURE, "expected dict content")
            return
        kind = content.get("kind")
        if kind == "invoke":
            self._call_backend(
                {"params": content.get("params", {}), "inputs": content.get("inputs", {})},
                lambda result: self.reply(msg, Performative.INFORM, {
                    "kind": "result",
                    "comp_id": content.get("comp_id"),
                    "task": content.get("task"),
                    "payload": result,
                }),
            )
        elif kind == "role":
            key = (content["comp_id"], content["task"])
            self._roles[key] = {
                "content": content,
                "inputs": dict(content.get("initial_inputs", {})),
            }
            self._maybe_run(key)
        elif kind == "data":
            key = (content["comp_id"], content["task"])
            state = self._roles.get(key)
            if state is None:
                return
            state["inputs"][content["from_task"]] = content.get("payload")
            self._maybe_run(key)
        else:
            self.reply(msg, Performative.FAILURE, f"unknown kind {kind!r}")

    def _maybe_run(self, key: tuple[str, str]) -> None:
        state = self._roles.get(key)
        if state is None or state.get("started"):
            return
        content = state["content"]
        if len(state["inputs"]) < int(content.get("n_inputs", 0)):
            return
        state["started"] = True

        def deliver(result: typing.Any) -> None:
            successors = [tuple(s) for s in content.get("successors", [])]
            if successors:
                for agent_name, task_name in successors:
                    self.ask(agent_name, Performative.REQUEST, {
                        "kind": "data",
                        "comp_id": content["comp_id"],
                        "task": task_name,
                        "from_task": content["task"],
                        "payload": result,
                    })
            else:
                self.ask(content["manager"], Performative.INFORM, {
                    "kind": "result",
                    "comp_id": content["comp_id"],
                    "task": content["task"],
                    "payload": result,
                })
            self._roles.pop(key, None)

        self._call_backend(
            {"params": content.get("params", {}), "inputs": state["inputs"]},
            deliver,
        )
