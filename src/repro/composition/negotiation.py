"""Negotiated binding: Contract-Net instead of registry rank.

Registry-rank binding (:class:`~repro.composition.binding.Binder`) trusts
advertised attributes.  Negotiated binding instead runs one Contract-Net
round per task: discovered candidates *bid* with price/deadline
commitments, and the initiator's reputation memory steers awards away
from providers that broke commitments before -- the paper's §2
"negotiate with other agents about ... performance commitments", applied
to composition.
"""

from __future__ import annotations

import typing

from repro.agents.contractnet import Award, ContractNetInitiator
from repro.composition.binding import Binding
from repro.composition.task import TaskGraph, TaskSpec
from repro.discovery.matcher import MatchResult
from repro.discovery.registry import ServiceRegistry


class NegotiatedBinder:
    """Binds a task graph through Contract-Net negotiations.

    Parameters
    ----------
    initiator:
        A registered :class:`~repro.agents.contractnet.ContractNetInitiator`
        (its reputation store persists across bindings).
    registry:
        Used only for *discovery* -- finding which providers to invite to
        each negotiation; selection is by bids, not by rank.
    max_price / deadline_s / collect_window_s:
        Forwarded to each negotiation round.

    Binding is asynchronous (negotiation takes simulated time):
    :meth:`bind_graph` delivers ``{task: Binding}`` or ``None`` through a
    callback, suitable for passing to
    :meth:`~repro.composition.manager.CompositionManager.execute` as
    pre-computed ``bindings``.
    """

    def __init__(
        self,
        initiator: ContractNetInitiator,
        registry: ServiceRegistry,
        max_price: float = 100.0,
        deadline_s: float = 60.0,
        collect_window_s: float = 0.5,
    ) -> None:
        self.initiator = initiator
        self.registry = registry
        self.max_price = max_price
        self.deadline_s = deadline_s
        self.collect_window_s = collect_window_s
        self.negotiated = 0

    # ------------------------------------------------------------------
    def _candidates(self, task: TaskSpec) -> list[MatchResult]:
        return self.registry.search(task.to_request())

    def bind_task(
        self,
        task: TaskSpec,
        on_bound: typing.Callable[[Binding | None], None],
    ) -> None:
        """Negotiate one task's provider; callback with the Binding."""
        matches = [m for m in self._candidates(task) if m.service.provider]
        if not matches:
            on_bound(None)
            return
        by_provider = {m.service.provider: m for m in matches}

        def on_award(award: Award) -> None:
            if award.winner is None:
                on_bound(None)
                return
            self.negotiated += 1
            on_bound(Binding(task=task, match=by_provider[award.winner]))

        self.initiator.negotiate(
            contractors=sorted(by_provider),
            task={"category": task.category, "name": task.name, "params": task.params},
            on_complete=on_award,
            max_price=self.max_price,
            deadline_s=self.deadline_s,
            collect_window_s=self.collect_window_s,
        )

    def bind_graph(
        self,
        graph: TaskGraph,
        on_bound: typing.Callable[[dict[str, Binding] | None], None],
    ) -> None:
        """Negotiate every task (concurrently); callback with all bindings.

        Any task without a winning bid fails the whole binding (None).
        """
        tasks = graph.tasks()
        if not tasks:
            on_bound({})
            return
        state = {"bindings": {}, "pending": len(tasks), "failed": False}

        def one_done(task_name: str):
            def cb(binding: Binding | None) -> None:
                if state["failed"]:
                    return
                if binding is None:
                    state["failed"] = True
                    on_bound(None)
                    return
                state["bindings"][task_name] = binding
                state["pending"] -= 1
                if state["pending"] == 0:
                    on_bound(state["bindings"])

            return cb

        for task in tasks:
            self.bind_task(task, one_done(task.name))

    # ------------------------------------------------------------------
    def report_outcome(self, provider: str, committed_s: float, actual_s: float) -> None:
        """Close the commitment loop: feed measured execution back.

        The composition layer observes actual per-provider execution
        times; reporting them here updates the initiator's reputation so
        future awards avoid commitment-breakers (actual > committed).
        """
        on_time = actual_s <= committed_s * 1.05
        self.initiator._update_reputation(provider, on_time)

    def reputation_of(self, provider: str) -> float:
        """The initiator's current reputation estimate for ``provider``."""
        return self.initiator.reputation.get(provider, 1.0)
