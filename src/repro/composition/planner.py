"""HTN planning: decomposing compound goals into task graphs.

"For task categories that are well understood a-priori, this can be done
by hard coding specific decompositions.  However, in the more general
case, this requires the use of a planner." (§3, citing Erol/Hendler/Nau
HTN planning)

The planner is a straightforward total-order HTN decomposer: a *domain*
maps compound task names to :class:`Method` lists; each method expands a
compound task into a partially ordered network of (compound or primitive)
subtasks.  Decomposition recurses depth-first, trying methods in order
and backtracking when a method's expansion fails, until only primitive
tasks (bindable to services) remain.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.composition.task import TaskGraph, TaskSpec


@dataclasses.dataclass
class Method:
    """One way to decompose a compound task.

    Attributes
    ----------
    name:
        Method label (diagnostics).
    subtasks:
        Ordered list of subtask templates.  Each entry is either a
        :class:`~repro.composition.task.TaskSpec` (primitive) or a string
        naming a compound task to expand recursively.
    edges:
        Data-flow edges among this method's subtasks, by index into
        ``subtasks``: ``(producer_idx, consumer_idx)``.
    applicable:
        Optional guard; the method is skipped when it returns False for
        the goal parameters.
    expand:
        Optional callable ``(params) -> (subtasks, edges)`` for
        parameter-dependent expansions (e.g. one decision-tree task per
        stream partition).  When given, ``subtasks``/``edges`` are
        ignored.
    """

    name: str
    subtasks: list[typing.Union[TaskSpec, str]] = dataclasses.field(default_factory=list)
    edges: list[tuple[int, int]] = dataclasses.field(default_factory=list)
    applicable: typing.Callable[[dict], bool] | None = None
    expand: typing.Callable[[dict], tuple[list, list]] | None = None


class PlanningError(Exception):
    """Raised when no method sequence decomposes the goal."""


class HTNPlanner:
    """A total-order HTN decomposer.

    Parameters
    ----------
    domain:
        ``{compound_task_name: [Method, ...]}``.
    """

    def __init__(self, domain: dict[str, list[Method]]) -> None:
        self.domain = dict(domain)

    def is_compound(self, name: str) -> bool:
        """True iff the domain knows how to decompose ``name``."""
        return name in self.domain

    def plan(self, goal: str, params: dict | None = None) -> TaskGraph:
        """Decompose ``goal`` into a task graph of primitives.

        ``params`` parameterizes method expansion (fan-out widths etc.).
        Raises :class:`PlanningError` when no applicable method exists at
        any level.
        """
        params = params or {}
        graph = TaskGraph()
        counter = [0]
        sinks = self._expand(goal, params, graph, counter, inputs_from=[])
        if not sinks:
            raise PlanningError(f"goal {goal!r} decomposed to an empty network")
        return graph

    # ------------------------------------------------------------------
    def _expand(
        self,
        name: str,
        params: dict,
        graph: TaskGraph,
        counter: list[int],
        inputs_from: list[str],
    ) -> list[str]:
        """Expand ``name``; returns the sink task names of the expansion.

        ``inputs_from`` are task names whose outputs feed this
        expansion's sources.
        """
        methods = self.domain.get(name)
        if methods is None:
            raise PlanningError(f"no methods for compound task {name!r}")
        last_error: PlanningError | None = None
        for method in methods:
            if method.applicable is not None and not method.applicable(params):
                continue
            try:
                return self._apply(method, params, graph, counter, inputs_from)
            except PlanningError as exc:  # backtrack to the next method
                last_error = exc
        raise last_error or PlanningError(f"no applicable method for {name!r}")

    def _apply(
        self,
        method: Method,
        params: dict,
        graph: TaskGraph,
        counter: list[int],
        inputs_from: list[str],
    ) -> list[str]:
        if method.expand is not None:
            subtasks, edges = method.expand(params)
        else:
            subtasks, edges = method.subtasks, method.edges

        # expand each subtask; record the (sources, sinks) of each expansion
        entry_names: list[list[str]] = []
        exit_names: list[list[str]] = []
        incoming = {j for _, j in edges}
        for idx, sub in enumerate(subtasks):
            feed = inputs_from if idx not in incoming else []
            if isinstance(sub, str):
                sinks = self._expand(sub, params, graph, counter, inputs_from=feed)
                # sources of a nested expansion already wired via feed
                entry_names.append(sinks)  # nested: edges attach to its sinks
                exit_names.append(sinks)
            else:
                unique = TaskSpec(
                    name=f"{sub.name}#{counter[0]}",
                    category=sub.category,
                    inputs=sub.inputs,
                    outputs=sub.outputs,
                    constraints=sub.constraints,
                    preferences=sub.preferences,
                    params=dict(sub.params),
                )
                counter[0] += 1
                graph.add_task(unique)
                for producer in feed:
                    graph.add_edge(producer, unique.name)
                entry_names.append([unique.name])
                exit_names.append([unique.name])

        for i, j in edges:
            for producer in exit_names[i]:
                for consumer in entry_names[j]:
                    graph.add_edge(producer, consumer)

        outgoing = {i for i, _ in edges}
        sinks: list[str] = []
        for idx in range(len(subtasks)):
            if idx not in outgoing:
                sinks.extend(exit_names[idx])
        return sinks


def build_pervasive_domain(n_partitions: int = 3) -> dict[str, list[Method]]:
    """The paper's canonical decompositions as an HTN domain.

    * ``analyze-stream`` -- the §3 example: ensembles of decision trees
      from a partitioned data stream, Fourier spectra, dominant-component
      selection, combination into a single tree.
    * ``temperature-distribution`` -- the §4 complex query: collect
      readings, then solve the PDE.
    * ``print-report`` -- the printer example: format then print.
    """

    def stream_expand(params: dict) -> tuple[list, list]:
        k = int(params.get("n_partitions", n_partitions))
        if k < 1:
            raise PlanningError("need at least one stream partition")
        subtasks: list[TaskSpec] = []
        edges: list[tuple[int, int]] = []
        for i in range(k):
            subtasks.append(
                TaskSpec(f"learn-tree-{i}", "DecisionTreeService",
                         inputs=("DataStream",), outputs=("DecisionTree",))
            )
        for i in range(k):
            subtasks.append(
                TaskSpec(f"spectrum-{i}", "FourierSpectrumService",
                         inputs=("DecisionTree",), outputs=("FourierSpectrum",))
            )
            edges.append((i, k + i))
        select = len(subtasks)
        subtasks.append(
            TaskSpec("select-dominant", "FourierSpectrumService",
                     inputs=("FourierSpectrum",), outputs=("FourierSpectrum",))
        )
        for i in range(k):
            edges.append((k + i, select))
        combine = len(subtasks)
        subtasks.append(
            TaskSpec("combine-ensemble", "EnsembleCombinerService",
                     inputs=("FourierSpectrum",), outputs=("DecisionTree",))
        )
        edges.append((select, combine))
        return subtasks, edges

    domain: dict[str, list[Method]] = {
        "analyze-stream": [Method(name="ensemble-fourier", expand=stream_expand)],
        "temperature-distribution": [
            Method(
                name="collect-then-solve",
                subtasks=[
                    TaskSpec("collect-readings", "AggregationService",
                             outputs=("TemperatureReading",)),
                    TaskSpec("solve-pde", "PDESolverService",
                             inputs=("TemperatureReading",),
                             outputs=("TemperatureDistribution",)),
                ],
                edges=[(0, 1)],
            )
        ],
        "print-report": [
            Method(
                name="format-and-print",
                subtasks=[
                    TaskSpec("format", "ComputeService", outputs=("Document",)),
                    TaskSpec("print", "PrinterService", inputs=("Document",)),
                ],
                edges=[(0, 1)],
            )
        ],
    }
    return domain
