"""Reactive and proactive composition.

"We might want to pro-actively compute some generic information about
services required to execute a query which is requested with a high
frequency.  The other approach is to re-actively integrate and execute
services to derive the result of a query." (§3)

Both composers plan with the HTN planner and execute through a
:class:`~repro.composition.manager.CompositionManager`; they differ in
*when discovery happens*:

* :class:`ReactiveComposer` queries the broker agent (over ACL, paying
  real network latency per task) at request time, then executes.
* :class:`ProactiveComposer` performs the same discovery ahead of time
  via :meth:`ProactiveComposer.precompute` and serves requests from the
  cached bindings instantly; failed executions invalidate the cache so
  the next request falls back to fresh discovery.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.composition.binding import Binding
from repro.composition.manager import CompositionManager, CompositionResult
from repro.composition.planner import HTNPlanner, PlanningError
from repro.composition.task import TaskGraph
from repro.observability.tracer import NOOP_SPAN, STATUS_ERROR, STATUS_OK
from repro.resilience import Hedge, RetryPolicy


class _ComposerBase(Agent):
    """Shared ACL discovery machinery for both composers.

    Discovery runs over the (possibly lossy, possibly partitioned)
    network, so it is guarded by ``discovery_timeout_s``: if the broker's
    replies do not all arrive in time, the discovery attempt fails.  With
    a :class:`~repro.resilience.RetryPolicy` attached the failure is
    retried with exponential backoff (instead of single-shot giving up);
    with a :class:`~repro.resilience.Hedge` attached, unanswered task
    queries are duplicated to the broker after the hedge delay and the
    first usable reply per task wins -- tail tolerance against lossy
    links.

    Parameters
    ----------
    broker:
        The broker agent's name, or a zero-argument callable returning
        it.  A callable is re-resolved on **every** query -- including
        hedge waves and retry attempts -- so discovery that straddles a
        broker failover addresses whichever broker serves the name now
        (pass ``group.active_name`` when running a
        :class:`~repro.discovery.failover.BrokerGroup`).
    retry:
        Backoff policy for whole-discovery retries (None = single shot).
    hedge:
        Duplicate-query policy within one attempt (None = no hedging).
    rng:
        Jitter source for the retry backoff; None keeps deterministic
        (ceiling) delays.
    """

    def __init__(
        self,
        name: str,
        planner: HTNPlanner,
        manager: CompositionManager,
        broker: str | typing.Callable[[], str],
        discovery_timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        hedge: Hedge | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.COMPOSER))
        if discovery_timeout_s <= 0:
            raise ValueError("discovery_timeout_s must be positive")
        self.planner = planner
        self.manager = manager
        self.broker = broker
        self.discovery_timeout_s = discovery_timeout_s
        self.retry = retry
        self.hedge = hedge
        self.rng = rng
        self.discovery_retries = 0
        self.hedged_queries = 0
        self._pending: dict[str, dict] = {}  # conversation id -> discovery context

    def setup(self) -> None:
        self.on(Performative.INFORM, self._handle_inform)
        self.on(Performative.FAILURE, self._handle_failure)

    def _broker_name(self) -> str:
        """The broker to address right now (late-bound for failover)."""
        return self.broker() if callable(self.broker) else self.broker

    # ------------------------------------------------------------------
    def _discover(
        self,
        graph: TaskGraph,
        on_bound: typing.Callable[[dict[str, Binding] | None], None],
    ) -> None:
        """Query the broker for every task; callback with bindings or None."""
        if not graph.tasks():
            on_bound({})
            return
        tracer = self.manager.tracer
        span = NOOP_SPAN
        if tracer.enabled:
            span = tracer.span("composition.discovery", composer=self.name,
                               tasks=len(graph.tasks()))

        def finish(bindings: dict[str, Binding] | None) -> None:
            if tracer.enabled:
                span.set(bound=0 if bindings is None else len(bindings))
            span.end(STATUS_OK if bindings is not None else STATUS_ERROR)
            on_bound(bindings)

        with tracer.use(span):
            self._discover_attempt(graph, finish, attempt=1,
                                   started=self.manager.sim.now, prev_delay=None)

    def _discover_attempt(
        self,
        graph: TaskGraph,
        on_bound: typing.Callable[[dict[str, Binding] | None], None],
        attempt: int,
        started: float,
        prev_delay: float | None,
    ) -> None:
        sim = self.manager.sim
        tasks = graph.tasks()
        context: dict = {"needed": len(tasks), "bindings": {}, "done": False}
        conv_ids: list[str] = []

        def settle(bindings: dict[str, Binding] | None) -> None:
            context["done"] = True
            for cid in conv_ids:
                self._pending.pop(cid, None)
            on_bound(bindings)

        def fail() -> None:
            if context["done"]:
                return
            next_attempt = attempt + 1
            elapsed = sim.now - started
            if self.retry is None or not self.retry.allows(next_attempt, elapsed):
                settle(None)
                return
            delay = self.retry.next_delay(next_attempt, self.rng, prev_delay)
            context["done"] = True
            for cid in conv_ids:
                self._pending.pop(cid, None)
            self.discovery_retries += 1
            if self.manager.monitor is not None:
                self.manager.monitor.counter("resilience.retries").add()
            tracer = self.manager.tracer
            if tracer.enabled:
                tracer.event("resilience.retry", kind="discovery",
                             composer=self.name, attempt=next_attempt,
                             delay_s=delay)
            sim.schedule(
                delay,
                lambda: self._discover_attempt(graph, on_bound, next_attempt, started, delay),
                label=f"discovery-retry:{self.name}",
            )

        context["fail"] = fail
        context["settle"] = settle

        def query(task) -> None:
            msg = self.ask(self._broker_name(), Performative.QUERY, task.to_request())
            self._pending[msg.conversation_id] = {"context": context, "task": task}
            conv_ids.append(msg.conversation_id)

        for task in tasks:
            query(task)

        if self.hedge is not None:
            def launch_hedges(wave: int) -> None:
                if context["done"]:
                    return
                unanswered = [t for t in tasks if t.name not in context["bindings"]]
                if not unanswered:
                    return
                for task in unanswered:
                    query(task)
                    self.hedged_queries += 1
                if self.manager.monitor is not None:
                    self.manager.monitor.counter("resilience.hedges").add(len(unanswered))
                tracer = self.manager.tracer
                if tracer.enabled:
                    tracer.event("resilience.hedge", kind="discovery",
                                 composer=self.name, wave=wave,
                                 duplicated=len(unanswered))
                if wave < self.hedge.max_hedges:
                    sim.schedule(self.hedge.delay_s, lambda: launch_hedges(wave + 1),
                                 label=f"discovery-hedge:{self.name}")

            sim.schedule(self.hedge.delay_s, lambda: launch_hedges(1),
                         label=f"discovery-hedge:{self.name}")

        def on_timeout() -> None:
            if context["done"]:
                return
            fail()

        sim.schedule(self.discovery_timeout_s, on_timeout,
                     label=f"discovery-timeout:{self.name}")

    def _handle_inform(self, msg: ACLMessage) -> None:
        entry = self._pending.pop(msg.in_reply_to or "", None)
        if entry is None:
            return
        context, task = entry["context"], entry["task"]
        if context["done"]:
            return
        if task.name in context["bindings"]:
            return  # a hedged duplicate already answered this task
        matches = msg.content if isinstance(msg.content, list) else []
        usable = [m for m in matches if m.service.provider]
        if not usable:
            context["fail"]()
            return
        context["bindings"][task.name] = Binding(task=task, match=usable[0])
        if len(context["bindings"]) == context["needed"]:
            context["settle"](context["bindings"])

    def _handle_failure(self, msg: ACLMessage) -> None:
        entry = self._pending.pop(msg.in_reply_to or "", None)
        if entry is None:
            return
        context = entry["context"]
        if not context["done"]:
            context["fail"]()


class ReactiveComposer(_ComposerBase):
    """Discover-then-execute at request time ("pure reactive composition",
    as in the paper's notebook/PocketPC prototype [5])."""

    def compose(
        self,
        goal: str,
        on_complete: typing.Callable[[CompositionResult], None],
        params: dict | None = None,
        initial_inputs: dict | None = None,
    ) -> None:
        """Plan, discover over ACL, then execute ``goal``."""
        try:
            graph = self.planner.plan(goal, params)
        except PlanningError:
            on_complete(CompositionResult(False, {}, 0.0, 0, 0, self.manager.mode))
            return

        def bound(bindings: dict[str, Binding] | None) -> None:
            if bindings is None:
                on_complete(CompositionResult(False, {}, 0.0, 0, 0, self.manager.mode))
                return
            self.manager.execute(graph, on_complete, initial_inputs=initial_inputs, bindings=bindings)

        self._discover(graph, bound)


class ProactiveComposer(_ComposerBase):
    """Pre-computed bindings for high-frequency goals.

    Call :meth:`precompute` for the goals expected to be hot; later
    :meth:`compose` calls execute immediately from cache.  A failed
    execution (or a cache miss) falls back to reactive discovery and
    repopulates the cache.
    """

    def __init__(self, name: str, planner: HTNPlanner, manager: CompositionManager,
                 broker: str | typing.Callable[[], str], **kwargs) -> None:
        super().__init__(name, planner, manager, broker, **kwargs)
        self._cache: dict[str, tuple[TaskGraph, dict[str, Binding]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @staticmethod
    def _key(goal: str, params: dict | None) -> str:
        return f"{goal}|{sorted((params or {}).items())!r}"

    def precompute(self, goal: str, params: dict | None = None,
                   on_ready: typing.Callable[[bool], None] | None = None) -> None:
        """Plan and discover now; cache the bindings for later requests."""
        try:
            graph = self.planner.plan(goal, params)
        except PlanningError:
            if on_ready is not None:
                on_ready(False)
            return

        def bound(bindings: dict[str, Binding] | None) -> None:
            if bindings is not None:
                self._cache[self._key(goal, params)] = (graph, bindings)
            if on_ready is not None:
                on_ready(bindings is not None)

        self._discover(graph, bound)

    def invalidate(self, goal: str, params: dict | None = None) -> None:
        """Drop the cached bindings for a goal (stale after failures)."""
        self._cache.pop(self._key(goal, params), None)

    def compose(
        self,
        goal: str,
        on_complete: typing.Callable[[CompositionResult], None],
        params: dict | None = None,
        initial_inputs: dict | None = None,
    ) -> None:
        """Execute from cache; fall back to reactive discovery on a miss."""
        key = self._key(goal, params)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            graph, bindings = cached

            def done(result: CompositionResult) -> None:
                if not result.success:
                    self.invalidate(goal, params)
                on_complete(result)

            self.manager.execute(graph, done, initial_inputs=initial_inputs, bindings=bindings)
            return

        self.cache_misses += 1
        try:
            graph = self.planner.plan(goal, params)
        except PlanningError:
            on_complete(CompositionResult(False, {}, 0.0, 0, 0, self.manager.mode))
            return

        def bound(bindings: dict[str, Binding] | None) -> None:
            if bindings is None:
                on_complete(CompositionResult(False, {}, 0.0, 0, 0, self.manager.mode))
                return
            self._cache[key] = (graph, bindings)
            self.manager.execute(graph, on_complete, initial_inputs=initial_inputs, bindings=bindings)

        self._discover(graph, bound)
