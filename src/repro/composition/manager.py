"""Composition managers: centralized and distributed coordination.

"Most service composition platforms follow a centralized architecture to
coordinate and manage the execution of a composite service. ... in
pervasive grid systems ... centralized architectures are often not the
most appropriate." (§3)

:class:`CompositionManager` executes a bound task graph in one of two
modes:

``centralized``
    The manager invokes each ready task itself, carrying every
    intermediate result through its own host (classic broker-based
    architecture [22, 3, 10]).  Failure detection is per-invocation.

``distributed``
    The manager distributes small role cards, data flows directly
    provider-to-provider, sinks report back.  Fewer and shorter trips
    through the coordinator; failure detection is a per-attempt timeout
    (the manager cannot see inside the pipeline -- the honest price of
    decentralization).

Fault tolerance: on timeout or explicit failure the attempt is abandoned,
tasks are **re-bound** against the registry (churn withdraws dead hosts'
advertisements, so fresh bindings avoid them) and the composition is
retried up to ``max_retries`` times -- the paper's "resort to fault
control mechanisms ... degrade gracefully".
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.composition.binding import Binder, Binding, BindingError
from repro.composition.task import TaskGraph
from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, STATUS_ERROR, STATUS_OK, Tracer
from repro.resilience import BreakerBoard
from repro.simkernel import Monitor, Simulator

_comp_ids = itertools.count()


@dataclasses.dataclass
class CompositionResult:
    """Outcome of one composite-service execution.

    Attributes
    ----------
    success:
        True when every sink task produced a result.
    outputs:
        ``{sink_task_name: payload}`` for completed sinks (possibly
        partial on failure -- graceful degradation).
    latency_s:
        Request-to-completion virtual time.
    attempts:
        Number of executions tried (1 = no retry needed).
    rebinds:
        Services re-bound across retries.
    mode:
        ``"centralized"`` or ``"distributed"``.
    """

    success: bool
    outputs: dict[str, typing.Any]
    latency_s: float
    attempts: int
    rebinds: int
    mode: str

    @property
    def completeness(self) -> float:
        """Filled by the manager: fraction of sinks that completed."""
        return getattr(self, "_completeness", 1.0 if self.success else 0.0)


@dataclasses.dataclass
class _Attempt:
    comp_id: str
    graph: TaskGraph
    bindings: dict[str, Binding]
    on_complete: typing.Callable[[CompositionResult], None]
    started_at: float
    attempts: int
    rebinds: int
    results: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    done_tasks: set[str] = dataclasses.field(default_factory=set)
    in_flight: set[str] = dataclasses.field(default_factory=set)
    finished: bool = False
    first_started_at: float = 0.0
    timeout_handle: typing.Any = None
    initial_inputs: dict = dataclasses.field(default_factory=dict)
    blacklist: set[str] = dataclasses.field(default_factory=set)
    span: typing.Any = NOOP_SPAN


class CompositionManager(Agent):
    """Drives bound task graphs to completion with retry-on-failure.

    Parameters
    ----------
    name:
        Agent name.
    sim:
        Shared simulator (timeouts).
    binder:
        Used for initial binding and re-binding on retry.
    mode:
        ``"centralized"`` or ``"distributed"``.
    timeout_s:
        Per-attempt timeout.
    max_retries:
        Additional attempts after the first.
    role_card_bits:
        Wire size of the distributed-mode control messages.
    breakers:
        Optional per-provider circuit-breaker board.  When present, every
        (re)bind avoids providers whose breaker is open, timeouts feed
        failures into the suspects' breakers, and successful completions
        feed successes into every bound provider's breaker -- so the
        manager stops re-binding to flapping hosts instead of paying a
        full timeout per flap.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        binder: Binder,
        mode: str = "centralized",
        timeout_s: float = 30.0,
        max_retries: int = 2,
        role_card_bits: float = 256.0,
        breakers: BreakerBoard | None = None,
        monitor: Monitor | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.COMPOSER))
        if mode not in ("centralized", "distributed"):
            raise ValueError("mode must be 'centralized' or 'distributed'")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.sim = sim
        self.binder = binder
        self.mode = mode
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.role_card_bits = role_card_bits
        self.breakers = breakers
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._active: dict[str, _Attempt] = {}
        self.completed = 0
        self.failed = 0

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.monitor is not None:
            self.monitor.counter(name).add(amount)

    def setup(self) -> None:
        self.on(Performative.INFORM, self._handle_inform)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(
        self,
        graph: TaskGraph,
        on_complete: typing.Callable[[CompositionResult], None],
        initial_inputs: dict | None = None,
        bindings: dict[str, Binding] | None = None,
    ) -> str:
        """Start executing ``graph``; returns the composition id.

        ``initial_inputs`` maps source task names to their seed payloads.
        ``bindings`` may be supplied (proactive composition); otherwise
        tasks are bound now (reactive).
        """
        comp_id = f"comp-{next(_comp_ids)}"
        started = self.sim.now
        tracer = self.tracer
        span = NOOP_SPAN
        if tracer.enabled:
            span = tracer.span("composition.execute", comp_id=comp_id,
                               mode=self.mode, tasks=len(list(graph.tasks())))
        try:
            bound = bindings if bindings is not None else self._bind(graph, set())
        except BindingError:
            self.failed += 1
            self._count("composition.failed")
            if tracer.enabled:
                span.set(fail_reason="unbindable")
            span.end(STATUS_ERROR)
            on_complete(CompositionResult(False, {}, 0.0, 1, 0, self.mode))
            return comp_id
        attempt = _Attempt(
            comp_id=comp_id,
            graph=graph,
            bindings=bound,
            on_complete=on_complete,
            started_at=started,
            attempts=1,
            rebinds=0,
            initial_inputs=dict(initial_inputs or {}),
            span=span,
        )
        self._active[comp_id] = attempt
        self._launch(attempt)
        return comp_id

    # ------------------------------------------------------------------
    # attempt lifecycle
    # ------------------------------------------------------------------
    def _launch(self, attempt: _Attempt) -> None:
        attempt.results = {}
        attempt.done_tasks = set()
        attempt.in_flight = set()
        attempt.first_started_at = self.sim.now
        # run under the composition's span so the timeout, dispatched
        # invocations and their network activity inherit its trace
        with self.tracer.use(attempt.span):
            attempt.timeout_handle = self.sim.schedule(
                self.timeout_s, lambda: self._on_timeout(attempt.comp_id), label=f"timeout:{attempt.comp_id}"
            )
            if self.mode == "centralized":
                self._dispatch_ready(attempt)
            else:
                self._distribute_roles(attempt)

    def _finish(self, attempt: _Attempt, success: bool) -> None:
        if attempt.finished:
            return
        attempt.finished = True
        if attempt.timeout_handle is not None:
            attempt.timeout_handle.cancel()
        self._active.pop(attempt.comp_id, None)
        sinks = attempt.graph.sinks()
        outputs = {s: attempt.results[s] for s in sinks if s in attempt.results}
        result = CompositionResult(
            success=success,
            outputs=outputs,
            latency_s=self.sim.now - attempt.started_at,
            attempts=attempt.attempts,
            rebinds=attempt.rebinds,
            mode=self.mode,
        )
        result._completeness = len(outputs) / len(sinks) if sinks else 0.0
        if success:
            self.completed += 1
            self._count("composition.completed")
            if self.breakers is not None:
                for binding in attempt.bindings.values():
                    self.breakers.record_success(binding.provider)
        else:
            self.failed += 1
            self._count("composition.failed")
        self._count("composition.rebinds", attempt.rebinds)
        if self.tracer.enabled:
            attempt.span.set(attempts=attempt.attempts, rebinds=attempt.rebinds,
                             completeness=result._completeness)
        attempt.span.end(STATUS_OK if success else STATUS_ERROR)
        attempt.on_complete(result)

    def _on_timeout(self, comp_id: str) -> None:
        attempt = self._active.get(comp_id)
        if attempt is None or attempt.finished:
            return
        suspects = self._suspect_services(attempt)
        self._count("composition.timeouts")
        if self.tracer.enabled:
            attempt.span.event("composition.timeout", comp_id=comp_id,
                               attempt=attempt.attempts, suspects=len(suspects))
        if self.breakers is not None:
            suspect_providers = {
                b.provider for b in attempt.bindings.values() if b.service_name in suspects
            }
            for provider in suspect_providers:
                self.breakers.record_failure(provider)
        self._retry(attempt, exclude=suspects)

    def _suspect_services(self, attempt: _Attempt) -> set[str]:
        """Services plausibly responsible for the timed-out attempt.

        Centralized coordination sees exactly which invocations hung.
        Distributed coordination cannot see inside the pipeline, so every
        service bound to an uncompleted task is suspect -- the blacklist
        grows across retries until a working combination is found.
        """
        if self.mode == "centralized":
            return {attempt.bindings[t].service_name for t in attempt.in_flight}
        return {
            b.service_name
            for t, b in attempt.bindings.items()
            if t not in attempt.done_tasks
        }

    def _bind(self, graph: TaskGraph, blacklist: set[str]) -> dict[str, Binding]:
        """Bind honoring the blacklist and any open circuit breakers.

        The breaker exclusion is best-effort: when it (alone or combined
        with the blacklist) makes the graph unbindable, it is dropped --
        a provider behind an open breaker is still better than no
        provider at all.
        """
        blocked = self.breakers.blocked_providers() if self.breakers is not None else set()
        if not blocked:
            return self.binder.bind_graph(graph, exclude=blacklist)
        try:
            return self.binder.bind_graph(graph, exclude=blacklist, exclude_providers=blocked)
        except BindingError:
            return self.binder.bind_graph(graph, exclude=blacklist)

    def _retry(self, attempt: _Attempt, exclude: set[str]) -> None:
        if attempt.attempts > self.max_retries:
            self._finish(attempt, success=False)
            return
        attempt.blacklist |= exclude
        old = {t: b.service_name for t, b in attempt.bindings.items()}
        try:
            attempt.bindings = self._bind(attempt.graph, attempt.blacklist)
        except BindingError:
            # blacklist exhausted the pool: forget it and take whatever is
            # still advertised (churned-away hosts are gone from the
            # registry anyway)
            attempt.blacklist.clear()
            try:
                attempt.bindings = self._bind(attempt.graph, attempt.blacklist)
            except BindingError:
                self._finish(attempt, success=False)
                return
        attempt.rebinds += sum(
            1 for t, b in attempt.bindings.items() if old.get(t) != b.service_name
        )
        attempt.attempts += 1
        if self.tracer.enabled:
            attempt.span.event("composition.retry", comp_id=attempt.comp_id,
                               attempt=attempt.attempts, rebinds=attempt.rebinds,
                               excluded=len(exclude))
        self._launch(attempt)

    # ------------------------------------------------------------------
    # centralized mode
    # ------------------------------------------------------------------
    def _dispatch_ready(self, attempt: _Attempt) -> None:
        for task in attempt.graph.tasks():
            name = task.name
            if name in attempt.done_tasks or name in attempt.in_flight:
                continue
            preds = attempt.graph.predecessors(name)
            if any(p not in attempt.done_tasks for p in preds):
                continue
            inputs = {p: attempt.results[p] for p in preds}
            if not preds and name in attempt.initial_inputs:
                inputs["__initial__"] = attempt.initial_inputs[name]
            binding = attempt.bindings[name]
            attempt.in_flight.add(name)
            self.send(
                binding.provider,
                ACLMessage(
                    Performative.REQUEST,
                    sender=self.name,
                    receiver=binding.provider,
                    content={
                        "kind": "invoke",
                        "comp_id": attempt.comp_id,
                        "task": name,
                        "params": task.params,
                        "inputs": inputs,
                    },
                ),
                size_bits=binding.match.service.input_bits,
            )

    def _handle_inform(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict) or content.get("kind") != "result":
            return
        attempt = self._active.get(content.get("comp_id", ""))
        if attempt is None or attempt.finished:
            return
        task = content["task"]
        attempt.results[task] = content.get("payload")
        attempt.done_tasks.add(task)
        attempt.in_flight.discard(task)
        if all(s in attempt.done_tasks for s in attempt.graph.sinks()):
            self._finish(attempt, success=True)
            return
        if self.mode == "centralized":
            self._dispatch_ready(attempt)

    # ------------------------------------------------------------------
    # distributed mode
    # ------------------------------------------------------------------
    def _distribute_roles(self, attempt: _Attempt) -> None:
        graph = attempt.graph
        for task in graph.tasks():
            name = task.name
            binding = attempt.bindings[name]
            successors = [
                (attempt.bindings[s].provider, s) for s in graph.successors(name)
            ]
            content: dict = {
                "kind": "role",
                "comp_id": attempt.comp_id,
                "task": name,
                "params": task.params,
                "n_inputs": len(graph.predecessors(name)),
                "successors": successors,
                "manager": self.name,
            }
            if not graph.predecessors(name) and name in attempt.initial_inputs:
                content["initial_inputs"] = {"__initial__": attempt.initial_inputs[name]}
            self.send(
                binding.provider,
                ACLMessage(
                    Performative.REQUEST,
                    sender=self.name,
                    receiver=binding.provider,
                    content=content,
                ),
                size_bits=self.role_card_bits,
            )
