"""Service provider agents.

A :class:`ServiceProviderAgent` hosts one advertised service and executes
invocations.  It supports both coordination styles the paper contrasts:

* **centralized**: the manager sends an ``invoke`` carrying all inputs;
  the provider computes and replies with the result -- every byte flows
  through the coordinator.
* **distributed**: the manager first sends a small ``role`` card (task,
  expected input count, successor providers); data then flows
  provider-to-provider via ``data`` messages, and only sink providers
  report back to the manager.

Failures are *silent*: a provider whose failure draw trips simply never
responds, so managers must detect failure by timeout -- the realistic
failure model for "link and resource failures" in open environments.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.discovery.description import ServiceDescription
from repro.simkernel import Simulator

#: Executor signature: (params, inputs_by_task) -> result payload.
Executor = typing.Callable[[dict, dict], typing.Any]


def _default_executor(params: dict, inputs: dict) -> dict:
    """Echo executor used when a service has no real computation attached."""
    return {"params": dict(params), "consumed": sorted(inputs)}


@dataclasses.dataclass
class _RoleState:
    """Per-composition execution state in distributed mode."""

    comp_id: str
    task: str
    params: dict
    expected_inputs: int
    successors: list[tuple[str, str]]  # (agent name, task name)
    manager: str
    inputs: dict = dataclasses.field(default_factory=dict)
    started: bool = False


class ServiceProviderAgent(Agent):
    """An agent exporting one service.

    Parameters
    ----------
    name:
        Agent name (also used as ``ServiceDescription.provider``).
    description:
        The advertised profile; its ``ops``/``output_bits`` drive timing
        and message sizes.
    sim:
        Simulator for compute delays.
    compute_rate:
        Host throughput in ops/second (handhelds are slow, grid agents
        fast).
    executor:
        The actual computation (default: echo).
    fail_prob:
        Probability an invocation silently fails.
    rng:
        Random source for failure draws.
    """

    def __init__(
        self,
        name: str,
        description: ServiceDescription,
        sim: Simulator,
        compute_rate: float = 1e8,
        executor: Executor | None = None,
        fail_prob: float = 0.0,
        rng: typing.Any = None,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.SERVICE_PROVIDER))
        if compute_rate <= 0:
            raise ValueError("compute_rate must be positive")
        if not 0.0 <= fail_prob < 1.0:
            raise ValueError("fail_prob must be in [0, 1)")
        description.provider = name
        self.description = description
        self.sim = sim
        self.compute_rate = compute_rate
        self.executor = executor or _default_executor
        self.fail_prob = fail_prob
        self.rng = rng
        self.invocations = 0
        self.failures_injected = 0
        self._roles: dict[tuple[str, str], _RoleState] = {}

    def setup(self) -> None:
        self.on(Performative.REQUEST, self._handle_request)
        self.on(Performative.CFP, self._handle_cfp)
        self.on(Performative.ACCEPT, self._handle_award)
        self.on(Performative.REJECT, lambda msg: None)

    # ------------------------------------------------------------------
    @property
    def service_time_s(self) -> float:
        """Compute delay per invocation on this host."""
        return self.description.ops / self.compute_rate

    def _fails(self) -> bool:
        if self.fail_prob and self.rng is not None:
            if float(self.rng.random()) < self.fail_prob:
                self.failures_injected += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Contract-Net participation (negotiated binding)
    # ------------------------------------------------------------------
    def _handle_cfp(self, msg: ACLMessage) -> None:
        """Bid on a call for proposals with a performance commitment.

        The committed completion time is this host's real service time
        scaled by the advertised ``commit_factor`` attribute (< 1 means
        the provider over-promises; the initiator's reputation tracking
        will catch it when execution overruns the commitment).
        """
        from repro.agents.contractnet import CallForProposals, Proposal

        cfp = msg.content
        if not isinstance(cfp, CallForProposals):
            self.reply(msg, Performative.FAILURE, "expected CallForProposals")
            return
        category = cfp.task.get("category")
        if category and category != self.description.category:
            self.reply(msg, Performative.REJECT, cfp.cfp_id)
            return
        price = float(self.description.attributes.get("price", self.description.cost))
        commit_factor = float(self.description.attributes.get("commit_factor", 1.0))
        completion = self.service_time_s * commit_factor
        if price > cfp.max_price or completion > cfp.deadline_s:
            self.reply(msg, Performative.REJECT, cfp.cfp_id)
            return
        self.reply(msg, Performative.PROPOSE,
                   Proposal(cfp_id=cfp.cfp_id, contractor=self.name,
                            price=price, completion_s=completion))

    def _handle_award(self, msg: ACLMessage) -> None:
        """Confirm the award (the manager invokes the service later)."""
        content = msg.content
        if isinstance(content, dict) and "cfp" in content:
            self.reply(msg, Performative.INFORM,
                       {"cfp_id": content["cfp"].cfp_id, "result": "reserved"})

    # ------------------------------------------------------------------
    def _handle_request(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict):
            self.reply(msg, Performative.FAILURE, "expected dict content")
            return
        kind = content.get("kind")
        if kind == "invoke":
            self._handle_invoke(msg, content)
        elif kind == "role":
            self._handle_role(content)
        elif kind == "data":
            self._handle_data(content)
        else:
            self.reply(msg, Performative.FAILURE, f"unknown kind {kind!r}")

    # -------------------- centralized path ---------------------------
    def _handle_invoke(self, msg: ACLMessage, content: dict) -> None:
        self.invocations += 1
        if self._fails():
            return  # silent failure -> manager timeout
        params = content.get("params", {})
        inputs = content.get("inputs", {})

        def finish() -> None:
            if self.platform is None:
                return  # host went down mid-computation
            result = self.executor(params, inputs)
            self.reply(msg, Performative.INFORM, {
                "kind": "result",
                "comp_id": content.get("comp_id"),
                "task": content.get("task"),
                "payload": result,
            })

        self.sim.schedule(self.service_time_s, finish, label=f"compute:{self.name}")

    # -------------------- distributed path ---------------------------
    def _handle_role(self, content: dict) -> None:
        state = _RoleState(
            comp_id=content["comp_id"],
            task=content["task"],
            params=content.get("params", {}),
            expected_inputs=int(content.get("n_inputs", 0)),
            successors=[tuple(s) for s in content.get("successors", [])],
            manager=content["manager"],
        )
        if "initial_inputs" in content:
            state.inputs.update(content["initial_inputs"])
        self._roles[(state.comp_id, state.task)] = state
        self._maybe_start(state)

    def _handle_data(self, content: dict) -> None:
        key = (content["comp_id"], content["task"])
        state = self._roles.get(key)
        if state is None:
            return  # stale data for a retried/cancelled composition
        state.inputs[content["from_task"]] = content.get("payload")
        self._maybe_start(state)

    def _maybe_start(self, state: _RoleState) -> None:
        if state.started or len(state.inputs) < state.expected_inputs:
            return
        state.started = True
        self.invocations += 1
        if self._fails():
            return  # silent failure

        def finish() -> None:
            if self.platform is None:
                return  # host went down mid-computation
            result = self.executor(state.params, state.inputs)
            if state.successors:
                for agent_name, task_name in state.successors:
                    self.send(
                        agent_name,
                        ACLMessage(
                            Performative.REQUEST,
                            sender=self.name,
                            receiver=agent_name,
                            content={
                                "kind": "data",
                                "comp_id": state.comp_id,
                                "task": task_name,
                                "from_task": state.task,
                                "payload": result,
                            },
                        ),
                        size_bits=self.description.output_bits,
                    )
            else:
                self.send(
                    state.manager,
                    ACLMessage(
                        Performative.INFORM,
                        sender=self.name,
                        receiver=state.manager,
                        content={
                            "kind": "result",
                            "comp_id": state.comp_id,
                            "task": state.task,
                            "payload": result,
                        },
                    ),
                    size_bits=self.description.output_bits,
                )
            self._roles.pop((state.comp_id, state.task), None)

        self.sim.schedule(self.service_time_s, finish, label=f"compute:{self.name}")
