"""Ready-made executors: real computations behind the service categories.

Providers are only interesting when invoking them *does* something.  This
module binds the default ontology's computational categories to the real
implementations elsewhere in the library, so examples and experiments can
stand up a working service economy in a few lines:

* ``DecisionTreeService``   → :class:`repro.datamining.DecisionTree`
* ``FourierSpectrumService`` → spectra + dominant-component selection
* ``EnsembleCombinerService`` → :class:`repro.datamining.FourierFunction`
* ``PDESolverService``      → :class:`repro.pde.HeatSolver` steady solves
* ``AggregationService``    → :mod:`repro.queries.functions` aggregates

:func:`build_stream_mining_providers` wires the paper's §3 pipeline
(learn → spectra → dominant components → combine) as registered,
advertised provider agents in one call.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.composition.provider import ServiceProviderAgent
from repro.datamining import (
    DecisionTree,
    FourierFunction,
    average_spectra,
    spectrum_of,
    truncate_spectrum,
)
from repro.discovery.description import ServiceDescription
from repro.queries.functions import compute_aggregate


def make_decision_tree_executor(max_depth: int = 4):
    """Executor: labelled batch ``(X, y)`` in, fitted tree out.

    Accepts the batch under any single input key (sources get it as
    ``__initial__``; mid-pipeline as the producing task's name).
    """

    def executor(params: dict, inputs: dict) -> DecisionTree:
        (batch,) = inputs.values()
        X, y = batch
        return DecisionTree(max_depth=int(params.get("max_depth", max_depth))).fit(X, y)

    return executor


def make_spectrum_executor(d: int):
    """Executor for ``FourierSpectrumService``: handles both pipeline roles.

    * one fitted-tree input → that tree's exact spectrum;
    * one-or-more spectrum inputs (or a ``k_coefficients`` param) →
      average and keep the dominant components.
    """

    def executor(params: dict, inputs: dict) -> np.ndarray:
        values = list(inputs.values())
        if all(isinstance(v, np.ndarray) and v.ndim == 1 for v in values):
            avg = average_spectra(values)
            k = int(params.get("k_coefficients", 32))
            return truncate_spectrum(avg, k)
        (tree,) = values
        return spectrum_of(tree.predict, d)

    return executor


def make_combiner_executor(d: int):
    """Executor: truncated spectrum in, executable classifier out."""

    def executor(params: dict, inputs: dict) -> FourierFunction:
        (spectrum,) = inputs.values()
        return FourierFunction(spectrum, d)

    return executor


def make_pde_executor(area_m: float, resolution: int = 24):
    """Executor for ``PDESolverService``: readings in, temperature field out.

    Input payload: ``{"positions": (m, 2) array, "values": (m,) array}``.
    """
    from repro.pde.grid import RectGrid
    from repro.pde.heat import HeatSolver
    from repro.pde.interpolate import readings_to_grid

    def executor(params: dict, inputs: dict) -> np.ndarray:
        (payload,) = inputs.values()
        positions = np.asarray(payload["positions"], dtype=float)
        values = np.asarray(payload["values"], dtype=float)
        res = int(params.get("resolution", resolution))
        grid = RectGrid(res, res, area_m, area_m)
        interpolated = readings_to_grid(grid, positions, values)
        fixed = grid.boundary_mask()
        bvals = interpolated.copy()
        for pos, val in zip(positions, values):
            i, j = grid.nearest_index(pos)
            fixed[i, j] = True
            bvals[i, j] = val
        return HeatSolver(grid).solve_steady(bvals, fixed_mask=fixed)

    return executor


def make_aggregation_executor(default_func: str = "AVG"):
    """Executor for ``AggregationService``: value sequence in, scalar out."""

    def executor(params: dict, inputs: dict) -> float:
        (payload,) = inputs.values()
        values = np.asarray(payload, dtype=float)
        return compute_aggregate(str(params.get("func", default_func)), values)

    return executor


def build_stream_mining_providers(
    platform,
    registry,
    sim,
    d: int,
    *,
    n_miners: int = 3,
    k_coefficients: int = 32,
    compute_rate: float = 1e8,
    deputy_factory: typing.Callable[[ServiceProviderAgent], typing.Any] | None = None,
) -> list[ServiceProviderAgent]:
    """Register and advertise the full §3 stream-mining service economy.

    Returns the provider agents, in registration order.  ``deputy_factory``
    (agent → deputy) hosts them behind custom deputies (e.g. wireless).
    """
    specs = [(f"miner-{i}", "DecisionTreeService", make_decision_tree_executor())
             for i in range(n_miners)]
    specs.append(("spectral", "FourierSpectrumService", make_spectrum_executor(d)))
    specs.append(("combiner", "EnsembleCombinerService", make_combiner_executor(d)))

    agents = []
    for name, category, executor in specs:
        desc = ServiceDescription(name=f"svc-{name}", category=category, ops=5e6)
        agent = ServiceProviderAgent(name, desc, sim, compute_rate=compute_rate,
                                     executor=executor)
        deputy = deputy_factory(agent) if deputy_factory is not None else None
        platform.register(agent, deputy)
        registry.advertise(desc)
        agents.append(agent)
    return agents
