"""Service composition (paper §3).

"Given an efficient semantic level discovery infrastructure, the next
task is to use it to compose services and components."

The pipeline reproduced here:

1. **Decomposition** -- an HTN planner (:mod:`~repro.composition.planner`)
   turns a compound goal into a :class:`~repro.composition.task.TaskGraph`
   of primitive tasks, e.g. the paper's stream-analysis example:
   *generate decision trees → compute their Fourier spectra → choose the
   dominant components → combine into a single tree*.
2. **Binding** -- each task is matched to a discovered service
   (:mod:`~repro.composition.binding`).
3. **Execution** -- a composition manager drives the bound graph either
   through a *centralized* coordinator (all data bounces through the
   manager's host -- the architecture the paper says fits purely wired
   environments) or *distributed* (data flows provider-to-provider; the
   manager only seeds sources and hears from sinks), with timeout-based
   failure detection and re-binding (:mod:`~repro.composition.manager`,
   :mod:`~repro.composition.provider`).
4. **Reactive vs proactive** -- compose at request time, or pre-compute
   bindings for high-frequency queries (:mod:`~repro.composition.reactive`).
"""

from repro.composition.task import TaskSpec, TaskGraph
from repro.composition.planner import HTNPlanner, Method, build_pervasive_domain
from repro.composition.binding import Binder, Binding, BindingError
from repro.composition.provider import ServiceProviderAgent
from repro.composition.manager import CompositionManager, CompositionResult
from repro.composition.reactive import ReactiveComposer, ProactiveComposer
from repro.composition.negotiation import NegotiatedBinder
from repro.composition.adapters import (
    MailboxServiceAgent,
    ParadigmAdapter,
    RPCServiceAgent,
)
from repro.composition.executors import build_stream_mining_providers

__all__ = [
    "NegotiatedBinder",
    "MailboxServiceAgent",
    "ParadigmAdapter",
    "RPCServiceAgent",
    "build_stream_mining_providers",
    "TaskSpec",
    "TaskGraph",
    "HTNPlanner",
    "Method",
    "build_pervasive_domain",
    "Binder",
    "Binding",
    "BindingError",
    "ServiceProviderAgent",
    "CompositionManager",
    "CompositionResult",
    "ReactiveComposer",
    "ProactiveComposer",
]
