"""WHERE-clause evaluation against a deployment.

Predicates may reference:

* ``sensor_id`` -- the topology node id,
* ``room`` -- a coarse spatial cell number (row-major over an
  ``rooms_per_side x rooms_per_side`` partition of the deployment area,
  numbered from 1 like the paper's "room # 210" examples),
* ``x`` / ``y`` -- the sensor position in metres.

Value predicates (on the measured attribute) are intentionally *not*
evaluated here: they require sampling, which costs energy, and are
applied by the execution models after collection.
"""

from __future__ import annotations

from repro.queries.ast import Query
from repro.sensors.deployment import SensorDeployment

#: Default spatial partition used for the ``room`` attribute.
DEFAULT_ROOMS_PER_SIDE = 3


def room_of(deployment: SensorDeployment, sensor_id: int, rooms_per_side: int = DEFAULT_ROOMS_PER_SIDE) -> int:
    """Room number (1-based, row-major) of a sensor's position."""
    if rooms_per_side < 1:
        raise ValueError("rooms_per_side must be positive")
    pos = deployment.topology.position_of(sensor_id)
    cell = deployment.area_m / rooms_per_side
    col = min(int(pos[0] / cell), rooms_per_side - 1)
    row = min(int(pos[1] / cell), rooms_per_side - 1)
    return row * rooms_per_side + col + 1


def sensor_attributes(
    deployment: SensorDeployment, sensor_id: int, rooms_per_side: int = DEFAULT_ROOMS_PER_SIDE
) -> dict:
    """The attribute map a WHERE predicate sees for one sensor."""
    pos = deployment.topology.position_of(sensor_id)
    return {
        "sensor_id": sensor_id,
        "room": room_of(deployment, sensor_id, rooms_per_side),
        "x": float(pos[0]),
        "y": float(pos[1]),
    }


def select_targets(
    deployment: SensorDeployment,
    query: Query,
    rooms_per_side: int = DEFAULT_ROOMS_PER_SIDE,
) -> list[int]:
    """Living sensors satisfying every WHERE predicate.

    Predicates over unknown attributes (e.g. the measured value) are
    skipped here -- they filter *readings*, not sensors.
    """
    static_attrs = {"sensor_id", "room", "x", "y"}
    preds = [p for p in query.where if p.attribute in static_attrs]
    out = []
    for sid in deployment.alive_sensor_ids():
        attrs = sensor_attributes(deployment, sid, rooms_per_side)
        if all(p.holds(attrs) for p in preds):
            out.append(sid)
    return out
