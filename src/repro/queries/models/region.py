"""The region-averaging plan: trade accuracy for data transfer.

"depending upon the accuracy of results required, instead of sending
each sensor reading to the grid, one might only send the average reading
from a region (the size of the region depending on the level of accuracy
needed)."

Targets are grouped into the spatial rooms grid; one averaged pseudo-
reading per occupied region travels to the base station (and on to the
grid for complex functions).  The answer is computed from the regional
averages, so it is *approximate*; the expected relative error shrinks as
``regions_per_side`` grows -- the knob COST ``accuracy`` clauses turn.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.grid.job import ComputeJob
from repro.queries.ast import Query
from repro.queries.classifier import QueryClass, base_class
from repro.queries.functions import COMPLEX_FUNCTIONS
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    READING_BITS,
    RESULT_BITS,
)
from repro.sensors.node import Reading


class RegionAverageModel(ExecutionModel):
    """Regional averages instead of raw readings; compute at grid/base.

    Parameters
    ----------
    regions_per_side:
        Granularity of the averaging grid (higher = more accurate, more
        data).
    """

    name = "region"
    contention_coeff = 0.25

    def __init__(self, regions_per_side: int = 3) -> None:
        if regions_per_side < 1:
            raise ValueError("regions_per_side must be positive")
        self.regions_per_side = regions_per_side

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """Averaging-compatible queries: AVG/SUM/COUNT aggregates and
        complex functions (which interpolate anyway).  MAX/MIN/MEDIAN
        would be badly biased by averaging; simple lookups gain nothing."""
        cls = base_class(query)
        if cls is QueryClass.SIMPLE:
            return False
        ok_aggs = {"AVG", "SUM", "COUNT"}
        for f in query.functions:
            if f in ok_aggs or f in COMPLEX_FUNCTIONS:
                continue
            return False
        return True

    # ------------------------------------------------------------------
    def _region_of(self, ctx: QueryContext, pos: np.ndarray) -> int:
        cell = ctx.deployment.area_m / self.regions_per_side
        col = min(int(pos[0] / cell), self.regions_per_side - 1)
        row = min(int(pos[1] / cell), self.regions_per_side - 1)
        return row * self.regions_per_side + col

    def _region_groups(self, ctx: QueryContext, targets: list[int]) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for t in targets:
            pos = ctx.deployment.topology.position_of(t)
            groups.setdefault(self._region_of(ctx, pos), []).append(t)
        return groups

    def _representatives(self, ctx: QueryContext, groups: dict[int, list[int]]) -> list[int]:
        """One relay sensor per occupied region (lowest id: deterministic)."""
        return [min(members) for members in groups.values()]

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        groups = self._region_groups(ctx, targets)
        reps = self._representatives(ctx, groups)
        flood = self._flood_cost(query, ctx)
        # members send one reading to their region representative
        # (single-hop cluster assumption, as in LEACH), then reps send one
        # averaged record to the base
        topo = ctx.deployment.topology
        em = ctx.deployment.energy_model
        per_node = np.zeros(topo.n_nodes)
        member_msgs = 0
        for region, members in groups.items():
            rep = min(members)
            for m in members:
                if m == rep:
                    continue
                d = topo.distance(m, rep)
                per_node[m] += em.tx_cost(READING_BITS, d)
                per_node[rep] += em.rx_cost(READING_BITS) + em.cpu_cost(10.0)
                member_msgs += 1
        rep_collect = collection.raw_collection(ctx.deployment, reps, READING_BITS * 2)
        member_latency = ctx.deployment.radio.hop_time(READING_BITS)
        # complex parts go to the grid when reachable; during an uplink
        # outage the base station computes them instead (slower, but the
        # regional reduction keeps the input small -- graceful degradation)
        needs_grid = any(f in COMPLEX_FUNCTIONS for f in query.functions) and ctx.grid.online
        n_regions = len(groups)
        ops = self.compute_ops(query, ctx, n_regions)
        if needs_grid:
            job = ComputeJob(ops=ops, input_bits=rep_collect.bits_total,
                             output_bits=COMPLEX_FUNCTIONS["DISTRIBUTION"]["output_bits_per_point"]
                             * ctx.grid_resolution**2)
            compute_s = ctx.grid.estimate_offload_time(job)
        else:
            compute_s = ops / ctx.base_rate
        result_s = ctx.deployment.radio.hop_time(RESULT_BITS)
        return groups, reps, flood, per_node, member_msgs, member_latency, rep_collect, ops, compute_s, result_s

    def _expected_rel_error(self, n_targets: int, n_regions: int) -> float:
        """Coarse error model: averaging n targets into k regions.

        Sub-sampling error shrinks like sqrt(k/n); exact when every
        target is its own region.
        """
        if n_targets <= 0 or n_regions <= 0:
            return 1.0
        if n_regions >= n_targets:
            return 0.0
        return 0.25 * float(np.sqrt(1.0 - n_regions / n_targets))

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets or not self.supports(query, ctx):
            return CostEstimate.INFEASIBLE
        (groups, reps, flood, per_node, member_msgs, member_latency,
         rep_collect, ops, compute_s, result_s) = self._pieces(query, ctx, targets)
        if len(rep_collect.participating) <= 1:
            return CostEstimate.INFEASIBLE
        energy = flood.energy_j + float(per_node.sum()) + rep_collect.energy_j
        time = flood.latency_s + member_latency + rep_collect.latency_s + compute_s + result_s
        bits = QUERY_BITS + member_msgs * READING_BITS + rep_collect.bits_total
        return CostEstimate(
            energy_j=energy,
            time_s=time,
            data_bits=bits,
            ops=ops,
            rel_error=self._expected_rel_error(len(targets), len(groups)),
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        est = self.estimate(query, ctx, targets)
        if not est.feasible:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "unsupported"))
            return
        (groups, reps, flood, per_node, member_msgs, member_latency,
         rep_collect, ops, compute_s, result_s) = self._pieces(query, ctx, targets)
        time_factor, energy_factor = self._actual_factors(
            ctx, member_msgs + rep_collect.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, reps),
        )
        self._charge(ctx, flood.per_node_energy + per_node + rep_collect.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)

        # sample all targets, then regionally average into pseudo-readings
        readings = self.filter_readings(query, self._sample_targets(ctx, targets))
        by_region: dict[int, list[Reading]] = {}
        for r in readings:
            pos = ctx.deployment.topology.position_of(r.sensor_id)
            by_region.setdefault(self._region_of(ctx, pos), []).append(r)
        pseudo: list[Reading] = []
        for region, rs in sorted(by_region.items()):
            rep = min(r.sensor_id for r in rs)
            avg = float(np.mean([r.value for r in rs]))
            pseudo.append(Reading(sensor_id=rep, time=ctx.sim.now, value=avg,
                                  attribute=rs[0].attribute))

        wireless_s = (flood.latency_s + member_latency + rep_collect.latency_s) * time_factor
        total_s = wireless_s + compute_s + result_s
        actual_energy = (flood.energy_j + float(per_node.sum()) + rep_collect.energy_j) * energy_factor
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings),
            member_msgs + rep_collect.messages + flood.messages,
            len(rep_collect.participating), wireless_s, bits=rep_collect.bits_total)

        def finish() -> None:
            close_collect(bool(pseudo))
            if not pseudo:
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, est.data_bits, 0, "no readings"))
                return
            query_adj = query
            value = self._compute_regional_answer(query_adj, ctx, pseudo, groups)
            on_complete(ModelOutcome(True, value, self.name, total_s,
                                     actual_energy, est.data_bits, len(pseudo)))

        ctx.sim.schedule(total_s, finish, label=f"exec:{self.name}")

    def _compute_regional_answer(self, query: Query, ctx: QueryContext,
                                 pseudo: list[Reading], groups: dict[int, list[int]]) -> typing.Any:
        """Evaluate over regional averages; SUM/COUNT re-weighted by
        region populations (an unweighted sum of averages would be
        nonsense)."""
        import numpy as _np

        weights = {min(members): len(members) for members in groups.values()}
        answers: dict[str, typing.Any] = {}
        values = _np.array([r.value for r in pseudo])
        counts = _np.array([weights.get(r.sensor_id, 1) for r in pseudo], dtype=float)
        for item in query.select:
            key = str(item)
            if item.func == "AVG":
                answers[key] = float(_np.average(values, weights=counts))
            elif item.func == "SUM":
                answers[key] = float(_np.sum(values * counts))
            elif item.func == "COUNT":
                answers[key] = float(counts.sum())
            else:
                answers[key] = self.compute_answer(
                    Query(select=(item,), raw=query.raw), ctx, pseudo
                )
        if len(answers) == 1:
            return next(iter(answers.values()))
        return answers
