"""The TAG plan: in-network aggregation over an aggregation tree.

"Another way to perform in-network aggregation is to use aggregation
trees.  Data would be routed and aggregated through the aggregation
trees."  Only *decomposable* aggregates (and simple lookups, which are a
one-path special case) can run this way -- the restriction TAG itself has
and the reason the Decision Maker exists at all.
"""

from __future__ import annotations

import typing

from repro.queries.ast import Query
from repro.queries.classifier import QueryClass, base_class
from repro.queries.functions import DECOMPOSABLE, is_decomposable
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    RESULT_BITS,
)


class InNetworkTreeModel(ExecutionModel):
    """Aggregated convergecast: one partial-state record per tree node.

    Energy scales with node count (not reading count squared) and the
    root never congests -- the cheapest plan whenever it applies.
    """

    name = "tree"
    contention_coeff = 0.15

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """Simple lookups and decomposable aggregates only."""
        cls = base_class(query)
        if cls is QueryClass.SIMPLE:
            return True
        if cls is QueryClass.AGGREGATE:
            return all(is_decomposable(f) for f in query.functions)
        return False

    def _partial_bits(self, query: Query) -> float:
        """Wire size of the merged partial-state record for this query."""
        bits = 0.0
        for f in query.functions:
            bits += DECOMPOSABLE[f.upper()].state_size_bits
        return bits or 64.0  # simple query: one reading-sized record

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        flood = self._flood_cost(query, ctx)
        collect = collection.aggregated_collection(
            ctx.deployment, targets, self._partial_bits(query)
        )
        result_s = ctx.deployment.radio.hop_time(RESULT_BITS)
        # finalize at the base: trivial
        return flood, collect, result_s

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets or not self.supports(query, ctx):
            return CostEstimate.INFEASIBLE
        flood, collect, result_s = self._pieces(query, ctx, targets)
        if len(collect.participating) <= 1:
            return CostEstimate.INFEASIBLE
        return CostEstimate(
            energy_j=flood.energy_j + collect.energy_j,
            time_s=flood.latency_s + collect.latency_s + result_s,
            data_bits=collect.bits_total + QUERY_BITS,
            ops=10.0 * collect.messages,
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        est = self.estimate(query, ctx, targets)
        if not est.feasible:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "unsupported or unreachable"))
            return
        flood, collect, result_s = self._pieces(query, ctx, targets)
        time_factor, energy_factor = self._actual_factors(
            ctx, collect.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, targets),
        )
        self._charge(ctx, flood.per_node_energy + collect.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)
        readings = self._sample_targets(
            ctx, [t for t in targets if t in collect.participating]
        )
        readings = self.filter_readings(query, readings)
        total_s = (flood.latency_s + collect.latency_s) * time_factor + result_s
        actual_energy = (flood.energy_j + collect.energy_j) * energy_factor
        # the whole in-network convergecast (flood + aggregate + result
        # hop) is radio time, so one span covers the full interval
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings), collect.messages + flood.messages,
            len(collect.participating), total_s, bits=collect.bits_total)

        def finish() -> None:
            close_collect(bool(readings))
            if not readings:
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, est.data_bits, 0, "no readings"))
                return
            # in-network merging produces exactly the aggregate value
            value = self.compute_answer(query, ctx, readings)
            on_complete(ModelOutcome(True, value, self.name, total_s,
                                     actual_energy, est.data_bits, len(readings)))

        ctx.sim.schedule(total_s, finish, label=f"exec:{self.name}")
