"""The cluster plan: LEACH-style heads aggregate, then relay to the base.

"Cluster based models can enable the computation to be carried out in the
sensor network.  Sensors are divided into clusters and each cluster has a
cluster head.  Cluster heads aggregate information from the sensors in
individual clusters and send it to the base station."
"""

from __future__ import annotations

import typing

from repro.network.routing.cluster import ClusterFormation
from repro.queries.ast import Query
from repro.queries.classifier import QueryClass, base_class
from repro.queries.functions import is_decomposable
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    READING_BITS,
    RESULT_BITS,
)


class ClusterModel(ExecutionModel):
    """Two-tier aggregation: members → heads → base station.

    Heads are re-elected per query round (LEACH rotation), so repeated
    executions spread the head burden -- visible in the lifetime
    experiment (E9).
    """

    name = "cluster"
    contention_coeff = 0.3

    def __init__(self, head_fraction: float = 0.15) -> None:
        if not 0.0 < head_fraction <= 1.0:
            raise ValueError("head_fraction must be in (0, 1]")
        self.head_fraction = head_fraction

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """Simple lookups and decomposable aggregates (heads merge)."""
        cls = base_class(query)
        if cls is QueryClass.SIMPLE:
            return True
        if cls is QueryClass.AGGREGATE:
            return all(is_decomposable(f) for f in query.functions)
        return False

    def _form(self, ctx: QueryContext) -> ClusterFormation:
        return ClusterFormation(
            ctx.deployment.topology,
            sink=ctx.deployment.base_station_id,
            rng=ctx.streams.get("clustering"),
            head_fraction=self.head_fraction,
        )

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        flood = self._flood_cost(query, ctx)
        formation = self._form(ctx)
        # restrict member transmissions to the targeted sensors: model the
        # non-target members as silent this round
        target_set = set(targets)
        formation.membership = {
            n: h for n, h in formation.membership.items()
            if n in target_set or n in formation.heads
        }
        cost = formation.aggregated_collection(
            READING_BITS, 128.0, ctx.deployment.radio, ctx.deployment.energy_model
        )
        result_s = ctx.deployment.radio.hop_time(RESULT_BITS)
        return flood, formation, cost, result_s

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets or not self.supports(query, ctx):
            return CostEstimate.INFEASIBLE
        flood, formation, cost, result_s = self._pieces(query, ctx, targets)
        reached = [t for t in targets if t in cost.participating]
        if not reached:
            return CostEstimate.INFEASIBLE
        return CostEstimate(
            energy_j=flood.energy_j + cost.energy_j,
            time_s=flood.latency_s + cost.latency_s + result_s,
            data_bits=cost.bits_total + QUERY_BITS,
            ops=10.0 * cost.messages,
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        if not targets or not self.supports(query, ctx):
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "unsupported"))
            return
        flood, formation, cost, result_s = self._pieces(query, ctx, targets)
        reached = [t for t in targets if t in cost.participating]
        if not reached:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "heads unreachable"))
            return
        time_factor, energy_factor = self._actual_factors(
            ctx, cost.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, targets),
        )
        self._charge(ctx, flood.per_node_energy + cost.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)
        readings = self.filter_readings(query, self._sample_targets(ctx, reached))
        total_s = (flood.latency_s + cost.latency_s) * time_factor + result_s
        actual_energy = (flood.energy_j + cost.energy_j) * energy_factor
        data_bits = cost.bits_total + QUERY_BITS
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings), cost.messages + flood.messages,
            len(cost.participating), total_s, bits=cost.bits_total)

        def finish() -> None:
            close_collect(bool(readings))
            if not readings:
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, data_bits, 0, "no readings"))
                return
            value = self.compute_answer(query, ctx, readings)
            on_complete(ModelOutcome(True, value, self.name, total_s,
                                     actual_energy, data_bits, len(readings)))

        ctx.sim.schedule(total_s, finish, label=f"exec:{self.name}")
