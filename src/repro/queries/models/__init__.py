"""Execution models for sensor queries (the §4 "solution models").

The paper names the candidate plans the Decision Maker chooses among:

* "all sensors would send their data to the base station.  The base
  station would then perform the computation" --
  :class:`~repro.queries.models.centralized.CentralizedModel`.
* "Cluster based models can enable the computation to be carried out in
  the sensor network" --
  :class:`~repro.queries.models.cluster.ClusterModel`.
* "Another way to perform in-network aggregation is to use aggregation
  trees" -- :class:`~repro.queries.models.tree.InNetworkTreeModel`.
* "Most importantly, the grid can be used to perform the computation" --
  :class:`~repro.queries.models.grid_offload.GridOffloadModel`.
* "The data is delivered to the base station/PDA, which perform the
  computation" -- :class:`~repro.queries.models.handheld.HandheldModel`.
* "instead of sending each sensor reading to the grid, one might only
  send the average reading from a region" --
  :class:`~repro.queries.models.region.RegionAverageModel`.

Every model provides an analytic :meth:`~repro.queries.models.base.ExecutionModel.estimate`
(used by the Decision Maker) and an :meth:`~repro.queries.models.base.ExecutionModel.execute`
that runs in the DES, charges real batteries, computes real values and
reports *actuals* that deviate from estimates through MAC contention and
retransmission effects -- the estimate/actual gap the adaptive learner
closes.
"""

from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    complex_ops,
)
from repro.queries.models.centralized import CentralizedModel
from repro.queries.models.tree import InNetworkTreeModel
from repro.queries.models.cluster import ClusterModel
from repro.queries.models.grid_offload import GridOffloadModel
from repro.queries.models.handheld import HandheldModel
from repro.queries.models.region import RegionAverageModel

#: The default model registry, in a stable order.
ALL_MODELS = (
    CentralizedModel,
    InNetworkTreeModel,
    ClusterModel,
    GridOffloadModel,
    HandheldModel,
    RegionAverageModel,
)

__all__ = [
    "CostEstimate",
    "ExecutionModel",
    "ModelOutcome",
    "QueryContext",
    "complex_ops",
    "CentralizedModel",
    "InNetworkTreeModel",
    "ClusterModel",
    "GridOffloadModel",
    "HandheldModel",
    "RegionAverageModel",
    "ALL_MODELS",
]
