"""Shared machinery for execution models.

Cost conventions
----------------
* **Reading size**: 64 bits on the wire.
* **Query dissemination**: every in-network plan floods the query once
  (TAG does the same); the flood's cost is part of the estimate.
* **Result delivery**: one hop base station → handheld.
* **Complex-function ops**: the paper's complex query is a *3-D* PDE.
  We actually solve its 2-D analogue (real numbers in the results), but
  *charge* the operation count of the 3-D problem the paper describes:
  ``complex_ops(n) = 50 n^2`` for ``n`` grid points, which puts the solve
  at ~minutes on a workstation-class base station, ~hours on a handheld
  and ~sub-second on the grid -- exactly the paper's qualitative claim.

Estimate vs actual
------------------
Estimates are deterministic analytic costs.  Execution applies two
effects the analytic model ignores, so actuals deviate systematically:

* **MAC contention**: plans that converge many packets on few receivers
  slow down; actual time is scaled by
  ``1 + contention_coeff * messages / alive_nodes`` plus lognormal jitter.
* **Retransmissions**: lossy links force resends; actual time and energy
  scale by ``1 / (1 - loss)^hops_mean`` in expectation, sampled.

The Decision Maker's learned policy can model these (they depend on the
plan and the query), which is how adaptivity pays off (experiment E4).
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

from repro.grid.infrastructure import GridInfrastructure

from repro.pde.grid import RectGrid
from repro.pde.heat import HeatSolver
from repro.pde.interpolate import readings_to_grid
from repro.observability.tracer import NOOP_TRACER, STATUS_ERROR, STATUS_OK, Tracer
from repro.queries.ast import Query
from repro.queries.functions import compute_aggregate, is_aggregate
from repro.sensors.deployment import SensorDeployment
from repro.sensors.node import Reading
from repro.simkernel import RandomStreams

#: Wire size of one encoded reading.
READING_BITS = Reading.SIZE_BITS
#: Wire size of a disseminated query.
QUERY_BITS = 512.0
#: Wire size of a scalar result message.
RESULT_BITS = 256.0


def _noop_closer(ok: bool = True) -> None:
    return None


_NOOP_CLOSER = _noop_closer


def complex_ops(n_grid_points: int) -> float:
    """Charged operation count for the DISTRIBUTION complex function.

    Models the 3-D solve the paper describes (see module docstring); the
    2-D analogue we actually execute is far cheaper, so wall-clock stays
    interactive while simulated time reflects the paper's workload.
    """
    if n_grid_points < 0:
        raise ValueError("n_grid_points must be non-negative")
    return 50.0 * float(n_grid_points) ** 2


@dataclasses.dataclass
class QueryContext:
    """Everything an execution model needs to cost and run a query.

    Attributes
    ----------
    deployment:
        The sensor network (owns the shared simulator).
    grid:
        The wired grid behind the base station.
    handheld_rate / base_rate:
        Compute throughput of the handheld and base station, ops/s.
    streams:
        Random streams (execution noise, clustering).
    grid_resolution:
        PDE grid is ``resolution x resolution`` over the deployment area.
    rooms_per_side:
        Spatial partition used by the ``room`` attribute and by region
        averaging.
    tracer:
        Span/event sink shared by the executor and every execution model
        (default: the shared no-op tracer).
    """

    deployment: SensorDeployment
    grid: GridInfrastructure
    handheld_rate: float = 1e7
    base_rate: float = 1e8
    streams: RandomStreams | None = None
    grid_resolution: int = 40
    rooms_per_side: int = 3
    tracer: Tracer = NOOP_TRACER

    def __post_init__(self) -> None:
        if self.streams is None:
            self.streams = self.deployment.streams
        #: queries already flooded into the network (keyed by text).
        #: TAG disseminates a query once; later epochs only collect.
        self._disseminated: set[str] = set()

    def is_disseminated(self, query: Query) -> bool:
        """Whether the network already knows this query (no re-flood)."""
        return query.raw in self._disseminated

    def mark_disseminated(self, query: Query) -> None:
        """Record that this query has been flooded."""
        self._disseminated.add(query.raw)

    @property
    def sim(self):
        """The shared simulator."""
        return self.deployment.sim

    @property
    def noise_rng(self) -> np.random.Generator:
        """Execution-noise stream."""
        return self.streams.get("execution-noise")


@dataclasses.dataclass
class CostEstimate:
    """Predicted cost of running a query under one model.

    Attributes
    ----------
    energy_j:
        Total sensor-battery energy.
    time_s:
        Query turnaround.
    data_bits:
        Bits crossing the wireless network (and uplink, for offload).
    ops:
        Computation performed (wherever it runs).
    rel_error:
        Expected relative error of the answer (0 = exact plan).
    feasible:
        False when the plan cannot run (partition, no living targets).
    """

    energy_j: float
    time_s: float
    data_bits: float
    ops: float
    rel_error: float = 0.0
    feasible: bool = True

    INFEASIBLE: typing.ClassVar["CostEstimate"]

    def metric(self, name: str) -> float:
        """Look up a COST-clause metric on this estimate."""
        if name == "energy":
            return self.energy_j
        if name == "time":
            return self.time_s
        if name == "accuracy":
            return self.rel_error
        raise KeyError(f"unknown metric {name!r}")


CostEstimate.INFEASIBLE = CostEstimate(
    energy_j=math.inf, time_s=math.inf, data_bits=math.inf, ops=math.inf,
    rel_error=math.inf, feasible=False,
)


@dataclasses.dataclass
class ModelOutcome:
    """What actually happened when a model executed a query.

    ``value`` is the computed answer: a float for aggregates/simple
    queries, an ``(nx, ny)`` field for DISTRIBUTION, a histogram tuple
    for HISTOGRAM.
    """

    success: bool
    value: typing.Any
    model: str
    time_s: float
    energy_j: float
    data_bits: float
    readings_used: int
    error: str = ""


class ExecutionModel:
    """Interface all execution models implement."""

    #: Registry name (stable across runs; used by the Decision Maker).
    name: str = "abstract"
    #: How strongly this plan's convergecast pattern congests the MAC.
    contention_coeff: float = 0.3
    #: Lognormal sigma of execution-time jitter.
    jitter_sigma: float = 0.08

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """Whether this model can evaluate ``query`` at all."""
        raise NotImplementedError

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        """Analytic cost prediction (no side effects)."""
        raise NotImplementedError

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        """Run the plan in the DES; callback with the outcome."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _flood_cost(self, query: Query, ctx: QueryContext):
        """Query-dissemination cost: zero once the query is in the network."""
        from repro.network.routing.base import DisseminationResult
        from repro.queries.models import collection

        if ctx.is_disseminated(query):
            n = ctx.deployment.topology.n_nodes
            return DisseminationResult(
                reached=set(), messages=0, energy_j=0.0,
                per_node_energy=np.zeros(n), latency_s=0.0,
            )
        return collection.flood_cost(ctx.deployment, QUERY_BITS)

    def _actual_factors(self, ctx: QueryContext, messages: float, mean_hops: float) -> tuple[float, float]:
        """Sample (time_factor, energy_factor) for one execution."""
        rng = ctx.noise_rng
        alive = max(len(ctx.deployment.alive_sensor_ids()), 1)
        contention = 1.0 + self.contention_coeff * messages / alive
        jitter = float(rng.lognormal(0.0, self.jitter_sigma))
        loss = ctx.deployment.radio.loss_prob
        retx_mean = (1.0 / max((1.0 - loss) ** max(mean_hops, 1.0), 1e-6)) - 1.0
        retx = 1.0 + float(rng.exponential(retx_mean)) if retx_mean > 0 else 1.0
        return contention * jitter * retx, retx

    def _charge(self, ctx: QueryContext, per_node_energy: np.ndarray, factor: float = 1.0) -> None:
        """Draw per-node radio energy from the batteries."""
        topo = ctx.deployment.topology
        for node_id in np.flatnonzero(per_node_energy > 0.0):
            node_id = int(node_id)
            battery = ctx.deployment.network.nodes[node_id].battery
            alive = battery.draw(float(per_node_energy[node_id]) * factor)
            if not alive and topo.is_alive(node_id):
                topo.kill(node_id)

    def _sample_targets(self, ctx: QueryContext, targets: list[int]) -> list[Reading]:
        """Sample every target sensor (paying sense energy)."""
        readings = []
        for sid in targets:
            r = ctx.deployment.sample_sensor(sid)
            if r is not None:
                readings.append(r)
        return readings

    def _trace_collect(
        self,
        ctx: QueryContext,
        requested: int,
        returned: int,
        messages: float,
        participating: int,
        wireless_s: float,
        bits: float = 0.0,
    ):
        """Record the sampling event and a ``net.collect`` span covering
        this plan's wireless phase (``[now, now + wireless_s]``).

        Returns a closer ``close(ok=True)`` for the completion callback;
        analytic plans know the phase length up front, so the span is
        stamped with its true end rather than the callback's time.  Free
        (a shared no-op) when tracing is off.
        """
        tracer = ctx.tracer
        if not tracer.enabled:
            return _NOOP_CLOSER
        tracer.event("sensors.sample", requested=requested, returned=returned)
        span = tracer.span("net.collect", messages=messages,
                           participating=participating, bits=bits)
        end_t = ctx.sim.now + wireless_s

        def close(ok: bool = True) -> None:
            span.end_at(end_t, STATUS_OK if ok else STATUS_ERROR)

        return close

    @staticmethod
    def filter_readings(query: Query, readings: list[Reading]) -> list[Reading]:
        """Apply value predicates (attributes the targets step skipped)."""
        value_preds = [p for p in query.where if p.attribute in ("value", "temperature")]
        if not value_preds:
            return readings
        return [r for r in readings if all(p.holds({p.attribute: r.value}) for p in value_preds)]

    # ------------------------------------------------------------------
    # answer computation
    # ------------------------------------------------------------------
    @staticmethod
    def compute_answer(query: Query, ctx: QueryContext, readings: list[Reading]) -> typing.Any:
        """Evaluate the SELECT clause over collected readings."""
        if not readings:
            raise ValueError("no readings to compute over")
        values = np.array([r.value for r in readings])
        positions = np.array([ctx.deployment.topology.position_of(r.sensor_id) for r in readings])
        answers: dict[str, typing.Any] = {}
        for item in query.select:
            key = str(item)
            if item.func is None:
                answers[key] = float(values[0]) if len(values) == 1 else values.copy()
            elif is_aggregate(item.func):
                answers[key] = compute_aggregate(item.func, values)
            elif item.func == "DISTRIBUTION":
                answers[key] = solve_distribution(ctx, positions, values)
            elif item.func == "DISTRIBUTION3D":
                answers[key] = solve_distribution3d(ctx, positions, values)
            elif item.func == "HISTOGRAM":
                counts, edges = np.histogram(values, bins=10)
                answers[key] = (counts, edges)
            else:
                # arbitrary unknown function: defined here as the identity
                # over the collected value vector
                answers[key] = values.copy()
        if len(answers) == 1:
            return next(iter(answers.values()))
        return answers

    @staticmethod
    def compute_ops(query: Query, ctx: QueryContext, n_readings: int) -> float:
        """Charged operation count for evaluating the SELECT clause."""
        ops = 0.0
        for item in query.select:
            if item.func is None:
                ops += 1.0
            elif is_aggregate(item.func):
                ops += 10.0 * n_readings
            elif item.func == "DISTRIBUTION":
                ops += complex_ops(ctx.grid_resolution**2)
            elif item.func == "DISTRIBUTION3D":
                from repro.pde.heat3d import solve3d_ops_estimate

                nz = max(ctx.grid_resolution // 4, 4)
                ops += solve3d_ops_estimate(ctx.grid_resolution**2 * nz)
            elif item.func == "HISTOGRAM":
                ops += 20.0 * n_readings
            else:
                ops += 100.0 * n_readings
        return ops


def solve_distribution(ctx: QueryContext, positions: np.ndarray, values: np.ndarray) -> np.ndarray:
    """The DISTRIBUTION complex function: PDE-solved temperature field.

    Sensor readings become Dirichlet anchors at their nearest grid
    points; the domain boundary takes IDW-interpolated values so the
    field honours the data everywhere.
    """
    area = ctx.deployment.area_m
    grid = RectGrid(ctx.grid_resolution, ctx.grid_resolution, area, area)
    solver = HeatSolver(grid)
    interpolated = readings_to_grid(grid, positions, values)
    fixed = grid.boundary_mask()
    bvals = interpolated.copy()
    for pos, val in zip(positions, values):
        i, j = grid.nearest_index(pos)
        fixed[i, j] = True
        bvals[i, j] = val
    return solver.solve_steady(bvals, fixed_mask=fixed)


def solve_distribution3d(
    ctx: QueryContext,
    positions: np.ndarray,
    values: np.ndarray,
    mount_fraction: float = 0.5,
) -> np.ndarray:
    """The paper's literal query: a 3-D steady solve over the building.

    The 2-D sensor layout is extruded into a box of height
    ``0.25 * area``; sensors anchor the field at their mount height
    (``mount_fraction`` of the way up); the box faces take the sensors'
    IDW-interpolated values extruded vertically.  The horizontal
    resolution follows ``ctx.grid_resolution``; the vertical axis uses a
    quarter of it (buildings are flatter than they are wide).
    """
    from repro.pde.grid3d import BoxGrid
    from repro.pde.heat3d import HeatSolver3D
    from repro.pde.interpolate import idw_interpolate

    area = ctx.deployment.area_m
    height = 0.25 * area
    res = ctx.grid_resolution
    nz = max(res // 4, 4)
    grid = BoxGrid(res, res, nz, area, area, height)

    pts = grid.points()
    horiz = idw_interpolate(positions, values, pts[:, :2]).reshape(grid.shape)
    fixed = grid.boundary_mask()
    bvals = horiz.copy()
    mount_k = min(int(round(mount_fraction * (nz - 1))), nz - 1)
    for pos, val in zip(positions, values):
        i, j, _ = grid.nearest_index(np.array([pos[0], pos[1], 0.0]))
        fixed[i, j, mount_k] = True
        bvals[i, j, mount_k] = val
    return HeatSolver3D(grid).solve_steady(bvals, fixed_mask=fixed)
