"""The handheld plan: compute on the fire fighter's device.

"The data is delivered to the base station/PDA, which perform the
computation."  Attractive when disconnected from the grid and the
computation is light; hopeless for the PDE (a handheld is ~5 orders of
magnitude slower than the grid).
"""

from __future__ import annotations

import typing

from repro.queries.ast import Query
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    READING_BITS,
    RESULT_BITS,
)


class HandheldModel(ExecutionModel):
    """Raw collection to the base, forward to the handheld, compute there."""

    name = "handheld"
    contention_coeff = 0.8

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """All queries -- but the estimate exposes the compute penalty."""
        return ctx.deployment.n_handhelds > 0

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        flood = self._flood_cost(query, ctx)
        collect = collection.raw_collection(ctx.deployment, targets, READING_BITS)
        n = max(len(collect.participating) - 1, 0)
        # forward all readings base -> handheld (one wireless hop)
        forward_s = ctx.deployment.radio.hop_time(collect.bits_total) if n else 0.0
        ops = self.compute_ops(query, ctx, n)
        compute_s = ops / ctx.handheld_rate
        return flood, collect, ops, forward_s, compute_s

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets or not self.supports(query, ctx):
            return CostEstimate.INFEASIBLE
        flood, collect, ops, forward_s, compute_s = self._pieces(query, ctx, targets)
        if len(collect.participating) <= 1:
            return CostEstimate.INFEASIBLE
        return CostEstimate(
            energy_j=flood.energy_j + collect.energy_j,  # handheld is rechargeable
            time_s=flood.latency_s + collect.latency_s + forward_s + compute_s,
            data_bits=collect.bits_total * 2 + QUERY_BITS,
            ops=ops,
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        est = self.estimate(query, ctx, targets)
        if not est.feasible:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "no handheld or targets"))
            return
        flood, collect, ops, forward_s, compute_s = self._pieces(query, ctx, targets)
        time_factor, energy_factor = self._actual_factors(
            ctx, collect.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, targets),
        )
        self._charge(ctx, flood.per_node_energy + collect.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)
        readings = self.filter_readings(
            query, self._sample_targets(ctx, [t for t in targets if t in collect.participating])
        )
        total_s = (flood.latency_s + collect.latency_s + forward_s) * time_factor + compute_s
        actual_energy = (flood.energy_j + collect.energy_j) * energy_factor
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings), collect.messages + flood.messages,
            len(collect.participating), total_s - compute_s, bits=collect.bits_total)

        def finish() -> None:
            close_collect(bool(readings))
            if not readings:
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, est.data_bits, 0, "no readings"))
                return
            value = self.compute_answer(query, ctx, readings)
            on_complete(ModelOutcome(True, value, self.name, total_s,
                                     actual_energy, est.data_bits, len(readings)))

        ctx.sim.schedule(total_s, finish, label=f"exec:{self.name}")
