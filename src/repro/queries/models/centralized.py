"""The centralized plan: raw readings to the base station, compute there.

"In a simple model, all sensors would send their data to the base
station.  The base station would then perform the computation over the
data." -- the paper's baseline ("sensors ... treated as dumb data
sources"), whose energy cost motivates everything else.
"""

from __future__ import annotations

import typing

from repro.queries.ast import Query
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    READING_BITS,
    RESULT_BITS,
)


class CentralizedModel(ExecutionModel):
    """Raw convergecast to the base station; computation at the base.

    Supports every query (the base sees all raw readings), but pays the
    full data-transfer energy and serializes the root's inlink -- high
    contention by construction.
    """

    name = "centralized"
    contention_coeff = 0.8

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """All queries are computable from raw readings at the base."""
        return True

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        flood = self._flood_cost(query, ctx)
        collect = collection.raw_collection(ctx.deployment, targets, READING_BITS)
        n = len(collect.participating) - 1  # minus the root
        ops = self.compute_ops(query, ctx, n)
        compute_s = ops / ctx.base_rate
        result_s = ctx.deployment.radio.hop_time(RESULT_BITS)
        return flood, collect, ops, compute_s, result_s

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets:
            return CostEstimate.INFEASIBLE
        flood, collect, ops, compute_s, result_s = self._pieces(query, ctx, targets)
        if len(collect.participating) <= 1:
            return CostEstimate.INFEASIBLE
        return CostEstimate(
            energy_j=flood.energy_j + collect.energy_j,
            time_s=flood.latency_s + collect.latency_s + compute_s + result_s,
            data_bits=collect.bits_total + QUERY_BITS,
            ops=ops,
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        est = self.estimate(query, ctx, targets)
        if not est.feasible:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "no reachable targets"))
            return
        flood, collect, ops, compute_s, result_s = self._pieces(query, ctx, targets)
        time_factor, energy_factor = self._actual_factors(
            ctx, collect.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, targets),
        )
        self._charge(ctx, flood.per_node_energy + collect.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)
        readings = self._sample_targets(
            ctx, [t for t in targets if t in collect.participating]
        )
        readings = self.filter_readings(query, readings)
        network_s = (flood.latency_s + collect.latency_s) * time_factor
        total_s = network_s + compute_s + result_s
        actual_energy = (flood.energy_j + collect.energy_j) * energy_factor
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings), collect.messages + flood.messages,
            len(collect.participating), network_s, bits=collect.bits_total)

        def finish() -> None:
            close_collect(bool(readings))
            if not readings:
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, est.data_bits, 0, "no readings"))
                return
            value = self.compute_answer(query, ctx, readings)
            on_complete(ModelOutcome(True, value, self.name, total_s,
                                     actual_energy, est.data_bits, len(readings)))

        ctx.sim.schedule(total_s, finish, label=f"exec:{self.name}")
