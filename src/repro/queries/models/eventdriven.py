"""Message-level (event-driven) convergecast, for cost-model validation.

The execution models cost collections *analytically* (exact for lossless
radios) and run at per-epoch granularity -- fast enough for thousand-epoch
lifetime sweeps.  This module provides the high-fidelity alternative: a
TAG convergecast where every partial-state record is an actual
:class:`~repro.network.message.Message` through the
:class:`~repro.network.network.WirelessNetwork`, with real per-hop
delays, loss draws and battery charges.

Its purpose is *validation*: ``tests/queries/test_event_driven_validation.py``
asserts that the analytic :func:`~repro.queries.models.collection.aggregated_collection`
and :func:`~repro.queries.models.collection.raw_collection` agree with
this implementation exactly (energy) / exactly (latency, aggregated) on
lossless radios -- the evidence that the fast path used by every
experiment is faithful.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.network.message import Message
from repro.network.routing.tree import AggregationTree
from repro.queries.models.collection import induced_nodes
from repro.sensors.deployment import SensorDeployment


@dataclasses.dataclass
class CollectionReport:
    """Outcome of one event-driven convergecast round.

    Attributes
    ----------
    completed:
        True when the root heard from every expected child.
    latency_s:
        Time from start until the root's last reception.
    energy_j:
        Total battery energy drawn during the round (radio only).
    messages:
        Point-to-point transmissions attempted.
    delivered:
        Transmissions that arrived.
    """

    completed: bool
    latency_s: float
    energy_j: float
    messages: int
    delivered: int


class EventDrivenTreeCollection:
    """One TAG round as real messages.

    Each induced non-root node sends exactly one ``bits`` partial to its
    tree parent, but only after every one of its induced children's
    partials arrived (leaves send immediately) -- TAG's level-by-level
    epoch schedule, emergent rather than scheduled.
    """

    def __init__(self, deployment: SensorDeployment) -> None:
        self.deployment = deployment

    def run(
        self,
        targets: list[int],
        bits: float,
        on_complete: typing.Callable[[CollectionReport], None],
        aggregated: bool = True,
    ) -> None:
        """Start the round; ``on_complete`` fires when the root is done.

        ``aggregated=False`` runs the raw variant: nodes forward every
        reading in their subtree as separate messages instead of one
        merged partial.
        """
        dep = self.deployment
        sim = dep.sim
        tree = AggregationTree(dep.topology, dep.base_station_id)
        nodes = induced_nodes(tree, targets)
        target_set = {t for t in targets if t in tree.parent}
        root = tree.root

        start_time = sim.now
        energy_before = sum(n.battery.consumed for n in dep.network.nodes)
        stats = {"messages": 0, "delivered": 0, "last_rx": sim.now}

        # how many payload units each node originates / expects
        children = {n: [c for c in tree.children.get(n, []) if c in nodes] for n in nodes}
        own = {n: (1 if n in target_set else 0) for n in nodes}
        received_units: dict[int, int] = {n: 0 for n in nodes}
        expected_units = {
            n: own[n] + sum(self._subtree_units(c, children, own) for c in children[n])
            for n in nodes
        }
        root_expected = sum(
            self._subtree_units(c, children, own) for c in children.get(root, [])
        )
        done = {"fired": False}

        def finish_if_root_done() -> None:
            if done["fired"]:
                return
            if received_units.get(root, 0) >= root_expected:
                done["fired"] = True
                energy_after = sum(n.battery.consumed for n in dep.network.nodes)
                on_complete(CollectionReport(
                    completed=True,
                    latency_s=stats["last_rx"] - start_time,
                    energy_j=energy_after - energy_before,
                    messages=stats["messages"],
                    delivered=stats["delivered"],
                ))

        def send_up(node: int, units: int) -> None:
            parent = tree.parent[node]
            n_msgs = 1 if aggregated else units
            payload_units = units
            for i in range(n_msgs):
                msg = Message(src=node, dst=parent, size_bits=bits, kind="partial",
                              payload=payload_units if aggregated else 1)
                stats["messages"] += 1

                def on_receipt(receipt, parent=parent, units_in=(payload_units if aggregated else 1)):
                    if not receipt.delivered:
                        return
                    stats["delivered"] += 1
                    stats["last_rx"] = max(stats["last_rx"], receipt.time)
                    received_units[parent] = received_units.get(parent, 0) + units_in
                    if parent == root:
                        finish_if_root_done()
                        return
                    pending_done = received_units[parent] >= expected_units[parent] - own[parent]
                    if pending_done and parent not in started:
                        started.add(parent)
                        send_up(parent, expected_units[parent])

                dep.network.send(msg, on_receipt)

        started: set[int] = set()
        if root_expected == 0:
            sim.schedule(0.0, finish_if_root_done)
            # root with nothing to hear: complete immediately
            received_units[root] = 0
            done_now = CollectionReport(True, 0.0, 0.0, 0, 0)
            done["fired"] = True
            on_complete(done_now)
            return
        # leaves (no induced children) start immediately
        for node in sorted(nodes):
            if node != root and not children[node]:
                started.add(node)
                send_up(node, expected_units[node])

    @staticmethod
    def _subtree_units(node: int, children: dict[int, list[int]], own: dict[int, int]) -> int:
        total = own[node]
        for c in children[node]:
            total += EventDrivenTreeCollection._subtree_units(c, children, own)
        return total


@dataclasses.dataclass
class SnoopingReport:
    """Outcome of one snooping-MAX round.

    Attributes
    ----------
    value:
        The MAX the root computed.
    messages / suppressed:
        Broadcasts sent vs suppressed by overhearing.
    energy_j:
        Total battery energy drawn.
    latency_s:
        Slotted-schedule duration.
    """

    value: float
    messages: int
    suppressed: int
    energy_j: float
    latency_s: float


class SnoopingMaxCollection:
    """TAG's channel-sharing optimization, for MAX queries.

    "They also suggest further optimizations like channel sharing which
    result in further saving of sensor energy." (§4, citing TAG)

    Partials are radio *broadcasts* on a slotted level schedule (deepest
    level first).  Because MAX is monotone, a node that overhears any
    partial >= its own subtree maximum knows its value cannot affect the
    answer and suppresses its transmission entirely -- the neighbours'
    shared channel does the aggregation for free.  ``snoop=False`` runs
    the identical broadcast schedule without suppression, isolating the
    optimization's effect.
    """

    def __init__(self, deployment: SensorDeployment) -> None:
        self.deployment = deployment

    def run(
        self,
        values: dict[int, float],
        bits: float,
        on_complete: typing.Callable[[SnoopingReport], None],
        snoop: bool = True,
        slot_factor: float = 1.5,
    ) -> None:
        """Collect ``max(values.values())`` to the base station.

        ``values`` maps target sensor ids to their readings (already
        sampled; sampling cost is the caller's).
        """
        dep = self.deployment
        sim = dep.sim
        tree = AggregationTree(dep.topology, dep.base_station_id)
        targets = [t for t in values if t in tree.parent]
        nodes = induced_nodes(tree, targets)
        root = tree.root
        if not targets:
            on_complete(SnoopingReport(float("-inf"), 0, 0, 0.0, 0.0))
            return

        slot_s = dep.radio.hop_time(bits) * slot_factor
        max_depth = max(tree.depth_of[n] for n in nodes)
        energy_before = sum(n.battery.consumed for n in dep.network.nodes)

        # mutable per-node state
        best = {n: values.get(n, float("-inf")) for n in nodes}
        overheard = {n: float("-inf") for n in nodes}
        stats = {"messages": 0, "suppressed": 0}

        # wire receive hooks for every node involved (parents record into
        # best; everyone records into overheard)
        node_set = set(nodes)

        def make_receiver(me: int):
            def receive(message) -> None:
                payload = message.payload
                sender = message.src
                if tree.parent.get(sender) == me:
                    best[me] = max(best[me], payload)
                else:
                    overheard[me] = max(overheard[me], payload)

            return receive

        saved_hooks = {}
        for n in node_set | {root}:
            saved_hooks[n] = dep.network.nodes[n].receive
            dep.network.nodes[n].receive = make_receiver(n)

        def send_for(node: int) -> None:
            if node == root:
                return
            if snoop and overheard[node] >= best[node] and best[node] != float("-inf"):
                stats["suppressed"] += 1
                return
            if best[node] == float("-inf"):
                return  # pure relay with nothing heard: nothing to say
            from repro.network.message import Message as _Message

            stats["messages"] += 1
            dep.network.broadcast_local(
                node, _Message(src=node, dst=None, size_bits=bits,
                               kind="snoop-partial", payload=best[node])
            )

        # slotted schedule: depth max_depth fires in slot 0, ... depth 1 in
        # slot max_depth-1; small per-node jitter inside the slot orders
        # siblings deterministically so suppression can actually trigger
        for node in sorted(nodes):
            if node == root:
                continue
            d = tree.depth_of[node]
            slot_index = max_depth - d
            jitter = (node % 16) * (slot_s / 32.0)
            sim.schedule(slot_index * slot_s + jitter, lambda n=node: send_for(n),
                         label=f"snoop-slot:{node}")

        def finish() -> None:
            for n, hook in saved_hooks.items():
                dep.network.nodes[n].receive = hook
            energy_after = sum(nd.battery.consumed for nd in dep.network.nodes)
            on_complete(SnoopingReport(
                value=best[root],
                messages=stats["messages"],
                suppressed=stats["suppressed"],
                energy_j=energy_after - energy_before,
                latency_s=(max_depth + 1) * slot_s,
            ))

        sim.schedule((max_depth + 1) * slot_s, finish, label="snoop-finish")
