"""The grid plan: ship the data out, compute on the wired grid.

"Most importantly, the grid can be used to perform the computation.  The
data would be transferred to the grid through the base station.  The
computation would be done in the grid and results would be returned to
the base station."  The only plan that makes complex (PDE) queries
interactive -- and the most data-hungry one.
"""

from __future__ import annotations

import typing

from repro.grid.job import ComputeJob
from repro.queries.ast import Query
from repro.queries.functions import COMPLEX_FUNCTIONS
from repro.queries.models import collection
from repro.queries.models.base import (
    CostEstimate,
    ExecutionModel,
    ModelOutcome,
    QueryContext,
    QUERY_BITS,
    READING_BITS,
    RESULT_BITS,
)


class GridOffloadModel(ExecutionModel):
    """Raw collection to the base, uplink to the grid, compute, download."""

    name = "grid"
    contention_coeff = 0.8  # same raw convergecast as the centralized plan

    def supports(self, query: Query, ctx: QueryContext) -> bool:
        """Everything -- while the uplink is up (disconnected operation
        is exactly when the Decision Maker must keep computation local)."""
        return ctx.grid.online

    def _result_bits(self, query: Query, ctx: QueryContext) -> float:
        bits = 0.0
        for item in query.select:
            if item.func and item.func in COMPLEX_FUNCTIONS:
                per_point = COMPLEX_FUNCTIONS[item.func]["output_bits_per_point"]
                if item.func == "DISTRIBUTION":
                    n_points = ctx.grid_resolution**2
                elif item.func == "DISTRIBUTION3D":
                    n_points = ctx.grid_resolution**2 * max(ctx.grid_resolution // 4, 4)
                else:
                    n_points = 10
                bits += per_point * n_points
            else:
                bits += RESULT_BITS
        return bits

    def _pieces(self, query: Query, ctx: QueryContext, targets: list[int]):
        flood = self._flood_cost(query, ctx)
        collect = collection.raw_collection(ctx.deployment, targets, READING_BITS)
        n = max(len(collect.participating) - 1, 0)
        ops = self.compute_ops(query, ctx, n)
        result_bits = self._result_bits(query, ctx)
        job = ComputeJob(ops=ops, input_bits=collect.bits_total, output_bits=result_bits)
        offload_s = ctx.grid.estimate_offload_time(job)
        result_s = ctx.deployment.radio.hop_time(RESULT_BITS)
        return flood, collect, ops, job, offload_s, result_s

    def estimate(self, query: Query, ctx: QueryContext, targets: list[int]) -> CostEstimate:
        if not targets:
            return CostEstimate.INFEASIBLE
        flood, collect, ops, job, offload_s, result_s = self._pieces(query, ctx, targets)
        if len(collect.participating) <= 1:
            return CostEstimate.INFEASIBLE
        return CostEstimate(
            energy_j=flood.energy_j + collect.energy_j,  # uplink is mains-powered
            time_s=flood.latency_s + collect.latency_s + offload_s + result_s,
            data_bits=collect.bits_total + QUERY_BITS + job.input_bits + job.output_bits,
            ops=ops,
        )

    def execute(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        on_complete: typing.Callable[[ModelOutcome], None],
    ) -> None:
        est = self.estimate(query, ctx, targets)
        if not est.feasible:
            on_complete(ModelOutcome(False, None, self.name, 0.0, 0.0, 0.0, 0, "no reachable targets"))
            return
        flood, collect, ops, job, offload_s, result_s = self._pieces(query, ctx, targets)
        time_factor, energy_factor = self._actual_factors(
            ctx, collect.messages + flood.messages,
            collection.mean_target_depth(ctx.deployment, targets),
        )
        self._charge(ctx, flood.per_node_energy + collect.per_node_energy, energy_factor)
        ctx.mark_disseminated(query)
        readings = self.filter_readings(
            query, self._sample_targets(ctx, [t for t in targets if t in collect.participating])
        )
        wireless_s = (flood.latency_s + collect.latency_s) * time_factor
        actual_energy = (flood.energy_j + collect.energy_j) * energy_factor
        close_collect = self._trace_collect(
            ctx, len(targets), len(readings), collect.messages + flood.messages,
            len(collect.participating), wireless_s, bits=collect.bits_total)

        if not readings:
            def fail_no_readings() -> None:
                close_collect(False)
                on_complete(ModelOutcome(False, None, self.name, wireless_s,
                                         actual_energy, est.data_bits, 0, "no readings"))

            ctx.sim.schedule(wireless_s, fail_no_readings, label=f"exec:{self.name}")
            return

        def start_offload() -> None:
            close_collect()
            job.compute = lambda: self.compute_answer(query, ctx, readings)
            started_at = ctx.sim.now

            def grid_done(result) -> None:
                total_s = wireless_s + (ctx.sim.now - started_at) + result_s
                on_complete(ModelOutcome(True, result.value, self.name, total_s,
                                         actual_energy, est.data_bits, len(readings)))

            def grid_failed(reason: str) -> None:
                # the uplink dropped (or the job died) after the decision
                # was made -- fail cleanly with a counted reason rather
                # than leaking an exception out of the event loop
                ctx.deployment.monitor.counter(f"queries.failed.{reason}").add(1)
                total_s = wireless_s + (ctx.sim.now - started_at)
                on_complete(ModelOutcome(False, None, self.name, total_s,
                                         actual_energy, est.data_bits, len(readings), reason))

            ctx.grid.offload(job, grid_done, on_failure=grid_failed)

        ctx.sim.schedule(wireless_s, start_offload, label=f"exec:{self.name}")
