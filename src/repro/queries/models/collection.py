"""Convergecast costing over the subtree induced by a target set.

All base-station-rooted plans collect from the *targeted* sensors only;
non-target nodes on the paths still relay.  These helpers compute exact
lossless costs over the induced subtree (targets plus their tree paths to
the base station).
"""

from __future__ import annotations

import numpy as np

from repro.network.routing.base import CollectionCost, DisseminationResult
from repro.network.routing.flooding import Flooding
from repro.network.routing.tree import AggregationTree
from repro.sensors.deployment import SensorDeployment


def build_tree(deployment: SensorDeployment) -> AggregationTree:
    """The current min-hop aggregation tree rooted at the base station."""
    return AggregationTree(deployment.topology, deployment.base_station_id)


def induced_nodes(tree: AggregationTree, targets: list[int]) -> set[int]:
    """Targets reachable in ``tree`` plus every node on their root paths."""
    nodes: set[int] = set()
    for t in targets:
        if t in tree.parent:
            nodes.update(tree.path_to_root(t))
    return nodes


def flood_cost(deployment: SensorDeployment, bits: float) -> DisseminationResult:
    """Cost of flooding the query from the base station."""
    return Flooding(
        deployment.topology, deployment.radio, deployment.energy_model
    ).disseminate(deployment.base_station_id, bits)


def aggregated_collection(
    deployment: SensorDeployment,
    targets: list[int],
    bits_partial: float,
    ops_per_merge: float = 10.0,
) -> CollectionCost:
    """TAG convergecast over the induced subtree: one partial per node."""
    tree = build_tree(deployment)
    nodes = induced_nodes(tree, targets)
    topo = deployment.topology
    em = deployment.energy_model
    per_node = np.zeros(topo.n_nodes)
    messages = 0
    bits_total = 0.0
    max_depth = 0
    for node in nodes:
        if node == tree.root:
            continue
        par = tree.parent[node]
        per_node[node] += em.tx_cost(bits_partial, topo.distance(node, par))
        per_node[par] += em.rx_cost(bits_partial) + em.cpu_cost(ops_per_merge)
        messages += 1
        bits_total += bits_partial
        max_depth = max(max_depth, tree.depth_of[node])
    latency = max_depth * deployment.radio.hop_time(bits_partial)
    reached = {t for t in targets if t in tree.parent}
    return CollectionCost(per_node, latency, messages, bits_total, reached | {tree.root})


def raw_collection(
    deployment: SensorDeployment,
    targets: list[int],
    bits_reading: float,
) -> CollectionCost:
    """Unaggregated convergecast: every target's reading forwarded whole."""
    tree = build_tree(deployment)
    nodes = induced_nodes(tree, targets)
    target_set = {t for t in targets if t in tree.parent}
    topo = deployment.topology
    em = deployment.energy_model

    # readings carried by each induced node = targets in its induced subtree
    carry = {n: (1 if n in target_set else 0) for n in nodes}
    for node in sorted(nodes, key=lambda n: -tree.depth_of[n]):
        if node != tree.root:
            par = tree.parent[node]
            carry[par] = carry.get(par, 0) + carry[node]

    per_node = np.zeros(topo.n_nodes)
    messages = 0
    bits_total = 0.0
    max_depth = 0
    for node in nodes:
        if node == tree.root:
            continue
        count = carry[node]
        if count == 0:
            continue
        par = tree.parent[node]
        per_node[node] += count * em.tx_cost(bits_reading, topo.distance(node, par))
        per_node[par] += count * em.rx_cost(bits_reading)
        messages += count
        bits_total += count * bits_reading
        max_depth = max(max_depth, tree.depth_of[node])
    hop = deployment.radio.hop_time(bits_reading)
    n_readings = len(target_set)
    latency = (max(n_readings - 1, 0) + max(max_depth, 1 if n_readings else 0)) * hop
    return CollectionCost(per_node, latency, messages, bits_total, target_set | {tree.root})


def mean_target_depth(deployment: SensorDeployment, targets: list[int]) -> float:
    """Average hop depth of reachable targets (for retransmission models)."""
    tree = build_tree(deployment)
    depths = [tree.depth_of[t] for t in targets if t in tree.parent]
    return float(np.mean(depths)) if depths else 0.0
