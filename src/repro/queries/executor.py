"""The Query Processor: parse → classify → decide → execute → learn.

"Query processor analyzes the query and categorizes it into one of the
types mentioned above.  Decision maker would decide the solution model to
use ... The simulator simulates the solution model for the query and
returns the results."

Continuous queries re-run every EPOCH; the decision is re-taken each
epoch against the *current* network state (nodes die, topology changes),
and every epoch's measured outcome is fed back to the Decision Maker --
the adaptivity loop the paper calls for.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.observability.profiling import NOOP_PROFILER
from repro.observability.tracer import NOOP_SPAN, STATUS_ERROR, STATUS_OK
from repro.queries.ast import Query
from repro.queries.classifier import QueryClass, classify
from repro.queries.functions import compute_aggregate, is_aggregate
from repro.queries.language import parse_query
from repro.queries.models.base import (
    ModelOutcome,
    QueryContext,
    solve_distribution,
    solve_distribution3d,
)
from repro.queries.targets import select_targets


@dataclasses.dataclass
class QueryOutcome:
    """One evaluated query (or one epoch of a continuous query).

    Attributes
    ----------
    success:
        Whether an answer was produced.
    value:
        The answer (scalar, array, or field).
    model:
        The execution model used (empty when none was feasible).
    query_class:
        The paper's four-way class.
    time_s / energy_j / data_bits:
        Measured actuals.
    rel_error:
        Relative error vs noise-free ground truth (nan when no ground
        truth applies).
    epoch_index:
        0 for one-shot queries; the epoch number otherwise.
    """

    success: bool
    value: typing.Any
    model: str
    query_class: QueryClass
    time_s: float
    energy_j: float
    data_bits: float
    readings_used: int
    rel_error: float
    epoch_index: int = 0
    error: str = ""


class QueryExecutor:
    """Runs queries end to end against one deployment/grid/decision-maker.

    Parameters
    ----------
    ctx:
        The query context (deployment + grid + rates).
    decision_maker:
        Any object with ``decide(query, ctx, targets)`` returning an
        object carrying ``model``/``estimate``, and
        ``feedback(query, ctx, targets, decision, energy, time)``
        (duck-typed so :mod:`repro.core` stays an optional layer above).
    max_epochs:
        Safety cap on continuous-query epochs when no duration is given.
    """

    def __init__(self, ctx: QueryContext, decision_maker, max_epochs: int = 50) -> None:
        self.ctx = ctx
        self.decision_maker = decision_maker
        self.max_epochs = max_epochs
        self.submitted = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query | str,
        on_complete: typing.Callable[[list[QueryOutcome]], None],
        on_epoch: typing.Callable[[QueryOutcome], None] | None = None,
    ) -> Query:
        """Run ``query``; callback with the list of outcomes (1 per epoch).

        One-shot queries produce exactly one outcome.  Continuous queries
        produce one per epoch until ``duration_s`` (or ``max_epochs``)
        elapses or no sensor remains reachable.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.submitted += 1
        outcomes: list[QueryOutcome] = []
        tracer = self.ctx.tracer
        span = NOOP_SPAN
        if tracer.enabled:
            # sampling_key: the stable per-query identity head sampling
            # hashes on (same submission order -> same retained set)
            span = tracer.span("query.run", text=query.raw,
                               continuous=query.is_continuous,
                               sampling_key=f"query:{self.submitted}")

        if not query.is_continuous:
            def finish(o: QueryOutcome) -> None:
                outcomes.append(o)
                if tracer.enabled:
                    # measured actuals, stamped so the QueryCostLedger
                    # reads authoritative per-query numbers off the span
                    span.set(model=o.model, success=o.success,
                             energy_j=o.energy_j, time_s=o.time_s,
                             data_bits=o.data_bits)
                span.end(STATUS_OK if o.success else STATUS_ERROR)
                on_complete(outcomes)

            with tracer.use(span):
                self._run_once(query, 0, finish)
            return query

        epoch_s = float(query.epoch_s or 1.0)
        if query.duration_s is not None:
            # the epsilon absorbs float truncation for non-representable
            # epoch lengths: 10.0 / 0.1 is 99.999... and int() would
            # silently drop the last epoch
            n_epochs = max(int(query.duration_s / epoch_s + 1e-9), 1)
        else:
            n_epochs = self.max_epochs
        window: list[tuple[float, typing.Any]] = []  # (epoch time, raw value)

        def run_epoch(i: int) -> None:
            epoch_span = NOOP_SPAN
            if tracer.enabled:
                epoch_span = tracer.span_under(span, "query.epoch", index=i)

            def done(outcome: QueryOutcome) -> None:
                if query.window_s is not None and outcome.success:
                    outcome = self._apply_window(query, outcome, window)
                if on_epoch is not None:
                    on_epoch(outcome)
                outcomes.append(outcome)
                if tracer.enabled:
                    epoch_span.set(model=outcome.model, success=outcome.success,
                                   energy_j=outcome.energy_j,
                                   time_s=outcome.time_s,
                                   data_bits=outcome.data_bits)
                epoch_span.end(STATUS_OK if outcome.success else STATUS_ERROR)
                if i + 1 >= n_epochs or not self.ctx.deployment.alive_sensor_ids():
                    if tracer.enabled:
                        span.set(epochs=len(outcomes),
                                 failed_epochs=sum(1 for o in outcomes
                                                   if not o.success))
                    # the root status mirrors the *final* epoch, so the
                    # QueryCostLedger books a continuous query that ended
                    # in failure as a failure
                    span.end(STATUS_OK if outcomes[-1].success else STATUS_ERROR)
                    on_complete(outcomes)
                else:
                    # next epoch starts one EPOCH after this one *started*
                    delay = max(epoch_start + epoch_s - self.ctx.sim.now, 0.0)
                    self.ctx.sim.schedule(delay, lambda: run_epoch(i + 1), label="epoch")

            epoch_start = self.ctx.sim.now
            with tracer.use(epoch_span):
                self._run_once(query, i, done)

        with tracer.use(span):
            run_epoch(0)
        return query

    # ------------------------------------------------------------------
    def _run_once(
        self,
        query: Query,
        epoch_index: int,
        on_complete: typing.Callable[[QueryOutcome], None],
    ) -> None:
        qclass = classify(query)
        tracer = self.ctx.tracer
        profiler = self.ctx.sim.profiler or NOOP_PROFILER
        monitor = self.ctx.deployment.monitor
        monitor.counter("queries.epochs").add()
        targets = select_targets(self.ctx.deployment, query, self.ctx.rooms_per_side)
        if not targets:
            self._count_failure("no-targets")
            on_complete(QueryOutcome(False, None, "", qclass, 0.0, 0.0, 0.0, 0,
                                     float("nan"), epoch_index, "no targets"))
            return
        with profiler.frame("queries.decide", "queries"):
            decision = self.decision_maker.decide(query, self.ctx, targets)
        if decision is None:
            self._count_failure("no-feasible-model")
            on_complete(QueryOutcome(False, None, "", qclass, 0.0, 0.0, 0.0, 0,
                                     float("nan"), epoch_index, "no feasible model"))
            return
        if tracer.enabled:
            tracer.event("query.decision", model=decision.model.name,
                         query_class=qclass.name, targets=len(targets),
                         est_time_s=decision.estimate.time_s,
                         est_energy_j=decision.estimate.energy_j)
        with profiler.frame("queries.ground_truth", "queries"):
            truth = self._ground_truth(query, targets)
        exec_span = NOOP_SPAN
        if tracer.enabled:
            exec_span = tracer.span("query.execute", model=decision.model.name)

        def model_done(m: ModelOutcome) -> None:
            exec_span.end(STATUS_OK if m.success else STATUS_ERROR)
            rel = self._relative_error(m.value, truth) if m.success else float("nan")
            if m.success:
                monitor.histogram("queries.latency").observe(m.time_s)
            else:
                self._count_failure("execution")
            self.decision_maker.feedback(
                query, self.ctx, targets, decision, m.energy_j, m.time_s
            )
            on_complete(QueryOutcome(
                success=m.success,
                value=m.value,
                model=m.model,
                query_class=qclass,
                time_s=m.time_s,
                energy_j=m.energy_j,
                data_bits=m.data_bits,
                readings_used=m.readings_used,
                rel_error=rel,
                epoch_index=epoch_index,
                error=m.error,
            ))

        with tracer.use(exec_span):
            decision.model.execute(query, self.ctx, targets, model_done)

    # ------------------------------------------------------------------
    def _apply_window(
        self,
        query: Query,
        outcome: QueryOutcome,
        window: list[tuple[float, typing.Any]],
    ) -> QueryOutcome:
        """Re-aggregate the trailing window's epoch values (Windowed class).

        The window is quantized to whole epochs (``round(window/epoch)``
        most recent values), which keeps its contents deterministic under
        execution-latency jitter.  Scalar single-function queries
        re-aggregate with the matching combiner: MAX→max, MIN→min,
        SUM/COUNT→sum over the window, everything else (AVG, STD, MEDIAN,
        bare attributes) smooths by the mean of epoch values.  Non-scalar
        values pass through.
        """
        if not isinstance(outcome.value, (int, float)):
            return outcome
        window.append((self.ctx.sim.now, float(outcome.value)))
        n_keep = max(int(round(float(query.window_s) / float(query.epoch_s))), 1)
        del window[:-n_keep]
        values = np.array([v for _, v in window])

        func = query.select[0].func if len(query.select) == 1 else None
        if func in ("MAX",):
            windowed = float(values.max())
        elif func in ("MIN",):
            windowed = float(values.min())
        elif func in ("SUM", "COUNT"):
            windowed = float(values.sum())
        else:
            windowed = float(values.mean())
        return dataclasses.replace(outcome, value=windowed,
                                   rel_error=float("nan"))

    # ------------------------------------------------------------------
    def _count_failure(self, reason: str) -> None:
        self.ctx.deployment.monitor.counter(f"queries.failed.{reason}").add(1)

    def _ground_truth(self, query: Query, targets: list[int]) -> typing.Any:
        """Noise-free answer computed from the true field (free of charge)."""
        dep = self.ctx.deployment
        true_vals = dep.true_values()
        values = np.array([true_vals[t] for t in targets])
        positions = np.array([dep.topology.position_of(t) for t in targets])
        if len(query.select) != 1:
            return None
        item = query.select[0]
        if item.func is None:
            return float(values[0]) if len(values) == 1 else values
        if is_aggregate(item.func):
            return compute_aggregate(item.func, values)
        if item.func == "DISTRIBUTION":
            return solve_distribution(self.ctx, positions, values)
        if item.func == "DISTRIBUTION3D":
            return solve_distribution3d(self.ctx, positions, values)
        return None

    @staticmethod
    def _relative_error(value: typing.Any, truth: typing.Any) -> float:
        """Relative error of scalar or field answers (nan if undefined)."""
        if truth is None or value is None:
            return float("nan")
        try:
            v = np.asarray(value, dtype=float)
            t = np.asarray(truth, dtype=float)
        except (TypeError, ValueError):
            return float("nan")
        if v.shape != t.shape:
            return float("nan")
        denom = float(np.linalg.norm(t.ravel()))
        if denom < 1e-12:
            return float(np.linalg.norm(v.ravel() - t.ravel()))
        return float(np.linalg.norm(v.ravel() - t.ravel()) / denom)
