"""Query AST nodes."""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class SelectItem:
    """One SELECT entry: a bare attribute or ``func(attr)``.

    ``func`` is None for bare attributes; function names are stored
    upper-case.
    """

    attr: str
    func: str | None = None

    def __str__(self) -> str:
        return f"{self.func}({self.attr})" if self.func else self.attr


@dataclasses.dataclass(frozen=True)
class Predicate:
    """One WHERE predicate: ``attribute op literal``."""

    attribute: str
    op: str
    value: typing.Any

    _OPS: typing.ClassVar[dict[str, typing.Callable]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown predicate operator {self.op!r}")

    def holds(self, attributes: typing.Mapping[str, typing.Any]) -> bool:
        """Evaluate against an attribute map (missing attribute = False)."""
        if self.attribute not in attributes:
            return False
        try:
            return bool(self._OPS[self.op](attributes[self.attribute], self.value))
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclasses.dataclass(frozen=True)
class CostClause:
    """COST constraint: evaluate within ``limit`` of ``metric``.

    Metrics (from the paper): ``energy`` (joules), ``time`` (seconds),
    ``accuracy`` (maximum tolerated relative error, in [0, 1]).
    """

    metric: str
    limit: float

    METRICS: typing.ClassVar[tuple[str, ...]] = ("energy", "time", "accuracy")

    def __post_init__(self) -> None:
        if self.metric not in self.METRICS:
            raise ValueError(f"COST metric must be one of {self.METRICS}")
        if self.limit < 0:
            raise ValueError("COST limit must be non-negative")


@dataclasses.dataclass(frozen=True)
class Query:
    """A parsed sensor query.

    Attributes
    ----------
    select:
        The SELECT items.
    where:
        Conjunctive predicates (empty = all sensors).
    cost:
        Optional COST clause.
    epoch_s:
        Interval between results for continuous queries (None = one-shot).
    duration_s:
        Optional total lifetime of a continuous query.
    window_s:
        For continuous queries: each reported value re-aggregates the
        epochs of the trailing window (the paper's "Continuous/Windowed"
        class).  None = report each epoch independently.
    raw:
        Original query text (diagnostics).
    """

    select: tuple[SelectItem, ...]
    where: tuple[Predicate, ...] = ()
    cost: CostClause | None = None
    epoch_s: float | None = None
    duration_s: float | None = None
    window_s: float | None = None
    raw: str = ""

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("query must select something")
        if self.epoch_s is not None and self.epoch_s <= 0:
            raise ValueError("epoch must be positive")
        if self.window_s is not None:
            if self.epoch_s is None:
                raise ValueError("WINDOW requires an EPOCH clause")
            if self.window_s < self.epoch_s:
                raise ValueError("window must be at least one epoch long")

    @property
    def functions(self) -> tuple[str, ...]:
        """All function names appearing in SELECT (upper-case, deduped)."""
        seen = []
        for item in self.select:
            if item.func and item.func not in seen:
                seen.append(item.func)
        return tuple(seen)

    @property
    def is_continuous(self) -> bool:
        """True when an EPOCH clause is present."""
        return self.epoch_s is not None
