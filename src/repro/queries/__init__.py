"""Sensor-network query processing (paper §4).

The query format reproduced verbatim from the paper::

    SELECT {func(), attrs} FROM sensors
    WHERE { selPreds }
    COST { cost limitation }
    EPOCH DURATION i

"The query format is similar to the one used by Madden et al. in TAG.
However we allow for any arbitrary function to be specified in the SELECT
clause.  We have also introduced the COST clause to specify the cost
within which the function is to be evaluated.  Cost could be in terms of
sensor energy, response time or accuracy of the result."

* :mod:`~repro.queries.ast` -- query AST.
* :mod:`~repro.queries.language` -- tokenizer + recursive-descent parser.
* :mod:`~repro.queries.classifier` -- the paper's four query classes
  (Simple / Aggregate / Complex / Continuous).
* :mod:`~repro.queries.functions` -- decomposable (TAG-able) and holistic
  aggregates, plus complex functions (the PDE distribution).
* :mod:`~repro.queries.targets` -- WHERE-clause evaluation against a
  deployment (sensor ids, rooms, positions).
* :mod:`~repro.queries.models` -- the execution models the Decision
  Maker chooses among.
* :mod:`~repro.queries.executor` -- parse → classify → choose → execute,
  with epoch-driven continuous queries.
"""

from repro.queries.ast import CostClause, Predicate, Query, SelectItem
from repro.queries.language import parse_query, QuerySyntaxError
from repro.queries.classifier import QueryClass, classify, base_class
from repro.queries.functions import (
    AGGREGATES,
    DECOMPOSABLE,
    HOLISTIC,
    COMPLEX_FUNCTIONS,
    PartialAggregate,
    is_aggregate,
    is_complex,
)
from repro.queries.targets import room_of, select_targets
from repro.queries.executor import QueryExecutor, QueryOutcome

__all__ = [
    "CostClause",
    "Predicate",
    "Query",
    "SelectItem",
    "parse_query",
    "QuerySyntaxError",
    "QueryClass",
    "classify",
    "base_class",
    "AGGREGATES",
    "DECOMPOSABLE",
    "HOLISTIC",
    "COMPLEX_FUNCTIONS",
    "PartialAggregate",
    "is_aggregate",
    "is_complex",
    "room_of",
    "select_targets",
    "QueryExecutor",
    "QueryOutcome",
]
