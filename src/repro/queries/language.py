"""Tokenizer and recursive-descent parser for the §4 query language.

Grammar (case-insensitive keywords)::

    query    := SELECT items FROM "sensors"
                [ WHERE pred (AND pred)* ]
                [ COST metric cmp number ]
                [ EPOCH DURATION number [ FOR number ] [ WINDOW number ] ]
    items    := item ("," item)*           -- optional surrounding { }
    item     := IDENT "(" IDENT? ")" | IDENT
    pred     := IDENT op literal           -- optional surrounding { }
    op       := "=" | "!=" | "<" | "<=" | ">" | ">="
    literal  := number | quoted string | true | false | IDENT

``COST`` accepts ``COST energy <= 0.5`` and the bare form
``COST { energy 0.5 }`` (treated as <=, the paper's "cost limitation").
A bare function call like ``AVG()`` defaults its attribute to ``value``.
"""

from __future__ import annotations

import re
import typing

from repro.queries.ast import CostClause, Predicate, Query, SelectItem


class QuerySyntaxError(ValueError):
    """Raised for malformed query text, with position information."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[{}(),])
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.#-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QuerySyntaxError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, m.group()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # ------------------------------------------------------------------
    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of query: {self.text!r}")
        self.i += 1
        return tok

    def expect_keyword(self, word: str) -> None:
        kind, value = self.next()
        if kind != "ident" or value.upper() != word.upper():
            raise QuerySyntaxError(f"expected {word!r}, got {value!r}")

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "ident" and tok[1].upper() in {w.upper() for w in words}

    def eat_punct(self, ch: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[0] == "punct" and tok[1] == ch:
            self.i += 1
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("SELECT")
        select = self._select_items()
        self.expect_keyword("FROM")
        kind, value = self.next()
        if kind != "ident" or value.lower() != "sensors":
            raise QuerySyntaxError(f"only 'FROM sensors' is supported, got {value!r}")

        where: tuple[Predicate, ...] = ()
        cost: CostClause | None = None
        epoch: float | None = None
        duration: float | None = None
        window: float | None = None
        while self.peek() is not None:
            if self.at_keyword("WHERE"):
                self.next()
                where = self._predicates()
            elif self.at_keyword("COST"):
                self.next()
                cost = self._cost_clause()
            elif self.at_keyword("EPOCH"):
                self.next()
                self.expect_keyword("DURATION")
                epoch = self._number()
                if self.at_keyword("FOR"):
                    self.next()
                    duration = self._number()
                if self.at_keyword("WINDOW"):
                    self.next()
                    window = self._number()
            else:
                kind, value = self.next()
                raise QuerySyntaxError(f"unexpected token {value!r}")
        try:
            return Query(select=select, where=where, cost=cost, epoch_s=epoch,
                         duration_s=duration, window_s=window, raw=self.text)
        except ValueError as exc:
            raise QuerySyntaxError(str(exc)) from exc

    # ------------------------------------------------------------------
    def _select_items(self) -> tuple[SelectItem, ...]:
        braced = self.eat_punct("{")
        items = [self._select_item()]
        while self.eat_punct(","):
            items.append(self._select_item())
        if braced and not self.eat_punct("}"):
            raise QuerySyntaxError("expected '}' closing SELECT items")
        return tuple(items)

    def _select_item(self) -> SelectItem:
        kind, value = self.next()
        if kind != "ident":
            raise QuerySyntaxError(f"expected attribute or function, got {value!r}")
        if self.eat_punct("("):
            attr = "value"
            tok = self.peek()
            if tok is not None and tok[0] == "ident":
                attr = self.next()[1]
            if not self.eat_punct(")"):
                raise QuerySyntaxError(f"expected ')' after {value!r}(")
            return SelectItem(attr=attr, func=value.upper())
        return SelectItem(attr=value)

    def _predicates(self) -> tuple[Predicate, ...]:
        braced = self.eat_punct("{")
        preds = [self._predicate()]
        while self.at_keyword("AND"):
            self.next()
            preds.append(self._predicate())
        if braced and not self.eat_punct("}"):
            raise QuerySyntaxError("expected '}' closing WHERE clause")
        return tuple(preds)

    def _predicate(self) -> Predicate:
        kind, attr = self.next()
        if kind != "ident":
            raise QuerySyntaxError(f"expected attribute in predicate, got {attr!r}")
        kind, op = self.next()
        if kind != "op":
            raise QuerySyntaxError(f"expected comparison operator, got {op!r}")
        return Predicate(attribute=attr, op=op, value=self._literal())

    def _cost_clause(self) -> CostClause:
        braced = self.eat_punct("{")
        kind, metric = self.next()
        if kind != "ident":
            raise QuerySyntaxError(f"expected COST metric, got {metric!r}")
        tok = self.peek()
        if tok is not None and tok[0] == "op":
            op = self.next()[1]
            if op not in ("<=", "<", "="):
                raise QuerySyntaxError(f"COST supports upper bounds only, got {op!r}")
        limit = self._number()
        if braced and not self.eat_punct("}"):
            raise QuerySyntaxError("expected '}' closing COST clause")
        try:
            return CostClause(metric=metric.lower(), limit=limit)
        except ValueError as exc:
            raise QuerySyntaxError(str(exc)) from exc

    def _number(self) -> float:
        kind, value = self.next()
        if kind != "number":
            raise QuerySyntaxError(f"expected number, got {value!r}")
        return float(value)

    def _literal(self) -> typing.Any:
        kind, value = self.next()
        if kind == "number":
            f = float(value)
            return int(f) if f.is_integer() and "." not in value and "e" not in value.lower() else f
        if kind == "string":
            return value[1:-1]
        if kind == "ident":
            low = value.lower()
            if low == "true":
                return True
            if low == "false":
                return False
            return value
        raise QuerySyntaxError(f"expected literal, got {value!r}")


def parse_query(text: str) -> Query:
    """Parse query ``text`` into a :class:`~repro.queries.ast.Query`.

    Raises :class:`QuerySyntaxError` on malformed input.
    """
    parser = _Parser(text)
    try:
        return parser.parse()
    except ValueError as exc:
        if isinstance(exc, QuerySyntaxError):
            raise
        raise QuerySyntaxError(str(exc)) from exc
