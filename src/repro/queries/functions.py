"""Aggregate and complex functions.

TAG's taxonomy (which the paper builds on) distinguishes *decomposable*
aggregates -- those with a partial-state record that merges associatively,
so they can be computed inside the network -- from *holistic* ones
(MEDIAN), whose exact value needs every reading.  The execution models
respect this: the in-network tree model only accepts decomposable
functions.

Complex functions ("any arbitrary function") are registered separately;
``DISTRIBUTION`` is the paper's temperature-distribution PDE solve.
"""

from __future__ import annotations

import typing

import numpy as np


class PartialAggregate:
    """A TAG partial-state record: (init, merge, finalize).

    Parameters
    ----------
    name:
        Aggregate name (upper-case).
    init:
        ``value -> state`` for one reading.
    merge:
        ``(state, state) -> state``; must be associative and commutative.
    finalize:
        ``state -> float``.
    state_size_bits:
        Wire size of one partial record.
    """

    def __init__(
        self,
        name: str,
        init: typing.Callable[[float], typing.Any],
        merge: typing.Callable[[typing.Any, typing.Any], typing.Any],
        finalize: typing.Callable[[typing.Any], float],
        state_size_bits: float = 64.0,
    ) -> None:
        self.name = name
        self.init = init
        self.merge = merge
        self.finalize = finalize
        self.state_size_bits = state_size_bits

    def compute(self, values: typing.Sequence[float]) -> float:
        """Fold all values through init/merge/finalize (reference path)."""
        if len(values) == 0:
            raise ValueError(f"{self.name} of an empty set")
        state = self.init(float(values[0]))
        for v in values[1:]:
            state = self.merge(state, self.init(float(v)))
        return self.finalize(state)


def _merge_std(a, b):
    """Chan's parallel-variance merge of two (count, mean, M2) records."""
    na, ma, m2a = a
    nb, mb, m2b = b
    n = na + nb
    delta = mb - ma
    return (n, ma + delta * nb / n, m2a + m2b + delta * delta * na * nb / n)


#: Decomposable aggregates with TAG partial-state records.
DECOMPOSABLE: dict[str, PartialAggregate] = {
    "MAX": PartialAggregate("MAX", lambda v: v, max, float),
    "MIN": PartialAggregate("MIN", lambda v: v, min, float),
    "SUM": PartialAggregate("SUM", lambda v: v, lambda a, b: a + b, float),
    "COUNT": PartialAggregate("COUNT", lambda v: 1.0, lambda a, b: a + b, float),
    "AVG": PartialAggregate(
        "AVG",
        lambda v: (v, 1.0),
        lambda a, b: (a[0] + b[0], a[1] + b[1]),
        lambda s: s[0] / s[1],
        state_size_bits=128.0,
    ),
    # STD via (count, mean, M2) -- decomposable; Chan's parallel-variance
    # merge avoids the cancellation of the naive sum-of-squares form
    # (whose E[x^2] - mean^2 residue is ~1e-8 even for constant inputs)
    "STD": PartialAggregate(
        "STD",
        lambda v: (1.0, v, 0.0),
        _merge_std,
        lambda s: float(np.sqrt(max(s[2] / s[0], 0.0))),
        state_size_bits=192.0,
    ),
}

#: Holistic aggregates: exact value needs all readings (no partial record).
HOLISTIC: dict[str, typing.Callable[[np.ndarray], float]] = {
    "MEDIAN": lambda values: float(np.median(values)),
}

#: All aggregate names, for the classifier.
AGGREGATES: dict[str, typing.Callable[[np.ndarray], float]] = {
    **{name: (lambda pa: lambda values: pa.compute(list(np.asarray(values, dtype=float))))(pa)
       for name, pa in DECOMPOSABLE.items()},
    **HOLISTIC,
}

#: Complex functions: arbitrary computations over the reading set.  The
#: registry stores metadata used by the cost model; actual execution
#: lives in the execution models (the PDE solve needs the deployment).
COMPLEX_FUNCTIONS: dict[str, dict] = {
    "DISTRIBUTION": {
        "description": "steady-state temperature field via 2-D PDE solve",
        "output_bits_per_point": 64.0,
    },
    "DISTRIBUTION3D": {
        "description": "the paper's literal query: a 3-D PDE solve over the "
                       "building volume (sensors anchored at mount height)",
        "output_bits_per_point": 64.0,
    },
    "HISTOGRAM": {
        "description": "value histogram over the reading set",
        "output_bits_per_point": 64.0,
    },
}


def is_aggregate(func: str) -> bool:
    """True iff ``func`` is a registered aggregate (decomposable or not)."""
    return func.upper() in AGGREGATES


def is_decomposable(func: str) -> bool:
    """True iff ``func`` has a TAG partial-state record."""
    return func.upper() in DECOMPOSABLE


def is_complex(func: str) -> bool:
    """True for registered complex functions *and* unknown functions.

    The paper allows "any arbitrary function"; anything the aggregate
    registry does not know is treated as complex (worst case).
    """
    f = func.upper()
    return f in COMPLEX_FUNCTIONS or (not is_aggregate(f))


def compute_aggregate(func: str, values: np.ndarray) -> float:
    """Evaluate a registered aggregate over raw values."""
    f = func.upper()
    if f not in AGGREGATES:
        raise KeyError(f"unknown aggregate {func!r}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError(f"{func} of an empty set")
    return float(AGGREGATES[f](values))
