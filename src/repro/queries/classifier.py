"""The paper's four query classes.

"To ease the process of making the various estimates described earlier,
we have divided the possible queries into four different types":

* **Simple** -- "targeted at a particular sensor", e.g.
  ``SELECT value FROM sensors WHERE sensor_id = 10``.
* **Aggregate** -- "involve aggregate functions like Max, Min, Avg, Sum".
* **Complex** -- "involve performing computation over data from sensors",
  e.g. the temperature distribution.
* **Continuous/Windowed** -- "any query which is continuous in nature"
  (an EPOCH clause).
"""

from __future__ import annotations

import enum

from repro.queries.ast import Query
from repro.queries.functions import is_aggregate, is_complex


class QueryClass(enum.Enum):
    """The §4 query taxonomy."""

    SIMPLE = "simple"
    AGGREGATE = "aggregate"
    COMPLEX = "complex"
    CONTINUOUS = "continuous"


def base_class(query: Query) -> QueryClass:
    """The per-epoch class, ignoring continuity.

    Any complex function makes the query COMPLEX (it dominates);
    otherwise any aggregate makes it AGGREGATE; otherwise SIMPLE.
    """
    funcs = query.functions
    if any(is_complex(f) for f in funcs):
        return QueryClass.COMPLEX
    if any(is_aggregate(f) for f in funcs):
        return QueryClass.AGGREGATE
    return QueryClass.SIMPLE


def classify(query: Query) -> QueryClass:
    """The paper's four-way classification (CONTINUOUS dominates)."""
    if query.is_continuous:
        return QueryClass.CONTINUOUS
    return base_class(query)
