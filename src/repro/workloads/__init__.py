"""Workload and scenario generators for experiments and examples.

* :mod:`~repro.workloads.queries` -- random query workloads over the four
  §4 classes with controllable mixes.
* :mod:`~repro.workloads.services` -- random service populations over the
  default ontology (for discovery/composition experiments).
* :mod:`~repro.workloads.scenarios` -- the paper's three motivating
  scenarios as ready-to-run builders: the burning building (Figure 1),
  health/toxin monitoring, and defense situation awareness.
"""

from repro.workloads.queries import QueryWorkload
from repro.workloads.services import ServicePopulation
from repro.workloads.scenarios import (
    fire_scenario,
    health_scenario,
    defense_scenario,
    intrusion_scenario,
)

__all__ = [
    "QueryWorkload",
    "ServicePopulation",
    "fire_scenario",
    "health_scenario",
    "defense_scenario",
    "intrusion_scenario",
]
