"""Random query workloads.

Generates syntactically valid §4 queries with a controllable class mix --
the input distribution for the Decision-Maker experiments ("simulations
on these query types to generate data").
"""

from __future__ import annotations

import numpy as np

from repro.queries.ast import Query
from repro.queries.language import parse_query

#: Aggregate functions the generator draws from (decomposable + holistic).
_AGG_FUNCS = ("MAX", "MIN", "AVG", "SUM", "COUNT", "MEDIAN", "STD")


class QueryWorkload:
    """A reproducible stream of random queries.

    Parameters
    ----------
    n_sensors:
        Id range for ``sensor_id`` predicates.
    rooms:
        Room-number range for ``room`` predicates.
    mix:
        ``(simple, aggregate, complex, continuous)`` class probabilities;
        normalized internally.
    cost_prob:
        Probability a query carries a COST clause.
    rng:
        Random source.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_sensors: int = 49,
        rooms: int = 9,
        mix: tuple[float, float, float, float] = (0.3, 0.4, 0.15, 0.15),
        cost_prob: float = 0.2,
    ) -> None:
        if n_sensors < 1 or rooms < 1:
            raise ValueError("n_sensors and rooms must be positive")
        total = float(sum(mix))
        if total <= 0 or len(mix) != 4 or any(m < 0 for m in mix):
            raise ValueError("mix must be 4 non-negative weights")
        if not 0.0 <= cost_prob <= 1.0:
            raise ValueError("cost_prob must be in [0, 1]")
        self.rng = rng
        self.n_sensors = n_sensors
        self.rooms = rooms
        self.mix = tuple(m / total for m in mix)
        self.cost_prob = cost_prob
        self.generated = 0

    # ------------------------------------------------------------------
    def _where(self) -> str:
        """A random scope: everything, a room, or a sensor-id range."""
        choice = self.rng.random()
        if choice < 0.4:
            return ""
        if choice < 0.7:
            room = int(self.rng.integers(1, self.rooms + 1))
            return f" WHERE room = {room}"
        lo = int(self.rng.integers(0, self.n_sensors))
        hi = int(self.rng.integers(lo, self.n_sensors)) + 1
        return f" WHERE sensor_id >= {lo} AND sensor_id < {hi}"

    def _cost(self) -> str:
        if self.rng.random() >= self.cost_prob:
            return ""
        metric = ("energy", "time", "accuracy")[int(self.rng.integers(3))]
        limit = {
            "energy": float(self.rng.uniform(0.001, 0.1)),
            "time": float(self.rng.uniform(0.5, 30.0)),
            "accuracy": float(self.rng.uniform(0.01, 0.2)),
        }[metric]
        return f" COST {metric} <= {limit:.4g}"

    def next_text(self) -> str:
        """The next random query as text."""
        self.generated += 1
        u = self.rng.random()
        s, a, c, _ = self.mix
        if u < s:
            sid = int(self.rng.integers(0, self.n_sensors))
            return f"SELECT value FROM sensors WHERE sensor_id = {sid}" + self._cost()
        if u < s + a:
            func = _AGG_FUNCS[int(self.rng.integers(len(_AGG_FUNCS)))]
            return f"SELECT {func}(value) FROM sensors" + self._where() + self._cost()
        if u < s + a + c:
            func = "DISTRIBUTION" if self.rng.random() < 0.7 else "HISTOGRAM"
            return f"SELECT {func}(value) FROM sensors" + self._where() + self._cost()
        # continuous: a simple or aggregate body with an EPOCH clause
        func = _AGG_FUNCS[int(self.rng.integers(len(_AGG_FUNCS)))]
        epoch = float(self.rng.uniform(1.0, 10.0))
        duration = epoch * int(self.rng.integers(2, 6))
        return (
            f"SELECT {func}(value) FROM sensors" + self._where()
            + f" EPOCH DURATION {epoch:.3g} FOR {duration:.3g}"
        )

    def next(self) -> Query:
        """The next random query, parsed."""
        return parse_query(self.next_text())

    def batch(self, n: int) -> list[Query]:
        """``n`` random queries."""
        if n < 1:
            raise ValueError("n must be positive")
        return [self.next() for _ in range(n)]
