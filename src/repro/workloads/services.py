"""Random service populations for discovery/composition experiments.

Builds a mixed population of services over the default ontology with
realistic attributes (queue lengths, costs, positions, color support),
plus the syntactic metadata (interfaces, class UUIDs, SLP types) the
baseline protocols need -- one population, four protocols, measurable
expressiveness gap (E5).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.discovery.description import ServiceDescription

#: (category, weight, attribute generator name) rows for the population.
_CATEGORY_MIX = (
    ("PrinterService", 0.15),
    ("ColorPrinterService", 0.1),
    ("LaserPrinterService", 0.1),
    ("PDESolverService", 0.08),
    ("LinearAlgebraService", 0.07),
    ("DecisionTreeService", 0.12),
    ("FourierSpectrumService", 0.1),
    ("EnsembleCombinerService", 0.08),
    ("TemperatureSensorService", 0.1),
    ("ToxinSensorService", 0.05),
    ("StorageService", 0.05),
)

#: Shared SDP class UUIDs per category (what a real SDP deployment has).
_CLASS_UUIDS = {cat: f"uuid-{cat.lower()}" for cat, _ in _CATEGORY_MIX}


@dataclasses.dataclass
class GeneratedService:
    """A generated description plus metadata experiments need."""

    description: ServiceDescription
    category: str


class ServicePopulation:
    """A reproducible random population of service descriptions.

    Parameters
    ----------
    rng:
        Random source.
    area_m:
        Positions are drawn in this square (for ``distance_m``
        preferences).
    host_nodes:
        Optional pool of topology node ids services are hosted on (drawn
        with replacement); None leaves services unhosted (wired side).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        area_m: float = 100.0,
        host_nodes: list[int] | None = None,
    ) -> None:
        self.rng = rng
        self.area_m = area_m
        self.host_nodes = host_nodes
        self._counter = 0

    def _category(self) -> str:
        cats = [c for c, _ in _CATEGORY_MIX]
        weights = np.array([w for _, w in _CATEGORY_MIX])
        return cats[int(self.rng.choice(len(cats), p=weights / weights.sum()))]

    def generate_one(self, category: str | None = None) -> GeneratedService:
        """One random service (optionally of a fixed category)."""
        cat = category or self._category()
        self._counter += 1
        name = f"{cat.lower()}-{self._counter}"
        pos = self.rng.uniform(0, self.area_m, size=2)
        attrs = {
            "queue_length": int(self.rng.integers(0, 10)),
            "cost_per_use": float(self.rng.uniform(0.01, 1.0)),
            "x": float(pos[0]),
            "y": float(pos[1]),
            "class_uuid": _CLASS_UUIDS[cat],
            "slp_type": cat,
        }
        if "Printer" in cat:
            attrs["color"] = cat == "ColorPrinterService" or bool(self.rng.random() < 0.2)
            attrs["cost_per_page"] = float(self.rng.uniform(0.01, 0.5))
            attrs["pages_per_minute"] = float(self.rng.uniform(4, 40))
        host = None
        if self.host_nodes:
            host = int(self.host_nodes[int(self.rng.integers(len(self.host_nodes)))])
        desc = ServiceDescription(
            name=name,
            category=cat,
            attributes=attrs,
            host_node=host,
            interfaces=(cat,),
            cost=attrs["cost_per_use"],
            ops=float(self.rng.uniform(1e5, 1e7)),
        )
        return GeneratedService(description=desc, category=cat)

    def generate(self, n: int) -> list[GeneratedService]:
        """``n`` random services."""
        if n < 1:
            raise ValueError("n must be positive")
        return [self.generate_one() for _ in range(n)]

    @staticmethod
    def class_uuid(category: str) -> str:
        """The SDP class UUID a client would have to know a priori."""
        return _CLASS_UUIDS[category]
