"""The paper's motivating scenarios as runnable builders."""

from __future__ import annotations

from repro.core.decision import DecisionPolicy
from repro.core.runtime import PervasiveGridRuntime
from repro.sensors.field import FireField, PlumeField
from repro.simkernel import RandomStreams


def fire_scenario(
    n_sensors: int = 49,
    area_m: float = 60.0,
    seed: int = 0,
    n_seats: int = 2,
    policy: DecisionPolicy | None = None,
    **runtime_kwargs,
) -> PervasiveGridRuntime:
    """Figure 1: a burning building instrumented with temperature sensors.

    Sensors on a lattice in a building of ``area_m`` metres a side, one
    base station at the entrance, a fire fighter's handheld, and the grid
    behind the base station's uplink.  The fire grows over simulated
    time, so continuous queries see an evolving field.
    """
    streams = RandomStreams(seed)
    field = FireField(area_m, streams.get("fire"), n_seats=n_seats)
    return PervasiveGridRuntime(
        n_sensors=n_sensors,
        area_m=area_m,
        field=field,
        seed=seed,
        policy=policy,
        **runtime_kwargs,
    )


def health_scenario(
    n_sensors: int = 36,
    area_m: float = 200.0,
    seed: int = 0,
    policy: DecisionPolicy | None = None,
    **runtime_kwargs,
) -> PervasiveGridRuntime:
    """§1's health scenario: toxin sensors watching a drifting plume.

    Low-cost environmental toxin sensors spread over a region; a plume is
    released near the centre and advects with the wind.  Queries monitor
    concentration statistics; the stream-mining example composes the
    analysis services on top.
    """
    streams = RandomStreams(seed)
    field = PlumeField(
        source=(area_m * 0.4, area_m * 0.5),
        wind_m_s=(0.8, 0.2),
        initial_mass=5e4,
        sigma0_m=area_m * 0.08,
    )
    return PervasiveGridRuntime(
        n_sensors=n_sensors,
        area_m=area_m,
        field=field,
        seed=seed,
        policy=policy,
        noise_std=0.05,
        **runtime_kwargs,
    )


def intrusion_scenario(
    n_sensors: int = 25,
    area_m: float = 100.0,
    seed: int = 0,
    n_attacks: int = 2,
    policy: DecisionPolicy | None = None,
    **runtime_kwargs,
) -> PervasiveGridRuntime:
    """§1's other representative field: network-based intrusion detection.

    "the two scenarios painted above, far from being unique, are actually
    representative in fields as far apart as process monitoring & control,
    and network-based intrusion detection."

    Sensors here are traffic taps reporting an anomaly score; attacks
    appear as localized score bursts that flare up at random onset times
    (fast growth, like a scan or worm outbreak) against a low noise
    floor.  The same query machinery applies: continuous MAX watches for
    outbreaks, aggregates rank subnets, complex queries map the spread.
    """
    streams = RandomStreams(seed)
    from repro.sensors.field import Hotspot, HotspotField

    rng = streams.get("attacks")
    attacks = [
        Hotspot(
            center=tuple(rng.uniform(0.1 * area_m, 0.9 * area_m, size=2)),
            amplitude=float(rng.uniform(40.0, 100.0)),
            sigma_m=float(rng.uniform(0.08, 0.2) * area_m),
            t0=float(rng.uniform(30.0, 300.0)),
            growth_rate=0.5,  # outbreaks ramp fast
        )
        for _ in range(n_attacks)
    ]
    field = HotspotField(background=1.0, hotspots=attacks)  # baseline noise floor
    return PervasiveGridRuntime(
        n_sensors=n_sensors,
        area_m=area_m,
        field=field,
        seed=seed,
        policy=policy,
        noise_std=0.3,
        **runtime_kwargs,
    )


def defense_scenario(
    n_sensors: int = 64,
    area_m: float = 400.0,
    seed: int = 0,
    policy: DecisionPolicy | None = None,
    **runtime_kwargs,
) -> PervasiveGridRuntime:
    """§1's defense scenario: ground-sensor field with random placement.

    Wireless integrated network sensors scattered (not gridded) over
    terrain; detection events appear as hotspots.  Random placement makes
    topology irregular -- deeper trees, uneven clusters -- stressing the
    Decision Maker's estimates.
    """
    streams = RandomStreams(seed)
    from repro.sensors.field import HotspotField, Hotspot

    rng = streams.get("targets")
    hotspots = [
        Hotspot(
            center=tuple(rng.uniform(0.1 * area_m, 0.9 * area_m, size=2)),
            amplitude=float(rng.uniform(50.0, 150.0)),
            sigma_m=float(rng.uniform(0.05, 0.15) * area_m),
            t0=float(rng.uniform(0.0, 120.0)),
            growth_rate=0.1,
        )
        for _ in range(3)
    ]
    field = HotspotField(background=0.0, hotspots=hotspots)
    return PervasiveGridRuntime(
        n_sensors=n_sensors,
        area_m=area_m,
        field=field,
        seed=seed,
        policy=policy,
        placement="random",
        noise_std=1.0,
        **runtime_kwargs,
    )
