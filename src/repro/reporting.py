"""Terminal-friendly rendering of fields and tables.

Examples and benchmarks print their results; these helpers keep that
output readable without any plotting dependency (the repo is offline).
"""

from __future__ import annotations

import typing

import numpy as np

#: Characters from cold to hot.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    field: np.ndarray,
    width: int = 40,
    height: int = 20,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a 2-D field as an ASCII heat map.

    The field is resampled (nearest neighbour) to ``width x height``
    characters; intensity maps linearly onto a 10-step character ramp.
    Row 0 of the output is the *top* (max y), matching how a floor plan
    is read.

    Parameters
    ----------
    field:
        ``(nx, ny)`` array (x = horizontal axis).
    width, height:
        Output size in characters.
    vmin, vmax:
        Color scale bounds (default: the field's min/max).
    """
    arr = np.asarray(field, dtype=float)
    if arr.ndim != 2:
        raise ValueError("field must be 2-D")
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    lo = float(np.nanmin(arr)) if vmin is None else float(vmin)
    hi = float(np.nanmax(arr)) if vmax is None else float(vmax)
    span = hi - lo if hi > lo else 1.0

    nx, ny = arr.shape
    xs = np.linspace(0, nx - 1, width).round().astype(int)
    ys = np.linspace(ny - 1, 0, height).round().astype(int)  # top row = max y
    lines = []
    for j in ys:
        row = arr[xs, j]
        levels = np.clip(((row - lo) / span) * (len(_RAMP) - 1), 0, len(_RAMP) - 1)
        lines.append("".join(_RAMP[int(l)] for l in levels))
    return "\n".join(lines)


def format_table(headers: typing.Sequence[str], rows: typing.Sequence[typing.Sequence],
                 width: int = 14) -> str:
    """A plain fixed-width table (the benchmarks' format, reusable)."""
    fmt = "{:>" + str(width) + "}"

    def cell(v: typing.Any) -> str:
        if isinstance(v, float):
            return fmt.format(f"{v:.4g}")
        return fmt.format(str(v))

    out = ["".join(fmt.format(str(h)) for h in headers)]
    out.append("-" * (width * len(headers)))
    for row in rows:
        out.append("".join(cell(v) for v in row))
    return "\n".join(out)


def sparkline(values: typing.Sequence[float]) -> str:
    """A one-line unicode sparkline (time series at a glance)."""
    blocks = "▁▂▃▄▅▆▇█"
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    span = hi - lo if hi > lo else 1.0
    idx = np.clip(((arr - lo) / span) * (len(blocks) - 1), 0, len(blocks) - 1)
    return "".join(blocks[int(i)] for i in idx)
