"""Contract-Net negotiation with performance commitments.

"These techniques will create a framework where software components/
agents advertise their capabilities, discover other agents, and
*negotiate with other agents about appropriate mediating interfaces or
performance commitments*." (§2)

The classic FIPA Contract-Net protocol over our ACL:

1. the initiator sends ``CFP`` (call for proposals) to candidate
   contractors, carrying the task description and its requirements;
2. each contractor replies ``PROPOSE`` with a *commitment* -- the price
   and completion deadline it is willing to be held to -- or ``REJECT``;
3. the initiator picks the best proposal, sends ``ACCEPT`` to the winner
   and ``REJECT`` to the losers;
4. the winner performs the task and must deliver by its committed
   deadline; the initiator records whether the commitment was honoured
   (the reputation signal used to weight future awards).

:class:`ContractNetInitiator` and :class:`ContractNetContractor` are
mixable agent roles; the composition layer uses them for *negotiated
binding* as an alternative to registry-rank binding.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.simkernel import Simulator

_cfp_ids = itertools.count()


@dataclasses.dataclass(frozen=True)
class CallForProposals:
    """The CFP payload.

    Attributes
    ----------
    cfp_id:
        Unique id correlating the whole negotiation.
    task:
        Free-form task descriptor (e.g. the service category + params).
    max_price:
        The initiator's reserve price; contractors above it should
        decline.
    deadline_s:
        Latest acceptable completion time (relative, seconds).
    """

    cfp_id: str
    task: dict
    max_price: float
    deadline_s: float


@dataclasses.dataclass(frozen=True)
class Proposal:
    """A contractor's commitment.

    Attributes
    ----------
    cfp_id:
        The negotiation this answers.
    contractor:
        Agent name making the commitment.
    price:
        Offered price (generic units).
    completion_s:
        Committed completion time (relative, seconds).
    """

    cfp_id: str
    contractor: str
    price: float
    completion_s: float


@dataclasses.dataclass
class Award:
    """The initiator's record of one completed negotiation."""

    cfp_id: str
    winner: str | None
    proposal: Proposal | None
    proposals_received: int
    completed: bool = False
    on_time: bool = False
    result: typing.Any = None


class ContractNetContractor(Agent):
    """An agent that bids on CFPs and honours (or breaks) commitments.

    Parameters
    ----------
    name:
        Agent name.
    sim:
        Simulator (for execution delays).
    capability:
        Predicate over the CFP's ``task`` dict: can this contractor do it?
    price_fn / time_fn:
        Quotes for a given task: offered price and committed completion
        time.  Defaults: unit price, fixed 1 s.
    executor:
        Performs the task at award time; its return value is delivered.
    overrun_factor:
        Actual completion time = committed * factor (>1 models an agent
        that over-promises; the initiator's reputation tracking punishes
        it).
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        capability: typing.Callable[[dict], bool] = lambda task: True,
        price_fn: typing.Callable[[dict], float] = lambda task: 1.0,
        time_fn: typing.Callable[[dict], float] = lambda task: 1.0,
        executor: typing.Callable[[dict], typing.Any] = lambda task: None,
        overrun_factor: float = 1.0,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.SERVICE_PROVIDER))
        if overrun_factor <= 0:
            raise ValueError("overrun_factor must be positive")
        self.sim = sim
        self.capability = capability
        self.price_fn = price_fn
        self.time_fn = time_fn
        self.executor = executor
        self.overrun_factor = overrun_factor
        self.bids_made = 0
        self.awards_won = 0

    def setup(self) -> None:
        self.on(Performative.CFP, self._handle_cfp)
        self.on(Performative.ACCEPT, self._handle_accept)
        self.on(Performative.REJECT, lambda msg: None)

    def _handle_cfp(self, msg: ACLMessage) -> None:
        cfp = msg.content
        if not isinstance(cfp, CallForProposals):
            self.reply(msg, Performative.FAILURE, "expected CallForProposals")
            return
        if not self.capability(cfp.task):
            self.reply(msg, Performative.REJECT, cfp.cfp_id)
            return
        price = float(self.price_fn(cfp.task))
        completion = float(self.time_fn(cfp.task))
        if price > cfp.max_price or completion > cfp.deadline_s:
            self.reply(msg, Performative.REJECT, cfp.cfp_id)
            return
        self.bids_made += 1
        self.reply(msg, Performative.PROPOSE,
                   Proposal(cfp_id=cfp.cfp_id, contractor=self.name,
                            price=price, completion_s=completion))

    def _handle_accept(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict) or "cfp" not in content:
            return
        cfp: CallForProposals = content["cfp"]
        proposal: Proposal = content["proposal"]
        self.awards_won += 1
        actual = proposal.completion_s * self.overrun_factor

        def deliver() -> None:
            if self.platform is None:
                return
            self.reply(msg, Performative.INFORM, {
                "cfp_id": cfp.cfp_id,
                "result": self.executor(cfp.task),
            })

        self.sim.schedule(actual, deliver, label=f"contract:{cfp.cfp_id}")


class ContractNetInitiator(Agent):
    """Runs Contract-Net negotiations and tracks contractor reputation.

    Reputation: exponentially weighted on-time delivery rate per
    contractor (start optimistic at 1.0); awards are ranked by
    ``price + time_weight * completion`` divided by reputation, so agents
    that break commitments need to underbid to win again.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        time_weight: float = 1.0,
        reputation_memory: float = 0.7,
        timeout_factor: float = 3.0,
    ) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.CLIENT))
        self.sim = sim
        self.time_weight = time_weight
        self.reputation_memory = reputation_memory
        self.timeout_factor = timeout_factor
        self.reputation: dict[str, float] = {}
        self._live: dict[str, dict] = {}
        self.negotiations = 0

    def setup(self) -> None:
        self.on(Performative.PROPOSE, self._handle_propose)
        self.on(Performative.REJECT, self._handle_decline)
        self.on(Performative.INFORM, self._handle_inform)

    # ------------------------------------------------------------------
    def negotiate(
        self,
        contractors: list[str],
        task: dict,
        on_complete: typing.Callable[[Award], None],
        max_price: float = 10.0,
        deadline_s: float = 10.0,
        collect_window_s: float = 1.0,
    ) -> str:
        """Start one Contract-Net round; returns the cfp id.

        Proposals are collected for ``collect_window_s``; the award then
        goes to the best proposal (or the Award reports no winner).
        """
        if not contractors:
            raise ValueError("need at least one contractor")
        cfp = CallForProposals(
            cfp_id=f"cfp-{next(_cfp_ids)}",
            task=dict(task),
            max_price=max_price,
            deadline_s=deadline_s,
        )
        self.negotiations += 1
        state = {
            "cfp": cfp,
            "proposals": [],
            "declined": 0,
            "n_contractors": len(contractors),
            "on_complete": on_complete,
            "awarded": False,
            "award": None,
            "accept_msg_conv": None,
            "award_time": None,
        }
        self._live[cfp.cfp_id] = state
        for contractor in contractors:
            self.ask(contractor, Performative.CFP, cfp)
        self.sim.schedule(collect_window_s, lambda: self._award(cfp.cfp_id),
                          label=f"award:{cfp.cfp_id}")
        return cfp.cfp_id

    # ------------------------------------------------------------------
    def _score(self, proposal: Proposal) -> float:
        rep = self.reputation.get(proposal.contractor, 1.0)
        return (proposal.price + self.time_weight * proposal.completion_s) / max(rep, 0.05)

    def _handle_propose(self, msg: ACLMessage) -> None:
        proposal = msg.content
        if not isinstance(proposal, Proposal):
            return
        state = self._live.get(proposal.cfp_id)
        if state is None or state["awarded"]:
            return
        state["proposals"].append((proposal, msg))

    def _handle_decline(self, msg: ACLMessage) -> None:
        cfp_id = msg.content if isinstance(msg.content, str) else None
        state = self._live.get(cfp_id or "")
        if state is not None:
            state["declined"] += 1

    def _award(self, cfp_id: str) -> None:
        state = self._live.get(cfp_id)
        if state is None or state["awarded"]:
            return
        state["awarded"] = True
        proposals = state["proposals"]
        award = Award(
            cfp_id=cfp_id,
            winner=None,
            proposal=None,
            proposals_received=len(proposals),
        )
        if not proposals:
            self._live.pop(cfp_id, None)
            state["on_complete"](award)
            return
        proposals.sort(key=lambda pm: (self._score(pm[0]), pm[0].contractor))
        best, best_msg = proposals[0]
        award.winner = best.contractor
        award.proposal = best
        state["award"] = award
        state["award_time"] = self.sim.now
        self.reply(best_msg, Performative.ACCEPT,
                   {"cfp": state["cfp"], "proposal": best})
        for proposal, msg in proposals[1:]:
            self.reply(msg, Performative.REJECT, cfp_id)
        # commitment watchdog
        self.sim.schedule(
            best.completion_s * self.timeout_factor,
            lambda: self._check_timeout(cfp_id),
            label=f"contract-watchdog:{cfp_id}",
        )

    def _handle_inform(self, msg: ACLMessage) -> None:
        content = msg.content
        if not isinstance(content, dict) or "cfp_id" not in content:
            return
        state = self._live.pop(content["cfp_id"], None)
        if state is None or state["award"] is None:
            return
        award: Award = state["award"]
        elapsed = self.sim.now - state["award_time"]
        award.completed = True
        award.on_time = elapsed <= award.proposal.completion_s * 1.05
        award.result = content.get("result")
        self._update_reputation(award.winner, award.on_time)
        state["on_complete"](award)

    def _check_timeout(self, cfp_id: str) -> None:
        state = self._live.pop(cfp_id, None)
        if state is None or state["award"] is None:
            return
        award: Award = state["award"]
        award.completed = False
        award.on_time = False
        self._update_reputation(award.winner, False)
        state["on_complete"](award)

    def _update_reputation(self, contractor: str, on_time: bool) -> None:
        prev = self.reputation.get(contractor, 1.0)
        m = self.reputation_memory
        self.reputation[contractor] = m * prev + (1.0 - m) * (1.0 if on_time else 0.0)
