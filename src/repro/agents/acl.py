"""Agent communication language (ACL) messages.

A FIPA-flavoured performative vocabulary.  Ronin is "ACL and network
protocol independent": the platform never interprets ACL content, only
the :class:`~repro.agents.envelope.Envelope` metadata.  Agents that speak
the same content language/ontology interpret the body.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing


class Performative(enum.Enum):
    """Speech acts, following FIPA-ACL (the standard §2 references)."""

    REQUEST = "request"
    INFORM = "inform"
    QUERY = "query"
    PROPOSE = "propose"
    ACCEPT = "accept"
    REJECT = "reject"
    FAILURE = "failure"
    CFP = "cfp"  # call for proposals (negotiation)
    SUBSCRIBE = "subscribe"
    ADVERTISE = "advertise"
    UNADVERTISE = "unadvertise"


_conversation_ids = itertools.count()


def new_conversation_id() -> str:
    """A fresh, process-unique conversation id."""
    return f"conv-{next(_conversation_ids)}"


@dataclasses.dataclass
class ACLMessage:
    """One agent-to-agent speech act.

    Attributes
    ----------
    performative:
        The speech act.
    sender / receiver:
        Agent names (platform-unique strings).
    content:
        Arbitrary payload; its type/ontology is declared on the envelope.
    conversation_id:
        Correlates requests with replies.
    in_reply_to:
        Conversation id this message answers, if any.
    """

    performative: Performative
    sender: str
    receiver: str
    content: typing.Any = None
    conversation_id: str = dataclasses.field(default_factory=new_conversation_id)
    in_reply_to: str | None = None

    def reply(self, performative: Performative, content: typing.Any = None) -> "ACLMessage":
        """Build the reply message (sender/receiver swapped, conv id linked)."""
        return ACLMessage(
            performative=performative,
            sender=self.receiver,
            receiver=self.sender,
            content=content,
            conversation_id=new_conversation_id(),
            in_reply_to=self.conversation_id,
        )
