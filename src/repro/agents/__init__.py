"""The Ronin-style multi-agent framework (paper §2).

The paper's runtime is built on the Ronin Agent Framework: a hybrid of
agent-oriented and service-oriented approaches where *services are
modelled as agents*.  The defining architectural features reproduced
here:

* **Agent / Agent Deputy split** -- every agent is fronted by a deputy
  implementing a single ``deliver`` method; deputies encapsulate
  transport concerns (disconnection management, transcoding) so the agent
  body is transport-agnostic (:mod:`~repro.agents.deputy`).
* **Envelopes** -- messages travel inside :class:`~repro.agents.envelope.Envelope`
  objects carrying the content type and ontology identifier, giving a
  uniform communication infrastructure over arbitrary content languages.
* **Agent Attributes vs Agent Domain Attributes** -- framework-defined
  generic roles versus free-form domain descriptions
  (:mod:`~repro.agents.attributes`).
* **ACL-independent messaging** -- a FIPA-flavoured performative set in
  :mod:`~repro.agents.acl`; the platform only looks at envelopes.
* **A platform registry** with lifecycle management and integration with
  node churn (:mod:`~repro.agents.platform`).
"""

from repro.agents.acl import ACLMessage, Performative
from repro.agents.attributes import AgentAttributes, AgentRole, DomainAttributes
from repro.agents.envelope import Envelope
from repro.agents.agent import Agent
from repro.agents.deputy import AgentDeputy, DirectDeputy, NetworkDeputy
from repro.agents.platform import AgentPlatform
from repro.agents.contractnet import (
    Award,
    CallForProposals,
    ContractNetContractor,
    ContractNetInitiator,
    Proposal,
)

__all__ = [
    "Award",
    "CallForProposals",
    "ContractNetContractor",
    "ContractNetInitiator",
    "Proposal",
    "ACLMessage",
    "Performative",
    "AgentAttributes",
    "AgentRole",
    "DomainAttributes",
    "Envelope",
    "Agent",
    "AgentDeputy",
    "DirectDeputy",
    "NetworkDeputy",
    "AgentPlatform",
]
