"""The agent platform: registry, dispatch and lifecycle.

The platform is the "open framework that specifies the infrastructure
requirement and the interface guideline for the interaction and
communication between agent-oriented components".  It maps agent names to
deputies, stamps envelopes, and routes every send through the receiver's
deputy -- the only delivery path in the system.
"""

from __future__ import annotations


from repro.simkernel import Monitor, Simulator
from repro.agents.agent import Agent
from repro.agents.attributes import AgentRole
from repro.agents.deputy import AgentDeputy, DirectDeputy


class AgentPlatform:
    """Name → deputy registry plus the dispatch fabric.

    Parameters
    ----------
    sim:
        Shared simulator.
    monitor:
        Instrumentation (counters ``platform.dispatched``,
        ``platform.undeliverable``).
    """

    def __init__(self, sim: Simulator, monitor: Monitor | None = None) -> None:
        self.sim = sim
        self.monitor = monitor or Monitor()
        self._deputies: dict[str, AgentDeputy] = {}
        self._host_nodes: dict[str, int] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(
        self,
        agent: Agent,
        deputy: AgentDeputy | None = None,
        host_node: int | None = None,
    ) -> AgentDeputy:
        """Register ``agent`` behind ``deputy`` (default: a DirectDeputy).

        ``host_node`` records where the agent physically runs, so network
        deputies of *other* agents can source transmissions correctly.
        """
        if agent.name in self._deputies:
            raise ValueError(f"agent name {agent.name!r} already registered")
        if deputy is None:
            deputy = DirectDeputy(agent, self.sim)
        self._deputies[agent.name] = deputy
        if host_node is not None:
            self._host_nodes[agent.name] = host_node
        elif hasattr(deputy, "host_node"):
            self._host_nodes[agent.name] = deputy.host_node  # type: ignore[attr-defined]
        agent.platform = self
        agent.setup()
        return deputy

    def unregister(self, name: str) -> None:
        """Remove an agent (service goes away)."""
        deputy = self._deputies.pop(name, None)
        self._host_nodes.pop(name, None)
        if deputy is not None:
            deputy.agent.teardown()
            deputy.agent.platform = None

    def is_registered(self, name: str) -> bool:
        """True iff an agent with ``name`` is currently registered."""
        return name in self._deputies

    def agent_names(self) -> list[str]:
        """All registered agent names, sorted."""
        return sorted(self._deputies)

    def agent(self, name: str) -> Agent:
        """The agent object behind ``name`` (KeyError if absent)."""
        return self._deputies[name].agent

    def deputy_of(self, name: str) -> AgentDeputy | None:
        """The deputy fronting ``name`` (None if absent)."""
        deputy = self._deputies.get(name)
        return deputy

    def host_node_of(self, name: str) -> int | None:
        """Topology node an agent runs on (None for unhosted/wired agents)."""
        return self._host_nodes.get(name)

    def agents_with_role(self, role: AgentRole) -> list[Agent]:
        """All registered agents declaring ``role``, by name order."""
        return [
            self._deputies[name].agent
            for name in self.agent_names()
            if self._deputies[name].agent.attributes.has_role(role)
        ]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, envelope) -> bool:
        """Route ``envelope`` to the receiver's deputy.

        Returns False (and counts ``platform.undeliverable``) when the
        receiver is not registered -- the sender can observe this via the
        return value of :meth:`Agent.send`'s platform call chain or by
        timeout, mirroring real open systems where sends to vanished
        services fail silently.
        """
        envelope.sent_at = self.sim.now
        deputy = self._deputies.get(envelope.receiver)
        if deputy is None:
            self.monitor.counter("platform.undeliverable").add()
            return False
        self.monitor.counter("platform.dispatched").add()
        deputy.deliver(envelope)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AgentPlatform(agents={len(self._deputies)})"
