"""Envelopes: the uniform message wrapper.

"The messages that are interchanged between Ronin Agents are embedded
within Envelope objects during the delivery process. ... Within each
Envelope object, the type of content message and the ontology identifier
of the content message are also stored." (§2)
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

_envelope_ids = itertools.count()


@dataclasses.dataclass
class Envelope:
    """Transport-level wrapper around any content message.

    Attributes
    ----------
    sender / receiver:
        Agent names; resolved to deputies by the platform.
    content:
        The wrapped message (usually an :class:`~repro.agents.acl.ACLMessage`,
        but the meta-level design allows "arbitrary content message types").
    content_type:
        Identifier of the content language (``"acl"``, ``"soap"``,
        ``"raw"`` ...).
    ontology:
        Identifier of the ontology the content uses.
    size_bits:
        Wire size used by network deputies for timing/energy; transcoding
        deputies may shrink this in transit.
    sent_at:
        Stamped by the platform on dispatch.
    """

    sender: str
    receiver: str
    content: typing.Any
    content_type: str = "acl"
    ontology: str = ""
    size_bits: float = 1024.0
    sent_at: float = 0.0
    envelope_id: int = dataclasses.field(default_factory=lambda: next(_envelope_ids))

    def __post_init__(self) -> None:
        if self.size_bits < 0:
            raise ValueError("size_bits must be non-negative")

    def transcoded(self, factor: float) -> "Envelope":
        """A copy whose wire size is scaled by ``factor`` (0 < f <= 1).

        Models the deputy-side transcoding feature: the content object is
        carried unchanged (we simulate cost, not encodings), only the
        simulated size shrinks.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("transcode factor must be in (0, 1]")
        return dataclasses.replace(self, size_bits=self.size_bits * factor, envelope_id=next(_envelope_ids))
