"""Agent attributes.

"The first set of attributes, Agent Attributes, define the generic
functionality of an agent in domain independent fashion. ... The second
set of attributes, Agent Domain Attributes, define the domain specific
functionality of an agent. ... The framework neither defines the Domain
Attribute types nor their semantics." (§2)
"""

from __future__ import annotations

import dataclasses
import enum
import typing


class AgentRole(enum.Enum):
    """Framework-defined generic roles (types *and* semantics fixed here)."""

    BROKER = "broker"
    SERVICE_PROVIDER = "service-provider"
    CLIENT = "client"
    FACILITATOR = "facilitator"
    SENSOR = "sensor"
    COMPOSER = "composer"


@dataclasses.dataclass(frozen=True)
class AgentAttributes:
    """Domain-independent agent description.

    Attributes
    ----------
    roles:
        The generic functions this agent performs.
    mobile:
        Whether the agent's host moves (affects deputy selection).
    host_kind:
        Coarse device class: ``"sensor"``, ``"handheld"``, ``"notebook"``,
        ``"basestation"``, ``"grid"``.
    """

    roles: frozenset[AgentRole] = frozenset()
    mobile: bool = False
    host_kind: str = "notebook"

    def has_role(self, role: AgentRole) -> bool:
        """True iff the agent declares ``role``."""
        return role in self.roles

    @staticmethod
    def of(*roles: AgentRole, mobile: bool = False, host_kind: str = "notebook") -> "AgentAttributes":
        """Convenience constructor: ``AgentAttributes.of(AgentRole.BROKER)``."""
        return AgentAttributes(roles=frozenset(roles), mobile=mobile, host_kind=host_kind)


class DomainAttributes:
    """Free-form domain-specific attributes.

    A thin mapping wrapper; the framework stores and forwards these but
    assigns them no semantics (per the paper).  Discovery's semantic
    matcher interprets them against an ontology.
    """

    def __init__(self, **attrs: typing.Any) -> None:
        self._attrs = dict(attrs)

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        """Value for ``key`` or ``default``."""
        return self._attrs.get(key, default)

    def set(self, key: str, value: typing.Any) -> None:
        """Set one attribute."""
        self._attrs[key] = value

    def keys(self) -> list[str]:
        """All attribute names, sorted."""
        return sorted(self._attrs)

    def as_dict(self) -> dict[str, typing.Any]:
        """Copy of the underlying mapping."""
        return dict(self._attrs)

    def __contains__(self, key: str) -> bool:
        return key in self._attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainAttributes):
            return NotImplemented
        return self._attrs == other._attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DomainAttributes({self._attrs!r})"
