"""The agent body.

An :class:`Agent` is transport-agnostic: it receives envelopes from its
deputy and sends by handing envelopes to the platform.  Behaviour is
expressed as performative handlers (for ACL content) plus an optional
raw-envelope hook for non-ACL content types.
"""

from __future__ import annotations

import typing

from repro.agents.acl import ACLMessage, Performative
from repro.agents.attributes import AgentAttributes, DomainAttributes
from repro.agents.envelope import Envelope

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agents.platform import AgentPlatform


class Agent:
    """A Ronin agent.

    Parameters
    ----------
    name:
        Platform-unique identifier.
    attributes:
        Domain-independent description (roles, mobility, host kind).
    domain_attributes:
        Domain-specific description (free-form).

    Subclasses typically override :meth:`setup` to register handlers:

    >>> class Echo(Agent):
    ...     def setup(self):
    ...         self.on(Performative.REQUEST, self.handle)
    ...     def handle(self, msg):
    ...         self.reply(msg, Performative.INFORM, msg.content)
    """

    def __init__(
        self,
        name: str,
        attributes: AgentAttributes | None = None,
        domain_attributes: DomainAttributes | None = None,
    ) -> None:
        self.name = name
        self.attributes = attributes or AgentAttributes()
        self.domain_attributes = domain_attributes or DomainAttributes()
        self.platform: "AgentPlatform | None" = None
        self._handlers: dict[Performative, typing.Callable[[ACLMessage], None]] = {}
        self._raw_handler: typing.Callable[[Envelope], None] | None = None
        self.inbox_count = 0
        self.sent_count = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Hook called when the agent is registered with a platform."""

    def teardown(self) -> None:
        """Hook called when the agent is unregistered."""

    # ------------------------------------------------------------------
    # behaviour registration
    # ------------------------------------------------------------------
    def on(self, performative: Performative, handler: typing.Callable[[ACLMessage], None]) -> None:
        """Register ``handler`` for ACL messages with ``performative``."""
        self._handlers[performative] = handler

    def on_raw(self, handler: typing.Callable[[Envelope], None]) -> None:
        """Register a handler for non-ACL envelopes."""
        self._raw_handler = handler

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(
        self,
        receiver: str,
        message: ACLMessage | typing.Any,
        *,
        content_type: str = "acl",
        ontology: str = "",
        size_bits: float = 1024.0,
    ) -> Envelope:
        """Wrap ``message`` in an envelope and dispatch via the platform."""
        if self.platform is None:
            raise RuntimeError(f"agent {self.name!r} is not registered with a platform")
        env = Envelope(
            sender=self.name,
            receiver=receiver,
            content=message,
            content_type=content_type,
            ontology=ontology,
            size_bits=size_bits,
        )
        self.platform.dispatch(env)
        self.sent_count += 1
        return env

    def ask(self, receiver: str, performative: Performative, content: typing.Any = None) -> ACLMessage:
        """Convenience: build and send one ACL message; returns it."""
        msg = ACLMessage(performative=performative, sender=self.name, receiver=receiver, content=content)
        self.send(receiver, msg)
        return msg

    def reply(self, to: ACLMessage, performative: Performative, content: typing.Any = None) -> ACLMessage:
        """Convenience: send the ACL reply to ``to``."""
        msg = to.reply(performative, content)
        self.send(msg.receiver, msg)
        return msg

    # ------------------------------------------------------------------
    # delivery (called by the deputy)
    # ------------------------------------------------------------------
    def receive(self, envelope: Envelope) -> None:
        """Entry point for inbound envelopes; routes to handlers."""
        self.inbox_count += 1
        if envelope.content_type == "acl" and isinstance(envelope.content, ACLMessage):
            handler = self._handlers.get(envelope.content.performative)
            if handler is not None:
                handler(envelope.content)
            elif self._raw_handler is not None:
                self._raw_handler(envelope)
        elif self._raw_handler is not None:
            self._raw_handler(envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Agent({self.name!r})"
