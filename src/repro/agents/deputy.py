"""Agent deputies.

"Each service consists of two parts: an Agent Deputy and an Agent.  An
Agent Deputy acts as a front-end interface for the other agents in the
system ... each Agent Deputy must implement a deliver method.  This
delivery abstraction means that depending on their connectivity and
network QoS, agents can deploy deputies that will provide features of
transcoding or disconnection management." (§2)

Three deputies are provided:

* :class:`DirectDeputy` -- in-memory delivery with a fixed small delay
  (agents co-hosted on the wired side).
* :class:`NetworkDeputy` -- delivery over the simulated wireless network,
  with two optional QoS features:

  - *disconnection management*: envelopes addressed to a host that is
    currently down (churn, mobility partition) are buffered and flushed
    when the host returns, instead of being dropped;
  - *transcoding*: when the path to the host is long (low effective
    bandwidth), payloads are transcoded down by a configurable factor
    before transmission.
"""

from __future__ import annotations


from repro.simkernel import Simulator
from repro.agents.agent import Agent
from repro.agents.envelope import Envelope
from repro.network.message import Message
from repro.network.network import WirelessNetwork


class AgentDeputy:
    """Abstract deputy: the single ``deliver`` method Ronin mandates."""

    def __init__(self, agent: Agent) -> None:
        self.agent = agent
        self.delivered_count = 0
        self.dropped_count = 0

    def deliver(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` to the fronted agent (transport-specific)."""
        raise NotImplementedError

    @property
    def reachable(self) -> bool:
        """Whether the fronted agent can currently be delivered to."""
        return True


class DirectDeputy(AgentDeputy):
    """In-memory delivery with a constant small latency.

    Used for agents on the wired side (brokers on the base station, grid
    service agents) where transport cost is negligible relative to the
    wireless legs.
    """

    def __init__(self, agent: Agent, sim: Simulator, latency_s: float = 0.001) -> None:
        super().__init__(agent)
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency_s = latency_s

    def deliver(self, envelope: Envelope) -> None:
        def handoff() -> None:
            self.delivered_count += 1
            self.agent.receive(envelope)

        self.sim.schedule(self.latency_s, handoff, label=f"direct:{envelope.envelope_id}")


class NetworkDeputy(AgentDeputy):
    """Delivery over the wireless substrate, from the sender's host node.

    Parameters
    ----------
    agent:
        The fronted agent.
    network:
        The shared wireless network.
    host_node:
        Topology node the agent lives on.
    buffer_when_down:
        Enable disconnection management: queue envelopes while the host
        is down and flush on reconnect (checked every ``retry_s``).
    transcode_factor / transcode_hop_threshold:
        Enable transcoding: when the current route to the host exceeds
        the hop threshold, shrink envelopes by the factor before sending.
    max_retransmits:
        Link-loss ARQ: a message dropped by per-hop loss is resent up to
        this many times (the transport-level reliability the paper asks
        deputies to provide).  Route failures ("no-route", "dead-node")
        are not retransmitted -- they go to the down-buffer or are
        dropped, depending on ``buffer_when_down``.
    """

    def __init__(
        self,
        agent: Agent,
        network: WirelessNetwork,
        host_node: int,
        *,
        buffer_when_down: bool = False,
        retry_s: float = 1.0,
        transcode_factor: float = 1.0,
        transcode_hop_threshold: int = 3,
        max_buffer: int = 64,
        max_retransmits: int = 5,
    ) -> None:
        super().__init__(agent)
        if retry_s <= 0:
            raise ValueError("retry_s must be positive")
        if not 0.0 < transcode_factor <= 1.0:
            raise ValueError("transcode_factor must be in (0, 1]")
        self.network = network
        self.host_node = host_node
        self.buffer_when_down = buffer_when_down
        self.retry_s = retry_s
        self.transcode_factor = transcode_factor
        self.transcode_hop_threshold = transcode_hop_threshold
        self.max_buffer = max_buffer
        self.max_retransmits = max_retransmits
        self._buffer: list[tuple[int, Envelope]] = []
        self._retry_scheduled = False
        self.transcoded_count = 0
        self.buffered_count = 0
        self.retransmit_count = 0

    @property
    def reachable(self) -> bool:
        """True while the host node is up."""
        return self.network.topology.is_alive(self.host_node)

    def deliver(self, envelope: Envelope) -> None:
        """Deliver from the *sender's* host to this deputy's host.

        The platform calls ``deliver`` on the receiver's deputy, passing
        an envelope whose sender host is resolved via the platform and
        stored in ``envelope.sent_at`` bookkeeping; to keep the deputy
        self-contained we resolve the source node through the platform
        registry attached to the agent.
        """
        src = self._sender_node(envelope)
        self._deliver_from(src, envelope)

    def _sender_node(self, envelope: Envelope) -> int:
        platform = self.agent.platform
        if platform is not None:
            node = platform.host_node_of(envelope.sender)
            if node is not None:
                return node
        return self.host_node  # loopback fallback

    def _deliver_from(self, src: int, envelope: Envelope, attempt: int = 0) -> None:
        if not self.reachable:
            if self.buffer_when_down:
                self._enqueue(src, envelope)
            else:
                self.dropped_count += 1
            return

        env = envelope
        if self.transcode_factor < 1.0:
            path = self.network.topology.shortest_path(src, self.host_node)
            if path is not None and len(path) - 1 > self.transcode_hop_threshold:
                env = envelope.transcoded(self.transcode_factor)
                self.transcoded_count += 1

        message = Message(src=src, dst=self.host_node, size_bits=env.size_bits, kind="envelope", payload=env)

        def on_complete(receipt) -> None:
            if receipt.delivered:
                self.delivered_count += 1
                self.agent.receive(env)
            elif receipt.reason == "loss" and attempt < self.max_retransmits:
                self.retransmit_count += 1
                self._deliver_from(src, envelope, attempt + 1)
            elif self.buffer_when_down:
                self._enqueue(src, envelope)
            else:
                self.dropped_count += 1

        self.network.send(message, on_complete)

    # ------------------------------------------------------------------
    # disconnection management
    # ------------------------------------------------------------------
    def _enqueue(self, src: int, envelope: Envelope) -> None:
        if len(self._buffer) >= self.max_buffer:
            self.dropped_count += 1
            return
        self._buffer.append((src, envelope))
        self.buffered_count += 1
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.network.sim.schedule(self.retry_s, self._retry, label=f"deputy-retry:{self.agent.name}")

    def _retry(self) -> None:
        self._retry_scheduled = False
        if not self._buffer:
            return
        if not self.reachable:
            self._schedule_retry()
            return
        pending, self._buffer = self._buffer, []
        for src, envelope in pending:
            self._deliver_from(src, envelope)
