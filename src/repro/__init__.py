"""repro -- a reproduction of "Towards a Pervasive Grid" (IPPS 2003).

The package builds the full system the paper describes: a deterministic
discrete-event substrate (wireless network, sensors, wired grid), the
Ronin-style agent framework, semantic service discovery with syntactic
baselines, dynamic service composition, the §4 sensor-query system with
its six execution models, and the adaptive Decision Maker that partitions
computation between the sensor network and the Grid.

Quick start::

    from repro import PervasiveGridRuntime

    rt = PervasiveGridRuntime(n_sensors=49, area_m=60.0, seed=42)
    rt.query("SELECT AVG(value) FROM sensors WHERE room = 2")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured experiment index.
"""

from repro.core.runtime import PervasiveGridRuntime
from repro.workloads.scenarios import (
    defense_scenario,
    fire_scenario,
    health_scenario,
    intrusion_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "PervasiveGridRuntime",
    "fire_scenario",
    "health_scenario",
    "defense_scenario",
    "intrusion_scenario",
    "__version__",
]
