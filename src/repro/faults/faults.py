"""Scripted fault types.

"Services may be coming up and going down frequently in those
environments ... we will have to resort to fault tolerant compositions"
(§3).  Random exponential churn (:mod:`repro.network.churn`) exercises
*uncorrelated* failure; the fault types here script the *correlated*
failures a pervasive deployment actually sees -- a base station crashing,
a fire taking out every sensor in a wing, a WAN backhaul outage, a storm
degrading every radio link at once, or a building partitioning in two.

Each fault is a small single-use object with an injection time, an
optional recovery duration, and ``inject``/``recover`` methods acting on
a :class:`FaultDomain` (the bundle of subsystem handles the fault needs).
The :class:`~repro.faults.injector.FaultInjector` schedules them on the
shared simulator and emits every transition into the run's
:class:`~repro.simkernel.monitor.Monitor`.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

from repro.grid.uplink import Uplink
from repro.network.network import WirelessNetwork
from repro.network.topology import Topology
from repro.simkernel import Monitor, Simulator


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One entry of a run's fault timeline.

    Attributes
    ----------
    time:
        Virtual time of the transition.
    kind:
        The fault's ``kind`` tag (``"node-crash"``, ``"uplink-outage"``, ...).
    detail:
        Human-readable description of what was hit.
    phase:
        ``"inject"`` or ``"recover"``.
    """

    time: float
    kind: str
    detail: str
    phase: str


@dataclasses.dataclass
class FaultDomain:
    """Handles to the subsystems faults act on.

    All handles except ``sim`` and ``monitor`` are optional; a fault
    raises ``ValueError`` at injection time if the subsystem it needs is
    missing from the domain.

    Attributes
    ----------
    sim / monitor:
        The shared simulator and the run's instrument registry.
    topology:
        Needed by :class:`NodeCrash`, :class:`RegionBlackout`,
        :class:`Partition`.
    network:
        Needed by :class:`LinkDegradation` (its ``radio`` is swapped).
    uplink:
        Needed by :class:`UplinkOutage`.
    radio_holders:
        Extra objects whose ``.radio`` attribute must track the
        degraded/restored radio (e.g. a ``SensorDeployment``, whose radio
        the cost estimators read).  ``network`` is always included.
    on_node_change:
        Optional ``(node_id, up: bool) -> None`` callback fired for every
        node a fault takes down or brings back -- service registries
        subscribe here exactly as they do for churn.
    """

    sim: Simulator
    monitor: Monitor
    topology: Topology | None = None
    network: WirelessNetwork | None = None
    uplink: Uplink | None = None
    radio_holders: tuple = ()
    on_node_change: typing.Callable[[int, bool], None] | None = None

    def require(self, attr: str, fault_kind: str):
        """Fetch a subsystem handle, raising if the domain lacks it."""
        value = getattr(self, attr)
        if value is None:
            raise ValueError(f"fault {fault_kind!r} needs a {attr!r} in its FaultDomain")
        return value

    def all_radio_holders(self) -> list:
        """Every object whose ``.radio`` attribute faults must keep in sync."""
        holders = list(self.radio_holders)
        if self.network is not None and self.network not in holders:
            holders.insert(0, self.network)
        return holders

    def notify(self, node: int, up: bool) -> None:
        """Fire the node-change hook (no-op when unsubscribed)."""
        if self.on_node_change is not None:
            self.on_node_change(node, up)


class Fault:
    """One scripted fault: inject at ``at_s``, recover ``duration_s`` later.

    Parameters
    ----------
    at_s:
        Absolute virtual injection time.
    duration_s:
        Outage length; ``None`` means permanent (no recovery scheduled).

    Fault objects are **single-use**: injection captures state (which
    nodes were actually killed, the pre-fault radio) that recovery
    restores, so schedule a fresh instance per occurrence.
    """

    kind = "abstract"

    def __init__(self, at_s: float, duration_s: float | None = None) -> None:
        if not math.isfinite(at_s) or at_s < 0:
            raise ValueError(f"at_s must be finite and >= 0, got {at_s!r}")
        if duration_s is not None and (not math.isfinite(duration_s) or duration_s <= 0):
            raise ValueError(f"duration_s must be finite and > 0, got {duration_s!r}")
        self.at_s = float(at_s)
        self.duration_s = None if duration_s is None else float(duration_s)

    def describe(self) -> str:
        """Short human-readable target description for the timeline."""
        return ""

    def inject(self, domain: FaultDomain) -> None:
        """Apply the fault to the domain."""
        raise NotImplementedError

    def recover(self, domain: FaultDomain) -> None:
        """Undo the fault (default: nothing to undo)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f", duration={self.duration_s:.3g}s" if self.duration_s else ""
        return f"{type(self).__name__}(at={self.at_s:.3g}s{dur}, {self.describe()})"


class NodeCrash(Fault):
    """One node crashes (process dies, device destroyed) and may reboot.

    Only a node that was alive at injection time is killed, and only a
    node this fault killed is revived -- a crash never resurrects a node
    that died independently (battery depletion, churn).
    """

    kind = "node-crash"

    def __init__(self, node: int, at_s: float, duration_s: float | None = None) -> None:
        super().__init__(at_s, duration_s)
        self.node = int(node)
        self._killed = False

    def describe(self) -> str:
        return f"node {self.node}"

    def inject(self, domain: FaultDomain) -> None:
        topology = domain.require("topology", self.kind)
        if topology.is_alive(self.node):
            topology.kill(self.node)
            self._killed = True
            domain.notify(self.node, False)

    def recover(self, domain: FaultDomain) -> None:
        if not self._killed:
            return
        topology = domain.require("topology", self.kind)
        topology.revive(self.node)
        self._killed = False
        domain.notify(self.node, True)


class RegionBlackout(Fault):
    """Every living node within a disc goes down at once.

    Models the paper's fire scenario knocking out a building wing, or a
    localized power failure.  Victims are captured at injection time, so
    recovery revives exactly the nodes this blackout killed.
    """

    kind = "region-blackout"

    def __init__(
        self,
        center: tuple[float, float],
        radius_m: float,
        at_s: float,
        duration_s: float | None = None,
    ) -> None:
        super().__init__(at_s, duration_s)
        if radius_m <= 0:
            raise ValueError("radius_m must be positive")
        self.center = (float(center[0]), float(center[1]))
        self.radius_m = float(radius_m)
        self.victims: list[int] = []

    def describe(self) -> str:
        return f"disc r={self.radius_m:.3g}m at {self.center}"

    def inject(self, domain: FaultDomain) -> None:
        topology = domain.require("topology", self.kind)
        center = np.asarray(self.center, dtype=np.float64)
        dists = np.linalg.norm(topology.positions - center[None, :], axis=1)
        self.victims = [
            n for n in topology.alive_nodes() if dists[n] <= self.radius_m
        ]
        for node in self.victims:
            topology.kill(node)
            domain.notify(node, False)

    def recover(self, domain: FaultDomain) -> None:
        topology = domain.require("topology", self.kind)
        for node in self.victims:
            topology.revive(node)
            domain.notify(node, True)
        self.victims = []


class LinkDegradation(Fault):
    """Every radio link degrades at once (storm, jamming, interference).

    The network's :class:`~repro.network.radio.RadioModel` is swapped for
    a degraded copy on every radio holder in the domain, and restored on
    recovery -- cost estimators reading ``deployment.radio`` see the
    degradation too, so the Decision Maker can adapt mid-outage.

    Parameters
    ----------
    loss_multiplier / latency_multiplier / bandwidth_multiplier:
        Applied to the current radio's parameters.
    loss_floor:
        Minimum loss probability during the fault (lets a lossless radio
        become lossy; multipliers alone cannot leave zero).
    """

    kind = "link-degradation"

    def __init__(
        self,
        at_s: float,
        duration_s: float | None = None,
        *,
        loss_multiplier: float = 1.0,
        latency_multiplier: float = 1.0,
        bandwidth_multiplier: float = 1.0,
        loss_floor: float = 0.0,
    ) -> None:
        super().__init__(at_s, duration_s)
        if loss_multiplier < 0 or latency_multiplier < 0 or bandwidth_multiplier <= 0:
            raise ValueError("multipliers must be positive (loss/latency may be 0)")
        if not 0.0 <= loss_floor < 1.0:
            raise ValueError("loss_floor must be in [0, 1)")
        self.loss_multiplier = float(loss_multiplier)
        self.latency_multiplier = float(latency_multiplier)
        self.bandwidth_multiplier = float(bandwidth_multiplier)
        self.loss_floor = float(loss_floor)
        self._saved: list[tuple[typing.Any, typing.Any]] = []

    def describe(self) -> str:
        return (
            f"loss x{self.loss_multiplier:.3g} (floor {self.loss_floor:.3g}), "
            f"latency x{self.latency_multiplier:.3g}, bw x{self.bandwidth_multiplier:.3g}"
        )

    def inject(self, domain: FaultDomain) -> None:
        holders = domain.all_radio_holders()
        if not holders:
            raise ValueError(f"fault {self.kind!r} needs a network or radio_holders in its FaultDomain")
        self._saved = [(holder, holder.radio) for holder in holders]
        for holder, radio in self._saved:
            holder.radio = dataclasses.replace(
                radio,
                loss_prob=min(max(radio.loss_prob * self.loss_multiplier, self.loss_floor), 0.999),
                latency_s=radio.latency_s * self.latency_multiplier,
                bandwidth_bps=radio.bandwidth_bps * self.bandwidth_multiplier,
            )

    def recover(self, domain: FaultDomain) -> None:
        for holder, radio in self._saved:
            holder.radio = radio
        self._saved = []


class UplinkOutage(Fault):
    """The WAN backhaul goes dark for a window.

    Drives :meth:`repro.grid.uplink.Uplink.set_online`, so uplink
    subscribers observe both edges of the outage window and deferred
    transfers resume on recovery (when the uplink queues while offline).
    """

    kind = "uplink-outage"

    def describe(self) -> str:
        return "WAN backhaul"

    def inject(self, domain: FaultDomain) -> None:
        domain.require("uplink", self.kind).set_online(False)

    def recover(self, domain: FaultDomain) -> None:
        domain.require("uplink", self.kind).set_online(True)


class Partition(Fault):
    """All links between two node groups are severed (the network splits).

    Unlike a crash, partitioned nodes stay alive and keep serving their
    own side -- exactly the paper's "frequent disconnections" that leave
    each fragment operating on local information.
    """

    kind = "partition"

    def __init__(
        self,
        group_a: typing.Iterable[int],
        group_b: typing.Iterable[int],
        at_s: float,
        duration_s: float | None = None,
    ) -> None:
        super().__init__(at_s, duration_s)
        self.group_a = sorted(set(int(n) for n in group_a))
        self.group_b = sorted(set(int(n) for n in group_b))
        if not self.group_a or not self.group_b:
            raise ValueError("both partition groups must be non-empty")
        if set(self.group_a) & set(self.group_b):
            raise ValueError("partition groups must be disjoint")

    def describe(self) -> str:
        return f"{len(self.group_a)} vs {len(self.group_b)} nodes"

    def inject(self, domain: FaultDomain) -> None:
        domain.require("topology", self.kind).block_links(self.group_a, self.group_b)

    def recover(self, domain: FaultDomain) -> None:
        domain.require("topology", self.kind).unblock_links(self.group_a, self.group_b)
