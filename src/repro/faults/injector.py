"""Deterministic fault scheduling.

The :class:`FaultInjector` owns a :class:`~repro.faults.faults.FaultDomain`
and schedules :class:`~repro.faults.faults.Fault` objects on the shared
simulator, recording every inject/recover transition both in an in-memory
timeline and in the run's :class:`~repro.simkernel.monitor.Monitor`
(counters ``faults.injected`` / ``faults.recovered`` / ``faults.<kind>``
and the ``faults.active`` series).

Schedules are plain lists of faults, so they can be scripted by hand or
generated from a named RNG substream (:func:`crash_schedule`,
:func:`flapping_schedule`) -- the reproducibility discipline is the same
as everywhere else: same root seed, same stream name, same fault
timeline, bit for bit.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.faults.faults import Fault, FaultDomain, FaultEvent, NodeCrash
from repro.observability.tracer import NOOP_TRACER, Tracer


class FaultInjector:
    """Schedules faults on the simulator and records the fault timeline.

    Parameters
    ----------
    domain:
        Subsystem handles the scheduled faults act on.

    Attributes
    ----------
    timeline:
        Chronological list of :class:`FaultEvent` transitions observed so
        far (both injections and recoveries).
    active:
        Number of currently-injected, not-yet-recovered faults.
    """

    def __init__(self, domain: FaultDomain, tracer: Tracer | None = None) -> None:
        self.domain = domain
        self.timeline: list[FaultEvent] = []
        self.active = 0
        self._scheduled = 0
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    def schedule(self, fault: Fault) -> None:
        """Arm one fault: inject at ``fault.at_s``, recover after its
        ``duration_s`` (if any).  Times in the past fire immediately."""
        sim = self.domain.sim
        delay = max(fault.at_s - sim.now, 0.0)
        sim.schedule(delay, lambda: self._inject(fault), label=f"fault:{fault.kind}")
        self._scheduled += 1

    def schedule_all(self, faults: typing.Iterable[Fault]) -> int:
        """Arm every fault in an iterable; returns how many were armed."""
        count = 0
        for fault in faults:
            self.schedule(fault)
            count += 1
        return count

    # ------------------------------------------------------------------
    def _record(self, fault: Fault, phase: str) -> None:
        event = FaultEvent(
            time=self.domain.sim.now,
            kind=fault.kind,
            detail=fault.describe(),
            phase=phase,
        )
        self.timeline.append(event)
        monitor = self.domain.monitor
        monitor.counter(f"faults.{phase}ed" if phase == "inject" else "faults.recovered").add(1)
        if phase == "inject":
            monitor.counter(f"faults.{fault.kind}").add(1)
        monitor.series("faults.active").record(self.domain.sim.now, float(self.active))
        monitor.gauge("faults.active").set(float(self.active))
        if self.tracer.enabled:
            self.tracer.event(f"faults.{phase}", kind=fault.kind,
                              detail=fault.describe(), active=self.active)

    def _inject(self, fault: Fault) -> None:
        fault.inject(self.domain)
        self.active += 1
        self._record(fault, "inject")
        if fault.duration_s is not None:
            self.domain.sim.schedule(
                fault.duration_s, lambda: self._recover(fault), label=f"recover:{fault.kind}"
            )

    def _recover(self, fault: Fault) -> None:
        fault.recover(self.domain)
        self.active = max(0, self.active - 1)
        self._record(fault, "recover")


# ----------------------------------------------------------------------
# Deterministic schedule generators
# ----------------------------------------------------------------------

def crash_schedule(
    rng: np.random.Generator,
    nodes: typing.Sequence[int],
    horizon_s: float,
    rate_per_s: float,
    mean_downtime_s: float,
) -> list[NodeCrash]:
    """Poisson crash storm: exponential inter-crash gaps at ``rate_per_s``,
    uniform victim choice, exponential downtimes.

    Fully determined by the generator state -- draw ``rng`` from a named
    :class:`~repro.simkernel.rng.RandomStreams` substream and two runs
    produce identical schedules.
    """
    if not nodes:
        raise ValueError("crash_schedule needs at least one candidate node")
    if rate_per_s <= 0 or mean_downtime_s <= 0 or horizon_s <= 0:
        raise ValueError("rate_per_s, mean_downtime_s and horizon_s must be positive")
    faults: list[NodeCrash] = []
    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        victim = int(nodes[int(rng.integers(len(nodes)))])
        downtime = max(float(rng.exponential(mean_downtime_s)), 1e-3)
        faults.append(NodeCrash(victim, at_s=t, duration_s=downtime))
        t += float(rng.exponential(1.0 / rate_per_s))
    return faults


def flapping_schedule(
    node: int,
    horizon_s: float,
    up_s: float,
    down_s: float,
    start_s: float = 0.0,
) -> list[NodeCrash]:
    """Deterministic square-wave flapping: ``node`` crashes every
    ``up_s + down_s`` seconds for ``down_s`` at a time, starting at
    ``start_s + up_s``.  The pathological client for circuit breakers."""
    if up_s <= 0 or down_s <= 0 or horizon_s <= 0:
        raise ValueError("up_s, down_s and horizon_s must be positive")
    faults: list[NodeCrash] = []
    t = start_s + up_s
    while t < horizon_s:
        faults.append(NodeCrash(node, at_s=t, duration_s=down_s))
        t += up_s + down_s
    return faults
