"""Scripted fault injection for resilience experiments.

The paper argues a pervasive grid must tolerate services "coming up and
going down frequently" (§3).  This package turns that claim into
controlled experiments: deterministic, named-RNG fault schedules of
correlated failures (node crashes, regional blackouts, radio
degradation, WAN backhaul outages, network partitions) injected into a
running simulation, with every transition recorded in the run's
``Monitor``.
"""

from repro.faults.faults import (
    Fault,
    FaultDomain,
    FaultEvent,
    LinkDegradation,
    NodeCrash,
    Partition,
    RegionBlackout,
    UplinkOutage,
)
from repro.faults.injector import FaultInjector, crash_schedule, flapping_schedule

__all__ = [
    "Fault",
    "FaultDomain",
    "FaultEvent",
    "FaultInjector",
    "LinkDegradation",
    "NodeCrash",
    "Partition",
    "RegionBlackout",
    "UplinkOutage",
    "crash_schedule",
    "flapping_schedule",
]
