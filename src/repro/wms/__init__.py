"""Workload management: central task queues drained by pilot workers.

The DIRAC-style layer between query traffic and the grid: producers
submit :class:`Task` batches into a :class:`TaskQueueService` (per-class
priority queues, weighted fair-share draining), and a
:class:`PilotWorker` per site *pulls* work whose declarative
:class:`TaskRequirements` match the site's live
:class:`ResourceDescription`.  :class:`WorkloadManager` bundles the
whole thing for examples and benchmarks.  Everything is deterministic:
serial and sharded trial runs of the same workload are bit-identical.
"""

from repro.wms.matching import (
    NO_REQUIREMENTS,
    ResourceDescription,
    TaskRequirements,
    describe,
)
from repro.wms.pilot import PilotWorker
from repro.wms.queues import TaskQueueService
from repro.wms.service import WorkloadManager
from repro.wms.task import DEFAULT_CLASSES, TASK_STATES, PriorityClass, Task

__all__ = [
    "DEFAULT_CLASSES",
    "NO_REQUIREMENTS",
    "PilotWorker",
    "PriorityClass",
    "ResourceDescription",
    "TASK_STATES",
    "Task",
    "TaskQueueService",
    "TaskRequirements",
    "WorkloadManager",
    "describe",
]
