"""The workload-management facade: queue + pilot fleet in one object.

:class:`WorkloadManager` is what examples and benchmarks build: it owns
a :class:`~repro.wms.queues.TaskQueueService`, spawns one
:class:`~repro.wms.pilot.PilotWorker` per grid site, and offers the two
submission surfaces the pervasive grid needs -- raw compute tasks
(:meth:`submit_compute`) and §4 query text (:meth:`submit_query`, which
wraps a :class:`~repro.queries.executor.QueryExecutor` submission as a
queued task so fleets of handheld users share the grid under the
fair-share policy instead of executing synchronously).
"""

from __future__ import annotations

import typing

from repro.grid.resource import GridResource
from repro.observability.tracer import Tracer
from repro.simkernel import Monitor, Simulator
from repro.wms.pilot import PilotWorker
from repro.wms.queues import TaskQueueService
from repro.wms.task import DEFAULT_CLASSES, PriorityClass, Task
from repro.wms.matching import NO_REQUIREMENTS, TaskRequirements

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.queries.executor import QueryExecutor, QueryOutcome
    from repro.resilience.breaker import BreakerBoard


class WorkloadManager:
    """A DIRAC-style WMS over a fleet of grid sites.

    Parameters
    ----------
    sim / resources:
        The shared simulator and the sites to run pilots on.
    classes:
        Priority-class catalog (default interactive/standard/bulk).
    monitor / tracer:
        Observability sinks, forwarded to the queue service.
    breakers:
        Optional breaker board; unhealthy sites stop matching
        health-requiring tasks.
    executor:
        Optional query executor backing :meth:`submit_query`.
    max_attempts / starvation_s:
        Forwarded to the pilots and the queue service respectively.
    """

    def __init__(
        self,
        sim: Simulator,
        resources: typing.Sequence[GridResource],
        *,
        classes: typing.Sequence[PriorityClass] = DEFAULT_CLASSES,
        monitor: Monitor | None = None,
        tracer: Tracer | None = None,
        breakers: "BreakerBoard | None" = None,
        executor: "QueryExecutor | None" = None,
        max_attempts: int = 3,
        starvation_s: float = 120.0,
    ) -> None:
        if not resources:
            raise ValueError("the workload manager needs at least one site")
        self.sim = sim
        self.executor = executor
        self.queue = TaskQueueService(sim, classes, monitor=monitor,
                                      tracer=tracer, starvation_s=starvation_s)
        self.pilots = [
            PilotWorker(sim, self.queue, resource, breakers=breakers,
                        max_attempts=max_attempts)
            for resource in resources
        ]
        self._started = False

    def start(self) -> "WorkloadManager":
        """Start every pilot (idempotent); returns self for chaining."""
        if not self._started:
            self._started = True
            for pilot in self.pilots:
                pilot.start()
        return self

    # ------------------------------------------------------------------
    # submission surfaces
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Task:
        """Queue a pre-built task (pilots must be started to drain it)."""
        self.start()
        return self.queue.submit(task)

    def submit_bulk(self, tasks: typing.Sequence[Task]) -> int:
        """Queue a batch of pre-built tasks; returns the batch size."""
        self.start()
        return self.queue.submit_bulk(tasks)

    def submit_compute(
        self,
        ops: float,
        *,
        priority_class: str = "standard",
        owner: str = "",
        name: str = "",
        requirements: TaskRequirements = NO_REQUIREMENTS,
        input_bits: float = 0.0,
        output_bits: float = 0.0,
    ) -> Task:
        """Queue a pure compute task; the claiming pilot runs it on-site."""
        return self.submit(Task(
            ops=ops, priority_class=priority_class, owner=owner, name=name,
            requirements=requirements, input_bits=input_bits,
            output_bits=output_bits,
        ))

    def submit_query(
        self,
        query_text: str,
        *,
        priority_class: str = "interactive",
        owner: str = "",
        ops: float = 1.0,
        requirements: TaskRequirements = NO_REQUIREMENTS,
        on_complete: "typing.Callable[[list[QueryOutcome]], None] | None" = None,
    ) -> Task:
        """Queue a §4 query as a task; it executes when a pilot claims it.

        ``ops`` is the fair-share charge for the query (an estimate -- the
        actual work runs through the executor's own cost model).  The
        task succeeds when the query produced outcomes and its final
        epoch succeeded.
        """
        if self.executor is None:
            raise RuntimeError("WorkloadManager built without an executor; "
                               "pass executor= to submit queries")
        executor = self.executor

        def run(done: typing.Callable[[bool], None]) -> None:
            def finished(outcomes: "list[QueryOutcome]") -> None:
                ok = bool(outcomes) and outcomes[-1].success
                done(ok)
                if on_complete is not None:
                    on_complete(outcomes)

            executor.submit(query_text, finished)

        return self.submit(Task(
            ops=ops, priority_class=priority_class, owner=owner,
            name=query_text, requirements=requirements, run=run,
        ))

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, typing.Any]:
        """Deterministic roll-up: per-class tallies plus pilot activity."""
        return {
            "classes": self.queue.class_stats(),
            "depth": self.queue.depth(),
            "pilots": {
                p.name: {"tasks_run": float(p.tasks_run),
                         "tasks_failed": float(p.tasks_failed)}
                for p in self.pilots
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkloadManager(sites={len(self.pilots)}, "
                f"depth={self.queue.depth()})")
