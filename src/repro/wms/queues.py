"""The central task-queue service: priority classes + weighted fair share.

The DIRAC lineage in one object: producers (handheld users, base
stations, benchmarks) push :class:`~repro.wms.task.Task` batches into
per-class FIFO queues; pilots pull with :meth:`TaskQueueService.claim`,
offering their site's :class:`~repro.wms.matching.ResourceDescription`.
The service decides *which class* serves next by start-time fair
queuing: every class carries a virtual start tag that advances by
``ops / weight`` per drained task, so over any contended interval the
drained *work* per class converges to the weight ratio -- heavy bulk
tasks cannot starve light interactive ones, and an idle class re-enters
at the current virtual clock instead of cashing in unbounded credit.

Everything is deterministic: queues are FIFO, the class pick is
``min((tag, declaration order))``, parked pilots wake in parking order
through ordinary simulator events, and no RNG or wall clock is ever
consulted -- serial and sharded runs of the same workload are
bit-identical (the E15 determinism gate).

Observability: ``wms.*`` counters/histograms/series on the attached
monitor (see :mod:`repro.observability.metrics`), a ``wms.dispatch``
trace event per claim and a ``wms.starved`` event whenever a class's
head task first exceeds the starvation threshold.
"""

from __future__ import annotations

import collections
import math
import typing

from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.simkernel import Monitor, Simulator
from repro.wms.matching import ResourceDescription
from repro.wms.task import DEFAULT_CLASSES, PriorityClass, Task


class _ClassQueue:
    """One priority class's FIFO plus its fair-share state."""

    __slots__ = ("spec", "order", "tasks", "vtag", "ops_submitted",
                 "ops_completed", "submitted", "dispatched", "completed",
                 "failed", "starving")

    def __init__(self, spec: PriorityClass, order: int) -> None:
        self.spec = spec
        self.order = order
        self.tasks: collections.deque[Task] = collections.deque()
        self.vtag = 0.0  # virtual start tag (ops / weight units)
        self.ops_submitted = 0.0
        self.ops_completed = 0.0
        self.submitted = 0
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.starving = False  # inside a starvation episode


class TaskQueueService:
    """Bulk submission in, fair-share matched claims out.

    Parameters
    ----------
    sim:
        The shared simulator (timestamps, pilot wake-ups).
    classes:
        Priority-class catalog (declaration order is the deterministic
        tie-break); defaults to interactive/standard/bulk at 6/3/1.
    monitor / tracer:
        Observability sinks; both optional/no-op.
    starvation_s:
        A class whose head task has waited longer than this opens a
        starvation episode: one ``wms.tasks_starved`` count and one
        ``wms.starved`` trace event per episode (cleared when the class
        next dispatches or empties).
    """

    def __init__(
        self,
        sim: Simulator,
        classes: typing.Sequence[PriorityClass] = DEFAULT_CLASSES,
        *,
        monitor: Monitor | None = None,
        tracer: Tracer | None = None,
        starvation_s: float = 120.0,
    ) -> None:
        if not classes:
            raise ValueError("the queue service needs at least one priority class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError("priority class names must be unique")
        if not (math.isfinite(starvation_s) and starvation_s > 0):
            raise ValueError("starvation_s must be finite and positive")
        self.sim = sim
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.starvation_s = float(starvation_s)
        self._classes: dict[str, _ClassQueue] = {
            spec.name: _ClassQueue(spec, i) for i, spec in enumerate(classes)
        }
        self._vclock = 0.0  # virtual time of the last dispatch
        self._waiters: collections.deque[typing.Callable[[], None]] = collections.deque()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def classes(self) -> tuple[PriorityClass, ...]:
        """The class catalog, in declaration order."""
        return tuple(c.spec for c in self._classes.values())

    def depth(self, priority_class: str | None = None) -> int:
        """Waiting tasks in one class (or in total)."""
        if priority_class is not None:
            return len(self._class(priority_class).tasks)
        return sum(len(c.tasks) for c in self._classes.values())

    def class_stats(self) -> dict[str, dict[str, float]]:
        """Per-class tallies (deterministic; keyed by class name)."""
        return {
            name: {
                "weight": c.spec.weight,
                "waiting": float(len(c.tasks)),
                "submitted": float(c.submitted),
                "dispatched": float(c.dispatched),
                "completed": float(c.completed),
                "failed": float(c.failed),
                "ops_submitted": c.ops_submitted,
                "ops_completed": c.ops_completed,
            }
            for name, c in self._classes.items()
        }

    def _class(self, name: str) -> _ClassQueue:
        cq = self._classes.get(name)
        if cq is None:
            raise KeyError(f"unknown priority class {name!r} "
                           f"(have {sorted(self._classes)})")
        return cq

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Task:
        """Enqueue one task; returns it (stamped)."""
        self.submit_bulk((task,))
        return task

    def submit_bulk(self, tasks: typing.Sequence[Task]) -> int:
        """Enqueue a batch atomically (one depth sample, one wake pass).

        Bulk submission is the high-traffic entry point: a base station
        flushing a burst of handheld queries costs O(batch) appends, not
        O(batch) bookkeeping rounds.  Returns the batch size.
        """
        now = self.sim.now
        for task in tasks:
            cq = self._class(task.priority_class)
            if not cq.tasks:
                # an idle class re-enters at the current virtual clock:
                # no credit accumulates while a class has nothing queued
                cq.vtag = max(cq.vtag, self._vclock)
            task.state = "waiting"
            task.submitted_at = now
            cq.tasks.append(task)
            cq.submitted += 1
            cq.ops_submitted += task.ops
        if self.monitor is not None:
            self.monitor.counter("wms.tasks_submitted").add(len(tasks))
            self.monitor.series("wms.queue_depth").record(now, float(self.depth()))
        self._wake(len(tasks))
        return len(tasks)

    def requeue(self, task: Task) -> None:
        """Return a failed/preempted task to the tail of its class queue.

        The original ``submitted_at`` is preserved so queue-latency
        accounting keeps charging the full wait to the task.
        """
        cq = self._class(task.priority_class)
        if not cq.tasks:
            cq.vtag = max(cq.vtag, self._vclock)
        task.state = "waiting"
        task.site = ""
        cq.tasks.append(task)
        if self.monitor is not None:
            self.monitor.counter("wms.tasks_requeued").add(1)
        self._wake(1)

    # ------------------------------------------------------------------
    # the pull half: matched claims
    # ------------------------------------------------------------------
    def claim(self, desc: ResourceDescription) -> Task | None:
        """The next task ``desc`` may run, under fair-share order.

        Classes are considered in ascending ``(virtual tag, declaration
        order)``; within a class only the head task is offered (strict
        FIFO -- a head whose requirements reject this site blocks its
        class for this claim, it is never overtaken by queue-jumping).
        Returns ``None`` when no head task matches.
        """
        now = self.sim.now
        self._check_starvation(now)
        order = sorted(
            (c for c in self._classes.values() if c.tasks),
            key=lambda c: (c.vtag, c.order),
        )
        for cq in order:
            head = cq.tasks[0]
            if not head.requirements.accepts(desc):
                continue
            cq.tasks.popleft()
            self._vclock = cq.vtag
            cq.vtag += max(head.ops, 1.0) / cq.spec.weight
            cq.dispatched += 1
            cq.starving = False
            head.state = "running"
            head.dispatched_at = now
            head.site = desc.name
            head.attempts += 1
            if self.monitor is not None:
                self.monitor.counter("wms.tasks_dispatched").add(1)
                self.monitor.histogram("wms.queue_latency").observe(head.queue_wait_s)
                self.monitor.series("wms.queue_depth").record(now, float(self.depth()))
            if self.tracer.enabled:
                self.tracer.event("wms.dispatch", task_id=head.task_id,
                                  priority_class=head.priority_class,
                                  site=desc.name, wait_s=head.queue_wait_s,
                                  attempt=head.attempts, depth=self.depth())
            return head
        return None

    def report(self, task: Task, success: bool) -> None:
        """A pilot finished ``task``; close out its accounting."""
        cq = self._class(task.priority_class)
        task.state = "done" if success else "failed"
        task.finished_at = self.sim.now
        if success:
            cq.completed += 1
            cq.ops_completed += task.ops
        else:
            cq.failed += 1
        if self.monitor is not None:
            name = "wms.tasks_completed" if success else "wms.tasks_failed"
            self.monitor.counter(name).add(1)
            self.monitor.histogram("wms.turnaround").observe(task.turnaround_s)

    # ------------------------------------------------------------------
    # pilot parking
    # ------------------------------------------------------------------
    def park(self, wake: typing.Callable[[], None]) -> None:
        """Register an idle pilot's wake callback (FIFO wake order).

        Parked pilots cost nothing while the queue is empty; each
        submitted task wakes at most one pilot (through a zero-delay
        simulator event, so wake order is part of the deterministic
        event order).
        """
        self._waiters.append(wake)

    def _wake(self, n: int) -> None:
        woken = 0
        while self._waiters and woken < n:
            wake = self._waiters.popleft()
            self.sim.schedule(0.0, wake, label="wms.wake")
            woken += 1

    # ------------------------------------------------------------------
    # starvation watch
    # ------------------------------------------------------------------
    def _check_starvation(self, now: float) -> None:
        for cq in self._classes.values():
            if not cq.tasks:
                cq.starving = False
                continue
            wait = now - cq.tasks[0].submitted_at
            if wait > self.starvation_s and not cq.starving:
                cq.starving = True
                if self.monitor is not None:
                    self.monitor.counter("wms.tasks_starved").add(1)
                if self.tracer.enabled:
                    self.tracer.event("wms.starved",
                                      priority_class=cq.spec.name,
                                      wait_s=wait, depth=len(cq.tasks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = {name: len(c.tasks) for name, c in self._classes.items()}
        return f"TaskQueueService(depth={depths}, parked={len(self._waiters)})"
