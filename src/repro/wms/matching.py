"""Declarative job→resource matching.

DIRAC-style matching is *pull*-shaped: a pilot describes the site it
runs on (:class:`ResourceDescription`, built from the live
:class:`~repro.grid.resource.GridResource` state plus the breaker
board's health view) and asks the central queue for work whose
:class:`TaskRequirements` that description satisfies.  Both sides are
plain declarative data, so matching decisions are auditable and
deterministic -- no callback into user code decides placement.
"""

from __future__ import annotations

import dataclasses
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grid.resource import GridResource
    from repro.resilience.breaker import BreakerBoard


@dataclasses.dataclass(frozen=True)
class ResourceDescription:
    """A pilot's offer: what its site looks like *right now*.

    Attributes
    ----------
    name:
        Site name (matches ``GridResource.name``).
    ops_per_second:
        The site's effective throughput.
    backlog_s:
        Seconds of queued work ahead of a new submission.
    healthy:
        False while the site's circuit breaker blocks traffic.
    """

    name: str
    ops_per_second: float
    backlog_s: float = 0.0
    healthy: bool = True


def describe(resource: "GridResource",
             breakers: "BreakerBoard | None" = None) -> ResourceDescription:
    """Build a :class:`ResourceDescription` from live site state.

    ``breakers`` (when given) contributes the health bit: a site whose
    breaker currently blocks traffic advertises ``healthy=False`` and
    stops matching health-requiring tasks until the breaker half-opens.
    """
    healthy = True
    if breakers is not None:
        healthy = resource.name not in breakers.blocked_providers()
    return ResourceDescription(
        name=resource.name,
        ops_per_second=resource.ops_per_second,
        backlog_s=resource.backlog_s,
        healthy=healthy,
    )


@dataclasses.dataclass(frozen=True)
class TaskRequirements:
    """A task's demands: which site descriptions may claim it.

    Attributes
    ----------
    min_ops_rate:
        Minimum site throughput (ops/s); slow sites never match.
    max_backlog_s:
        Maximum queued work the task tolerates ahead of it.
    require_healthy:
        Refuse sites whose breaker currently blocks traffic.
    sites:
        Optional allowlist of site names (None = any site).
    """

    min_ops_rate: float = 0.0
    max_backlog_s: float = math.inf
    require_healthy: bool = True
    sites: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.min_ops_rate < 0:
            raise ValueError("min_ops_rate must be non-negative")
        if not self.max_backlog_s >= 0:
            raise ValueError("max_backlog_s must be non-negative")

    def accepts(self, desc: ResourceDescription) -> bool:
        """Does ``desc`` satisfy every requirement?"""
        if desc.ops_per_second < self.min_ops_rate:
            return False
        if desc.backlog_s > self.max_backlog_s:
            return False
        if self.require_healthy and not desc.healthy:
            return False
        if self.sites is not None and desc.name not in self.sites:
            return False
        return True


#: The permissive default: any healthy site may claim the task.
NO_REQUIREMENTS = TaskRequirements()
