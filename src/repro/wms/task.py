"""Task descriptions for the workload-management service.

A :class:`Task` is the WMS's unit of work: what a handheld user's query
becomes once it enters the central queue.  Unlike a
:class:`~repro.grid.job.ComputeJob` (which is already bound to a site),
a task carries *who* wants the work (``owner``), *how urgent* it is
(``priority_class``), and *what it needs from a site*
(:class:`~repro.wms.matching.TaskRequirements`) -- the declarative half
of the DIRAC-style job→resource matching the pilots perform.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing

from repro.grid.job import ComputeJob
from repro.wms.matching import NO_REQUIREMENTS, TaskRequirements

#: Task lifecycle states, in order.
TASK_STATES = ("waiting", "running", "done", "failed")

_task_ids = itertools.count()


@dataclasses.dataclass(frozen=True)
class PriorityClass:
    """One fair-share class: a name and a service weight.

    Weights are relative shares of *work* (operations), not task counts:
    a class with weight 6 drains six times the ops per unit of contended
    time as a class with weight 1.  Order of declaration is the
    deterministic tie-break when virtual times collide.
    """

    name: str
    weight: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority classes need a name")
        if not (math.isfinite(self.weight) and self.weight > 0):
            raise ValueError("weight must be finite and positive")


#: The default three-tier catalog: handheld interactive queries beat
#: standing monitoring queries beat bulk analytics backfills.
DEFAULT_CLASSES = (
    PriorityClass("interactive", 6.0),
    PriorityClass("standard", 3.0),
    PriorityClass("bulk", 1.0),
)


@dataclasses.dataclass
class Task:
    """One unit of queued work.

    Attributes
    ----------
    ops:
        Abstract operation count (the fair-share currency and, for
        compute tasks, the :class:`~repro.grid.job.ComputeJob` size).
    priority_class:
        Name of the :class:`PriorityClass` this task drains under.
    owner:
        The submitting user/handheld id (fairness accounting groups by
        it).
    requirements:
        Declarative site constraints matched against each pilot's
        :class:`~repro.wms.matching.ResourceDescription` at claim time.
    run:
        Optional payload: ``run(done)`` performs the work itself (e.g.
        a :class:`~repro.queries.executor.QueryExecutor` submission) and
        calls ``done(success)`` when finished.  ``None`` means a pure
        compute task: the claiming pilot turns it into a
        :class:`~repro.grid.job.ComputeJob` on its own site.
    input_bits / output_bits:
        Data shipped with a compute task (forwarded to the job).
    job:
        The underlying :class:`~repro.grid.job.ComputeJob`, created
        lazily by the first claiming pilot.  It rides along through
        requeues so ``checkpoint_fraction`` survives site failures and a
        re-submission only pays for the remaining work.
    state / submitted_at / dispatched_at / finished_at / site / attempts:
        Lifecycle bookkeeping stamped by the queue service and pilots.
    """

    ops: float
    priority_class: str = "standard"
    owner: str = ""
    name: str = ""
    requirements: TaskRequirements = NO_REQUIREMENTS
    run: typing.Callable[[typing.Callable[[bool], None]], None] | None = None
    input_bits: float = 0.0
    output_bits: float = 0.0
    job: ComputeJob | None = None
    task_id: int = dataclasses.field(default_factory=lambda: next(_task_ids))
    state: str = "waiting"
    submitted_at: float = math.nan
    dispatched_at: float = math.nan
    finished_at: float = math.nan
    site: str = ""
    attempts: int = 0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.ops) and self.ops >= 0):
            raise ValueError("ops must be finite and non-negative")
        if self.input_bits < 0 or self.output_bits < 0:
            raise ValueError("bit counts must be non-negative")

    @property
    def queue_wait_s(self) -> float:
        """Seconds between submission and dispatch (nan until dispatched)."""
        return self.dispatched_at - self.submitted_at

    @property
    def turnaround_s(self) -> float:
        """Seconds between submission and completion (nan until done)."""
        return self.finished_at - self.submitted_at
