"""Pilot-style workers: sites pull matched work from the central queue.

A :class:`PilotWorker` is the inversion the DIRAC model brings: instead
of a scheduler *pushing* jobs at sites, each site runs a lightweight
pilot that *pulls* the next matching task whenever it has capacity.  The
pilot describes its site (rate, backlog, breaker health) on every pull,
so matching always sees fresh state, and it runs one task at a time --
backlog accumulates in the central queue where the fair-share policy
can see it, not in per-site FIFOs where it cannot.

Pilots are ordinary simulator actors: they start via a zero-delay event,
park on the queue when it is empty, and wake through scheduled events,
so the whole fleet's behaviour is part of the deterministic event order.
"""

from __future__ import annotations

import typing

from repro.grid.job import ComputeJob, JobResult
from repro.grid.resource import GridResource
from repro.simkernel import Simulator
from repro.wms.matching import describe
from repro.wms.queues import TaskQueueService
from repro.wms.task import Task

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.breaker import BreakerBoard


class PilotWorker:
    """One site's pull loop against the central task queue.

    Parameters
    ----------
    sim / queue / resource:
        The shared simulator, the central queue, and the site this pilot
        serves.
    breakers:
        Optional breaker board; its health view flows into the pilot's
        :class:`~repro.wms.matching.ResourceDescription` on every pull.
    max_attempts:
        Compute tasks that fail at this site are requeued (centrally,
        preserving their submission stamp) until they have been tried
        this many times in total; after that the failure is final.
    """

    def __init__(
        self,
        sim: Simulator,
        queue: TaskQueueService,
        resource: GridResource,
        *,
        breakers: "BreakerBoard | None" = None,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.sim = sim
        self.queue = queue
        self.resource = resource
        self.breakers = breakers
        self.max_attempts = int(max_attempts)
        self.tasks_run = 0
        self.tasks_failed = 0
        self._started = False
        self._busy = False

    @property
    def name(self) -> str:
        """The pilot's site name."""
        return self.resource.name

    def start(self) -> None:
        """Begin pulling (idempotent; first pull is a zero-delay event)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(0.0, self._pull, label=f"pilot:{self.name}:start")

    # ------------------------------------------------------------------
    # the pull loop
    # ------------------------------------------------------------------
    def _pull(self) -> None:
        if self._busy:
            return
        task = self.queue.claim(describe(self.resource, self.breakers))
        if task is None:
            self.queue.park(self._pull)
            return
        self._busy = True
        if task.run is not None:
            task.run(lambda success, _t=task: self._finish(_t, success))
        else:
            if task.job is None:
                # created once and carried across requeues, so the
                # checkpoint survives site failures
                task.job = ComputeJob(ops=task.ops, input_bits=task.input_bits,
                                      output_bits=task.output_bits, name=task.name)
            self.resource.submit(
                task.job, lambda result, _t=task: self._job_done(_t, result))

    def _job_done(self, task: Task, result: JobResult) -> None:
        if not result.success and task.attempts < self.max_attempts:
            self._busy = False
            self.queue.requeue(task)
            self._pull()
            return
        self._finish(task, result.success)

    def _finish(self, task: Task, success: bool) -> None:
        self.tasks_run += 1
        if not success:
            self.tasks_failed += 1
        self.queue.report(task, success)
        self._busy = False
        self._pull()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self._busy else ("idle" if self._started else "stopped")
        return f"PilotWorker({self.name!r}, {state}, run={self.tasks_run})"
