"""Semantic service discovery (paper §3).

The paper's critique of Jini/SDP/SLP-era discovery is that services are
described "entirely in syntactic terms as interface descriptions",
matching is exact, and "only equality constraints" are expressible -- you
cannot ask for "a printer service that has the shortest print queue, that
is geographically the closest, or that will print in color but only
within a prespecified cost constraint".

This package reproduces the semantic alternative the paper proposes
(DAML/DAML-S descriptions matched fuzzily against an ontology, returning
*ranked* lists) **and** the syntactic baselines it criticizes, so the
expressiveness gap is measurable (experiment E5):

* :mod:`~repro.discovery.ontology` -- a description-logic-lite class
  hierarchy with subsumption and semantic distance.
* :mod:`~repro.discovery.description` -- service profiles and requests.
* :mod:`~repro.discovery.constraints` -- non-equality constraints and
  soft preferences.
* :mod:`~repro.discovery.matcher` -- degrees EXACT > PLUGIN > SUBSUMES >
  OVERLAP > FAIL with fuzzy scoring and ranking.
* :mod:`~repro.discovery.log` -- the append-only registry event log
  (the source of truth every store materializes).
* :mod:`~repro.discovery.shard` -- consistent-hash sharding of
  descriptions by ontology class.
* :mod:`~repro.discovery.registry` -- local and distributed broker
  registries (log-backed, deterministically rebuildable).
* :mod:`~repro.discovery.replica` -- the sharded, replicated registry
  over one shared log.
* :mod:`~repro.discovery.failover` -- single-active broker groups with
  deterministic standby promotion.
* :mod:`~repro.discovery.broker` -- the broker *agent* speaking ACL.
* :mod:`~repro.discovery.protocols` -- Jini interface matching,
  Bluetooth-SDP UUID matching, and SLP attribute matching baselines.
"""

from repro.discovery.ontology import Ontology, build_service_ontology
from repro.discovery.constraints import Constraint, Preference
from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.log import EventLog, RegistryEvent, apply_event
from repro.discovery.matcher import MatchDegree, MatchResult, SemanticMatcher
from repro.discovery.shard import ShardMap, stable_hash
from repro.discovery.registry import ServiceRegistry, DistributedBrokerNetwork
from repro.discovery.replica import ReplicaRegistry, ReplicatedRegistry
from repro.discovery.broker import BrokerAgent
from repro.discovery.failover import BrokerGroup, FailoverEvent

__all__ = [
    "Ontology",
    "build_service_ontology",
    "Constraint",
    "Preference",
    "ServiceDescription",
    "ServiceRequest",
    "EventLog",
    "RegistryEvent",
    "apply_event",
    "MatchDegree",
    "MatchResult",
    "SemanticMatcher",
    "ShardMap",
    "stable_hash",
    "ServiceRegistry",
    "DistributedBrokerNetwork",
    "ReplicaRegistry",
    "ReplicatedRegistry",
    "BrokerAgent",
    "BrokerGroup",
    "FailoverEvent",
]
