"""Semantic service discovery (paper §3).

The paper's critique of Jini/SDP/SLP-era discovery is that services are
described "entirely in syntactic terms as interface descriptions",
matching is exact, and "only equality constraints" are expressible -- you
cannot ask for "a printer service that has the shortest print queue, that
is geographically the closest, or that will print in color but only
within a prespecified cost constraint".

This package reproduces the semantic alternative the paper proposes
(DAML/DAML-S descriptions matched fuzzily against an ontology, returning
*ranked* lists) **and** the syntactic baselines it criticizes, so the
expressiveness gap is measurable (experiment E5):

* :mod:`~repro.discovery.ontology` -- a description-logic-lite class
  hierarchy with subsumption and semantic distance.
* :mod:`~repro.discovery.description` -- service profiles and requests.
* :mod:`~repro.discovery.constraints` -- non-equality constraints and
  soft preferences.
* :mod:`~repro.discovery.matcher` -- degrees EXACT > PLUGIN > SUBSUMES >
  OVERLAP > FAIL with fuzzy scoring and ranking.
* :mod:`~repro.discovery.registry` -- local and distributed broker
  registries.
* :mod:`~repro.discovery.broker` -- the broker *agent* speaking ACL.
* :mod:`~repro.discovery.protocols` -- Jini interface matching,
  Bluetooth-SDP UUID matching, and SLP attribute matching baselines.
"""

from repro.discovery.ontology import Ontology, build_service_ontology
from repro.discovery.constraints import Constraint, Preference
from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.matcher import MatchDegree, MatchResult, SemanticMatcher
from repro.discovery.registry import ServiceRegistry, DistributedBrokerNetwork
from repro.discovery.broker import BrokerAgent

__all__ = [
    "Ontology",
    "build_service_ontology",
    "Constraint",
    "Preference",
    "ServiceDescription",
    "ServiceRequest",
    "MatchDegree",
    "MatchResult",
    "SemanticMatcher",
    "ServiceRegistry",
    "DistributedBrokerNetwork",
    "BrokerAgent",
]
