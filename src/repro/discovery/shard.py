"""Consistent-hash sharding of service descriptions by ontology class.

"Millions of service descriptions" do not fit one broker's memory or one
broker's query budget, so the replicated registry spreads them across
shard replicas by the *category* of the advertised service: every
description of one ontology class lands on the same ``replication``
consecutive shards of a hash ring.  The ring uses virtual points per
shard, so shard counts can change without reshuffling every class, and
hashing is :func:`hashlib.blake2b`-based -- stable across processes and
Python versions, unlike the builtin ``hash`` (which is salted per
process and would break cross-worker determinism).
"""

from __future__ import annotations

import bisect
import hashlib
import typing


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """A consistent-hash ring assigning ontology classes to shards.

    Parameters
    ----------
    n_shards:
        Number of shard replicas on the ring.
    replication:
        How many *distinct* shards hold each class (R).  ``R >= 2`` keeps
        every class searchable with any single replica down.
    points_per_shard:
        Virtual points per shard; more points smooth the key
        distribution at the cost of a larger ring.
    """

    def __init__(self, n_shards: int, replication: int = 1,
                 points_per_shard: int = 32) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 1 <= replication <= n_shards:
            raise ValueError("replication must be in [1, n_shards]")
        if points_per_shard < 1:
            raise ValueError("points_per_shard must be >= 1")
        self.n_shards = int(n_shards)
        self.replication = int(replication)
        self.points_per_shard = int(points_per_shard)
        ring = []
        for shard in range(self.n_shards):
            for point in range(self.points_per_shard):
                ring.append((stable_hash(f"shard-{shard}:{point}"), shard))
        ring.sort()
        self._ring_keys = [k for k, _ in ring]
        self._ring_shards = [s for _, s in ring]

    # ------------------------------------------------------------------
    def owners_of(self, category: str) -> tuple[int, ...]:
        """The ``replication`` distinct shards holding ``category``,
        walking clockwise from the class's ring position (primary first)."""
        start = bisect.bisect_right(self._ring_keys, stable_hash(category))
        owners: list[int] = []
        n_points = len(self._ring_shards)
        for step in range(n_points):
            shard = self._ring_shards[(start + step) % n_points]
            if shard not in owners:
                owners.append(shard)
                if len(owners) == self.replication:
                    break
        return tuple(owners)

    def primary_of(self, category: str) -> int:
        """The first owner on the ring (deterministic tie-break home)."""
        return self.owners_of(category)[0]

    def owns(self, shard: int, category: str) -> bool:
        """Does ``shard`` hold descriptions of ``category``?"""
        return shard in self.owners_of(category)

    def assignment(self, categories: typing.Iterable[str]) -> dict[int, list[str]]:
        """``{shard: [categories]}`` over every shard (diagnostics; empty
        shards appear with empty lists so balance is visible)."""
        out: dict[int, list[str]] = {shard: [] for shard in range(self.n_shards)}
        for category in categories:
            for shard in self.owners_of(category):
                out[shard].append(category)
        return {shard: sorted(cats) for shard, cats in out.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardMap(n_shards={self.n_shards}, "
                f"replication={self.replication})")
