"""Constraints and preferences over service attributes.

The expressiveness the paper says Jini-era discovery lacks: requests can
carry *non-equality* hard constraints ("will print in color but only
within a prespecified cost constraint") and soft *preferences* that rank
the surviving candidates ("the shortest print queue", "geographically the
closest").
"""

from __future__ import annotations

import dataclasses
import math
import typing

#: Supported comparison operators for hard constraints.
OPERATORS: dict[str, typing.Callable[[typing.Any, typing.Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
    "contains": lambda a, b: b in a,
}


@dataclasses.dataclass(frozen=True)
class Constraint:
    """A hard predicate over one service attribute.

    ``attribute op value`` -- e.g. ``Constraint("cost_per_page", "<=", 0.10)``.
    A service missing the attribute fails the constraint (closed-world).

    Attributes
    ----------
    attribute:
        Attribute name in the service description.
    op:
        One of :data:`OPERATORS`.
    value:
        The comparison operand.
    """

    attribute: str
    op: str
    value: typing.Any

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}; expected one of {sorted(OPERATORS)}")

    def satisfied_by(self, attributes: typing.Mapping[str, typing.Any]) -> bool:
        """Evaluate against a service's attribute mapping."""
        if self.attribute not in attributes:
            return False
        try:
            return bool(OPERATORS[self.op](attributes[self.attribute], self.value))
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclasses.dataclass(frozen=True)
class Preference:
    """A soft ranking criterion over one numeric attribute.

    ``goal`` is ``"minimize"`` or ``"maximize"``; ``weight`` scales this
    preference's contribution to the overall utility.  Utilities are
    normalized per candidate set, so weights are comparable across
    attributes with different units.
    """

    attribute: str
    goal: str = "minimize"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.goal not in ("minimize", "maximize"):
            raise ValueError("goal must be 'minimize' or 'maximize'")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def utilities(self, candidates: list[typing.Mapping[str, typing.Any]]) -> list[float]:
        """Normalized utility in [0, 1] per candidate (0.5 when absent).

        Min-max normalized over the candidate set; a candidate set with a
        constant attribute value gets utility 1.0 everywhere (all tie).
        """
        values = []
        for attrs in candidates:
            v = attrs.get(self.attribute)
            values.append(float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else math.nan)
        present = [v for v in values if not math.isnan(v)]
        if not present:
            return [0.5] * len(candidates)
        lo, hi = min(present), max(present)
        span = hi - lo
        out = []
        for v in values:
            if math.isnan(v):
                out.append(0.5)
            elif span == 0.0:
                out.append(1.0)
            else:
                u = (v - lo) / span
                out.append(1.0 - u if self.goal == "minimize" else u)
        return out
