"""Sharded, replicated registries over one shared event log.

The "distributed set of brokers" the paper asks for (§3) needs a store
that neither fits in one memory nor dies with one host:

* :class:`ReplicaRegistry` -- one shard's materialization of the log.
  It applies every event it is handed, but keeps only descriptions
  whose ontology class the :class:`~repro.discovery.shard.ShardMap`
  assigns to it (withdrawals always apply, so no replica can hold a
  withdrawn name).  State is a pure function of ``(log prefix, shard
  id)``, so :meth:`rebuild` from any prefix is deterministic.
* :class:`ReplicatedRegistry` -- the client-facing store:
  ``n_shards`` replicas with replication factor R over a (possibly
  shared) :class:`~repro.discovery.log.EventLog`.  Writes append to the
  log; searches scatter to every *up* replica and merge ranked results
  by name (best wins), so with ``replication >= 2`` any single replica
  can be down with zero lost answers.  It is interface-compatible with
  :class:`~repro.discovery.registry.ServiceRegistry` (advertise /
  withdraw / withdraw_host / get / services / search / len), so
  binders, brokers and the runtime use either interchangeably.

A *live* instance subscribes to the log and stays current; a *detached*
instance (a standby broker's view) lags behind and pays an explicit
:meth:`~ReplicatedRegistry.catch_up` replay at promotion time -- the
"replays the log tail" step of the failover protocol in
:mod:`repro.discovery.failover`.
"""

from __future__ import annotations

import typing

from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.log import EventLog, RegistryEvent, apply_event
from repro.discovery.matcher import MatchResult, SemanticMatcher
from repro.discovery.shard import ShardMap

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.monitor import Monitor


class ReplicaRegistry:
    """One shard replica: the log folded through a shard-ownership filter.

    Parameters
    ----------
    matcher / shard_id / shard_map:
        Search machinery, this replica's ring position, and the class
        assignment it filters advertisements with.
    """

    def __init__(self, matcher: SemanticMatcher, shard_id: int,
                 shard_map: ShardMap, name: str | None = None) -> None:
        self.matcher = matcher
        self.shard_id = int(shard_id)
        self.shard_map = shard_map
        self.name = name if name is not None else f"shard-{shard_id}"
        self._services: dict[str, ServiceDescription] = {}
        self.applied_seq = 0
        self.up = True  #: failure flag; down replicas drop out of searches

    # ------------------------------------------------------------------
    def _accept(self, service: ServiceDescription) -> bool:
        return self.shard_map.owns(self.shard_id, service.category)

    def apply(self, event: RegistryEvent) -> int:
        """Fold one event (must be the next in log order); returns the
        number of descriptions this replica dropped."""
        removed = apply_event(self._services, event, accept=self._accept)
        self.applied_seq = event.seq
        return removed

    def rebuild(self, log: EventLog, upto_seq: int | None = None) -> None:
        """Reset and deterministically replay ``log`` up to ``upto_seq``."""
        self._services.clear()
        self.applied_seq = 0
        for event in log.events(upto_seq=upto_seq):
            self.apply(event)

    # ------------------------------------------------------------------
    def services(self) -> list[ServiceDescription]:
        """This shard's descriptions, by name order."""
        return [self._services[n] for n in sorted(self._services)]

    def get(self, service_name: str) -> ServiceDescription | None:
        """One advertisement by name (None when not on this shard)."""
        return self._services.get(service_name)

    def search(self, request: ServiceRequest,
               top_k: int | None = None) -> list[MatchResult]:
        """Ranked matches among this shard's descriptions only."""
        return self.matcher.rank(request, self.services(), top_k=top_k)

    def __len__(self) -> int:
        return len(self._services)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicaRegistry({self.name}, services={len(self)}, "
                f"applied_seq={self.applied_seq}, up={self.up})")


class ReplicatedRegistry:
    """A sharded, replicated service registry materializing one event log.

    Parameters
    ----------
    matcher:
        Semantic matcher shared by every replica.
    n_shards / replication:
        Ring size and copies per ontology class (see
        :class:`~repro.discovery.shard.ShardMap`).
    log:
        The shared source of truth; default a private log.  Several
        instances over one log (the active broker's view, each standby's
        view, the client-side write façade) all converge to the same
        state because the log orders every mutation.
    live:
        When True (default) subscribe to the log and stay current; when
        False the view lags until :meth:`catch_up` / :meth:`attach`.
    monitor:
        Optional monitor for the canonical ``disc.*`` counters.
    name:
        Diagnostics label.
    """

    def __init__(self, matcher: SemanticMatcher, n_shards: int = 4,
                 replication: int = 2, *, log: EventLog | None = None,
                 live: bool = True, monitor: "Monitor | None" = None,
                 name: str = "replicated") -> None:
        self.matcher = matcher
        self.name = name
        self.log = log if log is not None else EventLog()
        self.shard_map = ShardMap(n_shards, replication)
        self.replicas = [
            ReplicaRegistry(matcher, shard, self.shard_map,
                            name=f"{name}/shard-{shard}")
            for shard in range(n_shards)
        ]
        self.monitor = monitor
        self.applied_seq = 0
        self.advertise_count = 0
        self.search_count = 0
        self.withdraw_count = 0
        self.replayed_events = 0
        self._live = False
        # materialize whatever the shared log already holds
        self.catch_up(count_replay=False)
        if live:
            self.attach()

    # ------------------------------------------------------------------
    # log plumbing
    # ------------------------------------------------------------------
    def _on_event(self, event: RegistryEvent) -> None:
        if event.seq <= self.applied_seq:
            return
        # count *distinct* withdrawn services (each lives on R replicas)
        removed = 0
        if event.kind == "withdraw":
            removed = int(any(r.get(event.service_name) is not None
                              for r in self.replicas))
        elif event.kind == "withdraw-host":
            doomed = {s.name for r in self.replicas for s in r._services.values()
                      if s.host_node == event.host_node}
            removed = len(doomed)
        for replica in self.replicas:
            replica.apply(event)
        self.applied_seq = event.seq
        if removed:
            self.withdraw_count += removed
            self._count("disc.withdraw", removed)

    def _count(self, counter: str, n: int = 1) -> None:
        if self.monitor is not None and n:
            self.monitor.counter(counter).add(n)

    @property
    def live(self) -> bool:
        """Is this view subscribed to the log (lag pinned at zero)?"""
        return self._live

    @property
    def lag(self) -> int:
        """Events appended to the log but not yet applied here --
        the staleness the ``disc.staleness`` objective watches."""
        return self.log.last_seq - self.applied_seq

    def attach(self) -> None:
        """Catch up and subscribe (idempotent): the view goes live."""
        self.catch_up()
        if not self._live:
            self.log.subscribe(self._on_event)
            self._live = True

    def detach(self) -> None:
        """Unsubscribe; the view freezes at its current ``applied_seq``
        (a crashed or demoted broker's state)."""
        if self._live:
            self.log.unsubscribe(self._on_event)
            self._live = False

    def catch_up(self, *, count_replay: bool = True) -> int:
        """Replay the log tail ``(applied_seq, last]``; returns the number
        of events replayed.  This is the promoted standby's recovery work,
        counted under ``disc.replay_events``."""
        tail = self.log.events(after_seq=self.applied_seq)
        for event in tail:
            self._on_event(event)
        if count_replay and tail:
            self.replayed_events += len(tail)
            self._count("disc.replay_events", len(tail))
        return len(tail)

    def rebuild(self) -> None:
        """Reset every replica and replay the whole log from seq 1 --
        the determinism check: state must come out byte-identical."""
        for replica in self.replicas:
            replica.rebuild(self.log)
        self.applied_seq = self.log.last_seq

    # ------------------------------------------------------------------
    # failure injection surface
    # ------------------------------------------------------------------
    def mark_down(self, shard_id: int) -> None:
        """Take one replica out of the search set (host died)."""
        self.replicas[shard_id].up = False

    def mark_up(self, shard_id: int) -> None:
        """Return a replica to the search set.  Its state is *still the
        log's*: replicas share this view's ``applied_seq``, so a revived
        replica is instantly consistent."""
        self.replicas[shard_id].up = True

    def up_replicas(self) -> list[ReplicaRegistry]:
        """The replicas currently serving searches."""
        return [r for r in self.replicas if r.up]

    # ------------------------------------------------------------------
    # the ServiceRegistry interface
    # ------------------------------------------------------------------
    def advertise(self, service: ServiceDescription) -> None:
        """Append an advertise/refresh event; replicas owning the class
        pick it up (live views immediately, detached views at catch-up)."""
        known = self.get(service.name) is not None
        event = self.log.append_advertise(service, refresh=known)
        if not self._live:
            self._on_event(event)
        self.advertise_count += 1
        self._count("disc.advertise")

    def withdraw(self, service_name: str) -> bool:
        """Append a withdraw event; True if any replica held the name."""
        present = self.get(service_name) is not None
        event = self.log.append_withdraw(service_name)
        if not self._live:
            self._on_event(event)
        return present

    def withdraw_host(self, host_node: int) -> int:
        """Append a withdraw-host event; returns how many descriptions
        this view dropped."""
        before = len(self)
        event = self.log.append_withdraw_host(host_node)
        if not self._live:
            self._on_event(event)
        return before - len(self)

    def get(self, service_name: str) -> ServiceDescription | None:
        """Look up one advertisement across up replicas."""
        for replica in self.replicas:
            if replica.up:
                found = replica.get(service_name)
                if found is not None:
                    return found
        return None

    def services(self) -> list[ServiceDescription]:
        """Every advertisement exactly once, by name order (replicas
        overlap by construction; names dedup them)."""
        merged: dict[str, ServiceDescription] = {}
        for replica in self.replicas:
            if replica.up:
                merged.update(replica._services)
        return [merged[n] for n in sorted(merged)]

    def __len__(self) -> int:
        return len(self.services())

    def search(self, request: ServiceRequest,
               top_k: int | None = None) -> list[MatchResult]:
        """Gather candidates from every up replica (dedup by name), then
        rank the merged set **once** -- identical output to an unsharded
        :class:`~repro.discovery.registry.ServiceRegistry` holding the
        same advertisements, at any shard/replication count.

        Ranking per shard and merging ranked lists would *not* be
        equivalent: preference utilities normalize over the surviving
        candidate set, so per-shard scores depend on shard contents.
        Candidates are cheap to gather (dict merges); only the single
        global rank pays matcher cost.
        """
        self.search_count += 1
        self._count("disc.search")
        return self.matcher.rank(request, self.services(), top_k=top_k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicatedRegistry({self.name}, shards={len(self.replicas)}, "
                f"R={self.shard_map.replication}, services={len(self)}, "
                f"lag={self.lag}, live={self._live})")
