"""Baseline discovery protocols the paper criticizes.

Each baseline matches against the *same* :class:`~repro.discovery.description.ServiceDescription`
population as the semantic matcher, but using only the information its
real-world counterpart would have:

* :class:`~repro.discovery.protocols.jini.JiniLookup` -- exact interface-
  name matching ("sufficient ... to find a service that implements the
  method printIt()", nothing more).
* :class:`~repro.discovery.protocols.sdp.BluetoothSDP` -- "relies on
  unique 128 bit UUIDs to describe and match services".
* :class:`~repro.discovery.protocols.slp.SLPDirectory` -- service-type
  string plus attribute *equality* predicates (RFC 2608).
"""

from repro.discovery.protocols.jini import JiniLookup
from repro.discovery.protocols.sdp import BluetoothSDP
from repro.discovery.protocols.slp import SLPDirectory

__all__ = ["JiniLookup", "BluetoothSDP", "SLPDirectory"]
