"""Jini-style lookup: exact interface matching.

"The Jini discovery and lookup protocols are sufficient for service
clients to find a service that implements the method printIt().  However,
they are not sufficient for clients to find a printer service that has
the shortest print queue ..." (§3)

The lookup returns the *unranked* set of services registering the exact
interface name requested.  No taxonomy, no constraints, no preferences.
"""

from __future__ import annotations

from repro.discovery.description import ServiceDescription


class JiniLookup:
    """An interface-name → services lookup table."""

    def __init__(self) -> None:
        self._by_interface: dict[str, dict[str, ServiceDescription]] = {}
        self._names: dict[str, ServiceDescription] = {}

    def register(self, service: ServiceDescription) -> None:
        """Register under every interface the service declares."""
        self._names[service.name] = service
        for iface in service.interfaces:
            self._by_interface.setdefault(iface, {})[service.name] = service

    def unregister(self, service_name: str) -> bool:
        """Remove a registration; True if it was present."""
        service = self._names.pop(service_name, None)
        if service is None:
            return False
        for iface in service.interfaces:
            self._by_interface.get(iface, {}).pop(service_name, None)
        return True

    def lookup(self, interface: str) -> list[ServiceDescription]:
        """All services implementing exactly ``interface`` (name order).

        Jini's semantics: an exact string match on the interface name; a
        request for ``"Printer"`` does not find ``"ColorPrinter"``
        registrations and vice versa.
        """
        table = self._by_interface.get(interface, {})
        return [table[n] for n in sorted(table)]

    def __len__(self) -> int:
        return len(self._names)
