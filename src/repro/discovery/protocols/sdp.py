"""Bluetooth SDP-style lookup: UUID equality only.

"Bluetooth SDP relies on unique 128 bit UUIDs to describe and match
services.  This is clearly inadequate." (§3)

A client must already know the exact UUID of the service class it wants;
there is no taxonomy, no attributes, no ranking.
"""

from __future__ import annotations

from repro.discovery.description import ServiceDescription


class BluetoothSDP:
    """A UUID → services table.

    Real SDP assigns a UUID per service *class*; we model class UUIDs by
    letting multiple services share a ``class_uuid`` attribute, falling
    back to the instance UUID when absent.
    """

    #: Attribute key carrying the advertised service-class UUID.
    CLASS_UUID_ATTR = "class_uuid"

    def __init__(self) -> None:
        self._by_uuid: dict[str, dict[str, ServiceDescription]] = {}
        self._names: dict[str, ServiceDescription] = {}

    @staticmethod
    def advertised_uuid(service: ServiceDescription) -> str:
        """The UUID a service would put in its SDP record."""
        return str(service.attributes.get(BluetoothSDP.CLASS_UUID_ATTR, service.uuid))

    def register(self, service: ServiceDescription) -> None:
        """Add a service record."""
        self._names[service.name] = service
        uuid = self.advertised_uuid(service)
        self._by_uuid.setdefault(uuid, {})[service.name] = service

    def unregister(self, service_name: str) -> bool:
        """Remove a service record; True if present."""
        service = self._names.pop(service_name, None)
        if service is None:
            return False
        uuid = self.advertised_uuid(service)
        self._by_uuid.get(uuid, {}).pop(service_name, None)
        return True

    def lookup(self, uuid: str) -> list[ServiceDescription]:
        """Services whose advertised UUID equals ``uuid`` exactly."""
        table = self._by_uuid.get(uuid, {})
        return [table[n] for n in sorted(table)]

    def __len__(self) -> int:
        return len(self._names)
