"""SLP-style directory: service type + attribute equality predicates.

IETF Service Location Protocol (RFC 2608, cited as [12]) matches a
service-type string exactly and filters on attribute (in)equality -- more
expressive than Jini/SDP but still "describ[ing] services entirely in
syntactic terms", with exact type strings and no ranking.
"""

from __future__ import annotations

import typing

from repro.discovery.description import ServiceDescription


class SLPDirectory:
    """A directory agent holding (service-type, attributes) records."""

    #: Attribute key carrying the advertised SLP service type string.
    SERVICE_TYPE_ATTR = "slp_type"

    def __init__(self) -> None:
        self._records: dict[str, ServiceDescription] = {}

    @staticmethod
    def advertised_type(service: ServiceDescription) -> str:
        """The service-type string an SLP SA would register."""
        return str(service.attributes.get(SLPDirectory.SERVICE_TYPE_ATTR, service.category))

    def register(self, service: ServiceDescription) -> None:
        """Add a record."""
        self._records[service.name] = service

    def unregister(self, service_name: str) -> bool:
        """Remove a record; True if present."""
        return self._records.pop(service_name, None) is not None

    def lookup(
        self,
        service_type: str,
        where: typing.Mapping[str, typing.Any] | None = None,
    ) -> list[ServiceDescription]:
        """Exact-type matches whose attributes equal every ``where`` entry.

        Unranked (name order).  Missing attributes fail the predicate,
        matching SLP's closed-world filter evaluation.
        """
        out = []
        for name in sorted(self._records):
            svc = self._records[name]
            if self.advertised_type(svc) != service_type:
                continue
            if where and any(svc.attributes.get(k) != v for k, v in where.items()):
                continue
            out.append(svc)
        return out

    def __len__(self) -> int:
        return len(self._records)
