"""The semantic matcher: degrees, fuzzy scores, ranked results.

"The matching of a request to services is semantic ... This matching is
fuzzy, and often recommends a ranked list of matches." (§3)

Degrees follow the classic DAML-S matchmaking lattice (Paolucci et al.),
which the paper's own matchmaker work ([19, 4, 2]) builds on:

EXACT    requested and advertised category identical
PLUGIN   advertised is *more specific* than requested (a ColorPrinter
         can plug in wherever a Printer was requested)
SUBSUMES advertised is *more general* (a Printer might satisfy a
         ColorPrinter request, with degraded confidence)
OVERLAP  share a non-root ancestor (siblings; weakest useful signal)
FAIL     none of the above, or a hard constraint violated

Within a degree, candidates are ordered by a fuzzy score in [0, 1]
combining taxonomic distance, I/O type compatibility and soft-preference
utility.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.ontology import Ontology


class MatchDegree(enum.IntEnum):
    """Ordered match quality; higher is better."""

    FAIL = 0
    OVERLAP = 1
    SUBSUMES = 2
    PLUGIN = 3
    EXACT = 4


#: Base score contributed by each degree (fuzzy score anchor points).
_DEGREE_BASE = {
    MatchDegree.EXACT: 1.0,
    MatchDegree.PLUGIN: 0.85,
    MatchDegree.SUBSUMES: 0.6,
    MatchDegree.OVERLAP: 0.3,
    MatchDegree.FAIL: 0.0,
}


@dataclasses.dataclass(frozen=True)
class MatchResult:
    """One candidate's evaluation against a request.

    Sortable: better results first (higher degree, then higher score,
    then name for determinism).
    """

    service: ServiceDescription
    degree: MatchDegree
    score: float

    def sort_key(self) -> tuple:
        return (-int(self.degree), -self.score, self.service.name)


class SemanticMatcher:
    """Matches requests against service descriptions over an ontology.

    Parameters
    ----------
    ontology:
        The shared taxonomy.
    use_degrees:
        Ablation switch (E5): when False, ranking ignores the degree
        lattice and uses the raw fuzzy score only.
    """

    def __init__(self, ontology: Ontology, use_degrees: bool = True) -> None:
        self.ontology = ontology
        self.use_degrees = use_degrees

    # ------------------------------------------------------------------
    def category_degree(self, requested: str, advertised: str) -> MatchDegree:
        """The degree lattice over two ontology classes."""
        ont = self.ontology
        if not ont.has_class(requested) or not ont.has_class(advertised):
            return MatchDegree.FAIL
        if requested == advertised:
            return MatchDegree.EXACT
        if ont.subsumes(requested, advertised):
            return MatchDegree.PLUGIN
        if ont.subsumes(advertised, requested):
            return MatchDegree.SUBSUMES
        if ont.related(requested, advertised):
            return MatchDegree.OVERLAP
        return MatchDegree.FAIL

    def _io_compatibility(self, request: ServiceRequest, service: ServiceDescription) -> float:
        """Fraction of the request's I/O requirements the service meets.

        Every requested output must be producible (service output equal
        to or more specific than requested); every service input must be
        suppliable from the request's declared inputs.  Returns the
        satisfied fraction in [0, 1]; 1.0 when nothing is required.
        """
        ont = self.ontology
        checks = 0
        passed = 0
        for out in request.outputs:
            checks += 1
            if any(
                ont.has_class(o) and ont.has_class(out) and ont.subsumes(out, o)
                for o in service.outputs
            ):
                passed += 1
        for inp in service.inputs:
            checks += 1
            if any(
                ont.has_class(i) and ont.has_class(inp) and ont.subsumes(inp, i)
                for i in request.inputs
            ):
                passed += 1
        return passed / checks if checks else 1.0

    def _taxonomic_closeness(self, requested: str, advertised: str) -> float:
        """1 / (1 + semantic distance); 1.0 for identical classes."""
        ont = self.ontology
        if not (ont.has_class(requested) and ont.has_class(advertised)):
            return 0.0
        return 1.0 / (1.0 + ont.distance(requested, advertised))

    def evaluate(self, request: ServiceRequest, service: ServiceDescription) -> MatchResult:
        """Degree + fuzzy score for one candidate (no preference utility).

        Preference utilities need the whole candidate set for
        normalization, so they are applied in :meth:`rank`.
        """
        degree = self.category_degree(request.category, service.category)
        if degree is MatchDegree.FAIL:
            return MatchResult(service, degree, 0.0)
        if any(not c.satisfied_by(service.attributes) for c in request.constraints):
            return MatchResult(service, MatchDegree.FAIL, 0.0)
        io_frac = self._io_compatibility(request, service)
        if io_frac < 1.0 and not request.outputs and not service.inputs:
            io_frac = 1.0
        closeness = self._taxonomic_closeness(request.category, service.category)
        base = _DEGREE_BASE[degree] if self.use_degrees else closeness
        score = base * (0.5 + 0.5 * closeness) * io_frac
        return MatchResult(service, degree, min(score, 1.0))

    def rank(
        self,
        request: ServiceRequest,
        candidates: list[ServiceDescription],
        top_k: int | None = None,
    ) -> list[MatchResult]:
        """Ranked list of non-FAIL matches, preference-adjusted.

        Preference utilities (normalized over the surviving candidates)
        multiply into the fuzzy score with weight-proportional influence;
        the degree remains the primary sort key when ``use_degrees``.
        """
        results = [self.evaluate(request, s) for s in candidates]
        survivors = [r for r in results if r.degree is not MatchDegree.FAIL]
        if request.preferences and survivors:
            attr_maps = [r.service.attributes for r in survivors]
            total_weight = sum(p.weight for p in request.preferences)
            blended = [0.0] * len(survivors)
            for pref in request.preferences:
                utils = pref.utilities(attr_maps)
                for i, u in enumerate(utils):
                    blended[i] += pref.weight * u
            survivors = [
                MatchResult(r.service, r.degree, r.score * (0.5 + 0.5 * b / total_weight))
                for r, b in zip(survivors, blended)
            ]
        if self.use_degrees:
            survivors.sort(key=MatchResult.sort_key)
        else:
            survivors.sort(key=lambda r: (-r.score, r.service.name))
        return survivors[:top_k] if top_k is not None else survivors
