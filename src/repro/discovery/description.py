"""Service descriptions and requests.

A :class:`ServiceDescription` is the DAML-S-like *profile* of a service:
its ontology category, input/output types, free-form attributes, and
enough syntactic metadata (interface names, UUIDs) for the baseline
protocols to match against -- the same population is advertised to every
protocol in experiment E5.
"""

from __future__ import annotations

import dataclasses
import typing
import uuid as uuid_module

from repro.discovery.constraints import Constraint, Preference


@dataclasses.dataclass
class ServiceDescription:
    """A registered service's advertised profile.

    Attributes
    ----------
    name:
        Unique service instance name.
    category:
        Ontology class of the service (DAML-S ``serviceCategory``).
    inputs / outputs:
        Ontology classes of consumed/produced data.
    attributes:
        Free-form attribute map (queue lengths, costs, positions...).
    provider:
        Agent name providing the service (for invocation).
    host_node:
        Topology node the provider runs on (None = wired side).
    interfaces:
        Syntactic interface names (what Jini would register).
    uuid:
        The 128-bit identifier Bluetooth SDP would use.
    cost:
        Advertised invocation cost (generic units; COST-clause planning
        and composition optimization read this).
    ops / input_bits / output_bits:
        Execution profile used by composition cost estimates.
    """

    name: str
    category: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    attributes: dict[str, typing.Any] = dataclasses.field(default_factory=dict)
    provider: str = ""
    host_node: int | None = None
    interfaces: tuple[str, ...] = ()
    uuid: str = dataclasses.field(default_factory=lambda: str(uuid_module.uuid4()))
    cost: float = 0.0
    ops: float = 1e6
    input_bits: float = 1024.0
    output_bits: float = 1024.0

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        self.interfaces = tuple(self.interfaces)


@dataclasses.dataclass
class ServiceRequest:
    """What a client is looking for.

    Attributes
    ----------
    category:
        Desired ontology class.
    inputs:
        Data types the client can supply (the service's declared inputs
        must be satisfiable from these).
    outputs:
        Data types the client needs produced.
    constraints:
        Hard constraints; candidates violating any are rejected (unless
        the matcher runs in soft mode, where violations only lower the
        score).
    preferences:
        Soft ranking criteria.
    """

    category: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    constraints: tuple[Constraint, ...] = ()
    preferences: tuple[Preference, ...] = ()

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        self.constraints = tuple(self.constraints)
        self.preferences = tuple(self.preferences)
