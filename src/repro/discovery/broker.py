"""The broker agent: discovery as an ACL conversation.

"We are investigating the creation of efficient broker agents to discover
services at a semantic level." (§3)

:class:`BrokerAgent` wraps a :class:`~repro.discovery.registry.ServiceRegistry`
behind the agent framework: providers ADVERTISE/UNADVERTISE
:class:`~repro.discovery.description.ServiceDescription` payloads, clients
QUERY with :class:`~repro.discovery.description.ServiceRequest` payloads
and receive an INFORM carrying the ranked match list.
"""

from __future__ import annotations

from repro.agents.agent import Agent
from repro.agents.acl import ACLMessage, Performative
from repro.agents.attributes import AgentAttributes, AgentRole
from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.registry import ServiceRegistry


class BrokerAgent(Agent):
    """A discovery broker speaking ACL.

    Parameters
    ----------
    name:
        Agent name.
    registry:
        The backing store/matcher.
    top_k:
        Maximum matches returned per query (None = all).
    """

    def __init__(self, name: str, registry: ServiceRegistry, top_k: int | None = 10) -> None:
        super().__init__(name, AgentAttributes.of(AgentRole.BROKER))
        self.registry = registry
        self.top_k = top_k

    def setup(self) -> None:
        self.on(Performative.ADVERTISE, self._handle_advertise)
        self.on(Performative.UNADVERTISE, self._handle_unadvertise)
        self.on(Performative.QUERY, self._handle_query)

    # ------------------------------------------------------------------
    def _handle_advertise(self, msg: ACLMessage) -> None:
        desc = msg.content
        if not isinstance(desc, ServiceDescription):
            self.reply(msg, Performative.FAILURE, "expected ServiceDescription")
            return
        self.registry.advertise(desc)
        self.reply(msg, Performative.INFORM, {"registered": desc.name})

    def _handle_unadvertise(self, msg: ACLMessage) -> None:
        name = msg.content
        if not isinstance(name, str):
            self.reply(msg, Performative.FAILURE, "expected service name (str)")
            return
        removed = self.registry.withdraw(name)
        self.reply(msg, Performative.INFORM, {"removed": removed})

    def _handle_query(self, msg: ACLMessage) -> None:
        request = msg.content
        if not isinstance(request, ServiceRequest):
            self.reply(msg, Performative.FAILURE, "expected ServiceRequest")
            return
        matches = self.registry.search(request, top_k=self.top_k)
        self.reply(msg, Performative.INFORM, matches)
