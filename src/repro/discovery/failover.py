"""Single-active broker failover over the shared event log.

The paper's distributed brokers must survive the paper's own fault model
("services may be coming up and going down frequently").  This module
implements the sticky single-active pattern: one broker of a group is
registered on the platform under the well-known service name, the rest
are standbys, and a deterministic protocol promotes the **lowest-id live
standby** when the active broker's host dies:

1. the crash detaches the active broker's registry view and unregisters
   the well-known name -- in-flight queries go undeliverable and clients
   fall back to their retry/hedge policies;
2. after ``detection_delay_s`` the group picks the lowest-id live
   standby;
3. the standby **replays the log tail** it missed (``replay_s_per_event``
   of simulated time per event -- recovery work is proportional to
   staleness, not to registry size);
4. it registers under the well-known name and resumes serving.

The outage is *bounded* (detection + replay) and *lossless*: every
advertisement that reached the :class:`~repro.discovery.log.EventLog`
is visible after promotion, because broker state is a log
materialization, never primary data.  Every transition lands on the
group's :attr:`~BrokerGroup.timeline`, in the monitor
(``disc.failover`` counter, ``disc.failover_time`` histogram) and, when
tracing, as a ``discovery.failover`` span bracketed by
``disc.broker_down`` / ``disc.promote`` events the dashboard's alert
timeline renders.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.discovery.broker import BrokerAgent
from repro.discovery.log import EventLog
from repro.discovery.matcher import SemanticMatcher
from repro.discovery.replica import ReplicatedRegistry
from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, STATUS_OK, Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agents.platform import AgentPlatform
    from repro.simkernel.monitor import Monitor
    from repro.simkernel.simulator import Simulator


@dataclasses.dataclass(frozen=True)
class FailoverEvent:
    """One transition of the broker group's lifecycle timeline.

    Attributes
    ----------
    time_s:
        Virtual time of the transition.
    phase:
        ``"activate"`` (initial), ``"down"`` (active lost),
        ``"promote"`` (standby took over), ``"stalled"`` (no live
        standby to promote), ``"rejoin"`` (member back as standby).
    broker_id:
        The member concerned (None for ``stalled``).
    detail:
        Human-readable context (host, replayed events, outage length).
    """

    time_s: float
    phase: str
    broker_id: int | None
    detail: str


@dataclasses.dataclass
class _BrokerMember:
    """One broker identity: an id, a host, and a lagging log view."""

    id: int
    host_node: int | None
    view: ReplicatedRegistry
    alive: bool = True


class BrokerGroup:
    """Active/standby brokers sharing one event log.

    Parameters
    ----------
    sim / platform:
        The clock and the agent fabric the active broker serves on.
    log:
        The shared source of truth every member's view materializes.
    matcher:
        Semantic matcher for the member views.
    hosts:
        One entry per member: the topology node the member runs on
        (None = wired side, immune to node faults).  Member ids are the
        indices; member 0 is the initial active.
    service_name:
        The well-known agent name clients address; it always resolves to
        the current active broker.
    n_shards / replication:
        Shape of each member's :class:`~repro.discovery.replica.ReplicatedRegistry`.
    detection_delay_s:
        Time between the active's death and the promotion decision.
    replay_s_per_event:
        Simulated seconds of replay work per missed log event.
    top_k:
        Forwarded to each :class:`~repro.discovery.broker.BrokerAgent`.

    Notify the group of host transitions with :meth:`node_down` /
    :meth:`node_up` -- the same hook shape churn and the
    :class:`~repro.faults.FaultInjector` already speak.
    """

    def __init__(
        self,
        sim: "Simulator",
        platform: "AgentPlatform",
        log: EventLog,
        matcher: SemanticMatcher,
        hosts: typing.Sequence[int | None],
        *,
        service_name: str = "broker",
        n_shards: int = 4,
        replication: int = 2,
        detection_delay_s: float = 2.0,
        replay_s_per_event: float = 0.002,
        monitor: "Monitor | None" = None,
        tracer: Tracer | None = None,
        top_k: int | None = 10,
    ) -> None:
        if not hosts:
            raise ValueError("a broker group needs at least one member")
        if not (math.isfinite(detection_delay_s) and detection_delay_s >= 0):
            raise ValueError("detection_delay_s must be finite and >= 0")
        if not (math.isfinite(replay_s_per_event) and replay_s_per_event >= 0):
            raise ValueError("replay_s_per_event must be finite and >= 0")
        self.sim = sim
        self.platform = platform
        self.log = log
        self.service_name = service_name
        self.detection_delay_s = float(detection_delay_s)
        self.replay_s_per_event = float(replay_s_per_event)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.top_k = top_k
        self.members = [
            _BrokerMember(
                id=i,
                host_node=None if host is None else int(host),
                view=ReplicatedRegistry(
                    matcher, n_shards, replication, log=log, live=False,
                    monitor=monitor, name=f"{service_name}-{i}"),
            )
            for i, host in enumerate(hosts)
        ]
        self.active_id: int | None = None
        self.timeline: list[FailoverEvent] = []
        self.failovers = 0
        self._outage_started: float | None = None
        self._failover_span = NOOP_SPAN
        self._activate(self.members[0], initial=True)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def active(self) -> _BrokerMember | None:
        """The currently-serving member (None mid-failover)."""
        return None if self.active_id is None else self.members[self.active_id]

    def active_name(self) -> str:
        """The stable name clients should address (survives failovers)."""
        return self.service_name

    def active_broker(self) -> BrokerAgent | None:
        """The registered :class:`BrokerAgent`, or None during an outage."""
        if self.platform.is_registered(self.service_name):
            agent = self.platform.agent(self.service_name)
            if isinstance(agent, BrokerAgent):
                return agent
        return None

    def staleness(self) -> int:
        """Log events not yet served by any promotable broker: 0 while an
        active broker is live; during an outage, the lag of the most
        caught-up live standby (or the whole log if none survives)."""
        if self.active is not None:
            return self.active.view.lag
        live = [m.view.lag for m in self.members if m.alive]
        return min(live) if live else self.log.last_seq

    def online(self) -> bool:
        """Is an active broker currently serving?"""
        return self.active_id is not None

    def _record(self, phase: str, broker_id: int | None, detail: str) -> None:
        self.timeline.append(FailoverEvent(self.sim.now, phase, broker_id, detail))

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def node_down(self, node: int) -> None:
        """A topology node died; any member hosted there goes down."""
        for member in self.members:
            if member.host_node == node and member.alive:
                member.alive = False
                if member.id == self.active_id:
                    self._begin_failover(member)

    def node_up(self, node: int) -> None:
        """A topology node recovered; members hosted there rejoin as
        standbys (their stale views catch up at their next promotion)."""
        for member in self.members:
            if member.host_node == node and not member.alive:
                member.alive = True
                self._record("rejoin", member.id, f"host {node} recovered")
                if self.active_id is None:
                    self.sim.schedule(self.detection_delay_s, self._try_promote,
                                      label="broker-failover:promote")

    # ------------------------------------------------------------------
    # the failover protocol
    # ------------------------------------------------------------------
    def _begin_failover(self, member: _BrokerMember) -> None:
        member.view.detach()  # its in-memory state died with the host
        if self.platform.is_registered(self.service_name):
            self.platform.unregister(self.service_name)
        self.active_id = None
        self._outage_started = self.sim.now
        self._record("down", member.id, f"host {member.host_node} crashed")
        if self.monitor is not None:
            self.monitor.counter("disc.broker_down").add(1)
        if self.tracer.enabled:
            self._failover_span = self.tracer.span(
                "discovery.failover", broker_id=member.id,
                host=member.host_node)
            self.tracer.event("disc.broker_down", broker_id=member.id,
                              host=member.host_node)
        self.sim.schedule(self.detection_delay_s, self._try_promote,
                          label="broker-failover:promote")

    def _try_promote(self) -> None:
        if self.active_id is not None:
            return
        candidates = [m for m in self.members if m.alive]
        if not candidates:
            self._record("stalled", None, "no live standby to promote")
            return
        chosen = min(candidates, key=lambda m: m.id)
        tail = self.log.last_seq - chosen.view.applied_seq
        delay = tail * self.replay_s_per_event
        self.sim.schedule(delay, lambda: self._finish_promotion(chosen),
                          label="broker-failover:replay")

    def _finish_promotion(self, member: _BrokerMember) -> None:
        if self.active_id is not None:
            return
        if not member.alive:  # died mid-replay; pick the next candidate
            self._try_promote()
            return
        self._activate(member, initial=False)

    def _activate(self, member: _BrokerMember, *, initial: bool) -> None:
        replayed = member.view.catch_up()
        member.view.attach()
        agent = BrokerAgent(self.service_name, member.view, top_k=self.top_k)
        self.platform.register(agent, host_node=member.host_node)
        self.active_id = member.id
        if initial:
            self._record("activate", member.id,
                         f"host {member.host_node}, replayed {replayed} events")
            return
        outage = self.sim.now - (self._outage_started
                                 if self._outage_started is not None else self.sim.now)
        self._outage_started = None
        self.failovers += 1
        self._record("promote", member.id,
                     f"replayed {replayed} events, outage {outage:.3g} s")
        if self.monitor is not None:
            self.monitor.counter("disc.failover").add(1)
            self.monitor.histogram("disc.failover_time").observe(outage)
        if self.tracer.enabled:
            self.tracer.event("disc.promote", broker_id=member.id,
                              replayed=replayed, outage_s=outage)
            self._failover_span.set(promoted=member.id, replayed=replayed)
            self._failover_span.end(STATUS_OK)
            self._failover_span = NOOP_SPAN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BrokerGroup(members={len(self.members)}, "
                f"active={self.active_id}, failovers={self.failovers})")
