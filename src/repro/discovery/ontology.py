"""A description-logic-lite ontology.

Stands in for DAML+OIL: a directed acyclic class hierarchy (multiple
parents allowed) supporting the reasoning the semantic matcher needs --
subsumption, least common subsumers and a semantic distance.  The RDF/XML
serialization of DAML is irrelevant to matching behaviour, so we model
only the taxonomy.
"""

from __future__ import annotations

import collections
import typing


class Ontology:
    """A rooted DAG of classes.

    Every class except the root has at least one parent.  Class names are
    case-sensitive strings.
    """

    def __init__(self, root: str = "Thing") -> None:
        self.root = root
        self._parents: dict[str, set[str]] = {root: set()}
        self._children: dict[str, set[str]] = {root: set()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, name: str, parents: typing.Iterable[str] | str | None = None) -> None:
        """Add class ``name`` under ``parents`` (default: the root).

        Re-adding an existing class adds any new parent edges (DAML's
        monotone extension behaviour).  Cycles are rejected.
        """
        if isinstance(parents, str):
            parents = [parents]
        parent_list = list(parents) if parents else [self.root]
        for p in parent_list:
            if p not in self._parents:
                raise KeyError(f"unknown parent class {p!r}")
        if name not in self._parents:
            self._parents[name] = set()
            self._children[name] = set()
        for p in parent_list:
            if p == name or self.subsumes(name, p):
                raise ValueError(f"adding {name!r} under {p!r} would create a cycle")
            self._parents[name].add(p)
            self._children[p].add(name)

    def has_class(self, name: str) -> bool:
        """True iff ``name`` is defined."""
        return name in self._parents

    def classes(self) -> list[str]:
        """All class names, sorted."""
        return sorted(self._parents)

    def parents(self, name: str) -> set[str]:
        """Direct parents of ``name``."""
        return set(self._parents[name])

    def children(self, name: str) -> set[str]:
        """Direct children of ``name``."""
        return set(self._children[name])

    # ------------------------------------------------------------------
    # reasoning
    # ------------------------------------------------------------------
    def ancestors(self, name: str) -> set[str]:
        """All classes subsuming ``name`` (excluding itself)."""
        seen: set[str] = set()
        frontier = collections.deque(self._parents[name])
        while frontier:
            cls = frontier.popleft()
            if cls not in seen:
                seen.add(cls)
                frontier.extend(self._parents[cls])
        return seen

    def descendants(self, name: str) -> set[str]:
        """All classes subsumed by ``name`` (excluding itself)."""
        seen: set[str] = set()
        frontier = collections.deque(self._children[name])
        while frontier:
            cls = frontier.popleft()
            if cls not in seen:
                seen.add(cls)
                frontier.extend(self._children[cls])
        return seen

    def subsumes(self, general: str, specific: str) -> bool:
        """True iff ``general`` is ``specific`` or an ancestor of it."""
        if general not in self._parents or specific not in self._parents:
            raise KeyError("unknown class")
        return general == specific or general in self.ancestors(specific)

    def depth(self, name: str) -> int:
        """Shortest edge distance from the root (root is 0)."""
        if name == self.root:
            return 0
        dist = {self.root: 0}
        frontier = collections.deque([self.root])
        while frontier:
            cls = frontier.popleft()
            for child in self._children[cls]:
                if child not in dist:
                    dist[child] = dist[cls] + 1
                    if child == name:
                        return dist[child]
                    frontier.append(child)
        raise KeyError(f"unknown class {name!r}")

    def least_common_subsumers(self, a: str, b: str) -> set[str]:
        """The deepest classes subsuming both ``a`` and ``b``."""
        common = (self.ancestors(a) | {a}) & (self.ancestors(b) | {b})
        if not common:
            return {self.root}
        max_depth = max(self.depth(c) for c in common)
        return {c for c in common if self.depth(c) == max_depth}

    def distance(self, a: str, b: str) -> int:
        """Semantic distance: shortest up-down path through an LCS.

        0 for identical classes; grows with taxonomic separation.  Used
        by the matcher's fuzzy scoring.
        """
        if a == b:
            return 0
        best = None
        up_a = self._hops_up(a)
        up_b = self._hops_up(b)
        for lcs in self.least_common_subsumers(a, b):
            d = up_a[lcs] + up_b[lcs]
            if best is None or d < best:
                best = d
        assert best is not None
        return best

    def _hops_up(self, name: str) -> dict[str, int]:
        """Min hops from ``name`` to each of its ancestors (and itself)."""
        dist = {name: 0}
        frontier = collections.deque([name])
        while frontier:
            cls = frontier.popleft()
            for p in self._parents[cls]:
                if p not in dist:
                    dist[p] = dist[cls] + 1
                    frontier.append(p)
        return dist

    def related(self, a: str, b: str, min_depth: int = 2) -> bool:
        """True iff a and b share a *specific enough* common ancestor.

        Sharing only the root (or a depth-1 hub class like ``Service``)
        is not meaningful siblinghood -- nearly everything would be
        "related".  The default requires a common subsumer at depth >= 2,
        i.e. inside the same service family.
        """
        lcs = self.least_common_subsumers(a, b)
        return any(self.depth(c) >= min_depth for c in lcs)


def build_service_ontology() -> Ontology:
    """The default pervasive-grid service taxonomy.

    Covers the service families the paper names: printers (the motivating
    Jini example), computational solvers (the NSC legacy codes), data/
    sensor services (temperature, toxins, pathogens), and device-facing
    utility services.  Used by examples, tests and the E5 benchmark.
    """
    ont = Ontology()
    ont.add_class("Service")
    # hardware-facing services
    ont.add_class("DeviceService", "Service")
    ont.add_class("PrinterService", "DeviceService")
    ont.add_class("ColorPrinterService", "PrinterService")
    ont.add_class("LaserPrinterService", "PrinterService")
    ont.add_class("DisplayService", "DeviceService")
    ont.add_class("StorageService", "DeviceService")
    # computation
    ont.add_class("ComputeService", "Service")
    ont.add_class("SolverService", "ComputeService")
    ont.add_class("PDESolverService", "SolverService")
    ont.add_class("LinearAlgebraService", "SolverService")
    ont.add_class("DataMiningService", "ComputeService")
    ont.add_class("ClusteringService", "DataMiningService")
    ont.add_class("DecisionTreeService", "DataMiningService")
    ont.add_class("FourierSpectrumService", "DataMiningService")
    ont.add_class("EnsembleCombinerService", "DataMiningService")
    ont.add_class("AggregationService", "ComputeService")
    # data / sensing
    ont.add_class("DataService", "Service")
    ont.add_class("SensorService", "DataService")
    ont.add_class("TemperatureSensorService", "SensorService")
    ont.add_class("ToxinSensorService", "SensorService")
    ont.add_class("PathogenSensorService", "SensorService")
    ont.add_class("DatabaseService", "DataService")
    ont.add_class("HospitalRecordsService", "DatabaseService")
    ont.add_class("WeatherService", "DataService")
    ont.add_class("StreamService", "DataService")
    # data types (inputs/outputs)
    ont.add_class("Data")
    ont.add_class("TemperatureReading", "Data")
    ont.add_class("ToxinReading", "Data")
    ont.add_class("DataStream", "Data")
    ont.add_class("DecisionTree", "Data")
    ont.add_class("FourierSpectrum", "Data")
    ont.add_class("TemperatureDistribution", "Data")
    ont.add_class("Document", "Data")
    return ont
