"""Service registries: local and distributed-broker.

"UDDI's present highly centralized model is not appropriate for our
scenario, but ... a distributed set of brokers could be created." (§3)

:class:`ServiceRegistry` is one broker's store.  :class:`DistributedBrokerNetwork`
links several registries into a peering overlay: a query hits the local
broker first and is forwarded to peers up to a hop limit, merging ranked
results -- the decentralized alternative to one UDDI node.
"""

from __future__ import annotations

import typing

from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.matcher import MatchResult, SemanticMatcher


class ServiceRegistry:
    """One broker's advertisement store with semantic search.

    Parameters
    ----------
    matcher:
        The semantic matcher used for searches.
    name:
        Broker name (diagnostics, peering).
    """

    def __init__(self, matcher: SemanticMatcher, name: str = "registry") -> None:
        self.matcher = matcher
        self.name = name
        self._services: dict[str, ServiceDescription] = {}
        self.advertise_count = 0
        self.search_count = 0

    # ------------------------------------------------------------------
    def advertise(self, service: ServiceDescription) -> None:
        """Register (or refresh) a service advertisement."""
        self._services[service.name] = service
        self.advertise_count += 1

    def withdraw(self, service_name: str) -> bool:
        """Remove an advertisement; True if it was present."""
        return self._services.pop(service_name, None) is not None

    def withdraw_host(self, host_node: int) -> int:
        """Drop every advertisement from ``host_node`` (its node went down).

        Returns the number withdrawn.  Churn processes call this via
        their ``on_change`` hook.
        """
        doomed = [n for n, s in self._services.items() if s.host_node == host_node]
        for name in doomed:
            del self._services[name]
        return len(doomed)

    def get(self, service_name: str) -> ServiceDescription | None:
        """Look up one advertisement by name."""
        return self._services.get(service_name)

    def services(self) -> list[ServiceDescription]:
        """All current advertisements, by name order."""
        return [self._services[n] for n in sorted(self._services)]

    def __len__(self) -> int:
        return len(self._services)

    # ------------------------------------------------------------------
    def search(self, request: ServiceRequest, top_k: int | None = None) -> list[MatchResult]:
        """Ranked semantic matches among local advertisements."""
        self.search_count += 1
        return self.matcher.rank(request, self.services(), top_k=top_k)


class DistributedBrokerNetwork:
    """A peering overlay of registries.

    Parameters
    ----------
    registries:
        The member brokers.
    peers:
        Adjacency as ``{broker_name: [peer_names]}``; defaults to a full
        mesh.

    Queries start at a home broker and propagate breadth-first up to
    ``max_hops`` peer hops; results are merged, deduplicated by service
    name (best result wins) and re-sorted.
    """

    def __init__(
        self,
        registries: list[ServiceRegistry],
        peers: dict[str, list[str]] | None = None,
    ) -> None:
        if not registries:
            raise ValueError("need at least one registry")
        self.registries = {r.name: r for r in registries}
        if len(self.registries) != len(registries):
            raise ValueError("registry names must be unique")
        if peers is None:
            peers = {
                name: [other for other in self.registries if other != name]
                for name in self.registries
            }
        for name, plist in peers.items():
            if name not in self.registries:
                raise KeyError(f"unknown broker {name!r}")
            for p in plist:
                if p not in self.registries:
                    raise KeyError(f"unknown peer {p!r}")
        self.peers = peers

    def home_of(self, host_node: int | None, assignment: typing.Callable[[int | None], str]) -> ServiceRegistry:
        """Resolve the home broker for a host via an assignment function."""
        return self.registries[assignment(host_node)]

    def search(
        self,
        request: ServiceRequest,
        home: str,
        max_hops: int = 1,
        top_k: int | None = None,
    ) -> tuple[list[MatchResult], int]:
        """Federated search from ``home``; returns (results, brokers_asked)."""
        if home not in self.registries:
            raise KeyError(f"unknown broker {home!r}")
        visited = {home}
        frontier = [home]
        merged: dict[str, MatchResult] = {}
        hops = 0
        while frontier:
            for name in frontier:
                for result in self.registries[name].search(request):
                    prev = merged.get(result.service.name)
                    if prev is None or result.sort_key() < prev.sort_key():
                        merged[result.service.name] = result
            if hops >= max_hops:
                break
            nxt = []
            for name in frontier:
                for peer in self.peers.get(name, []):
                    if peer not in visited:
                        visited.add(peer)
                        nxt.append(peer)
            frontier = nxt
            hops += 1
        results = sorted(merged.values(), key=MatchResult.sort_key)
        if top_k is not None:
            results = results[:top_k]
        return results, len(visited)
