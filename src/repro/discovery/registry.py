"""Service registries: local and distributed-broker.

"UDDI's present highly centralized model is not appropriate for our
scenario, but ... a distributed set of brokers could be created." (§3)

:class:`ServiceRegistry` is one broker's store, and since the
event-sourcing refactor it is a *materialization of its event log*:
``advertise``/``withdraw``/``withdraw_host`` append
:class:`~repro.discovery.log.RegistryEvent` entries and the in-memory
dict is just the folded state, rebuildable from any log prefix with
:meth:`ServiceRegistry.rebuild`.  :class:`DistributedBrokerNetwork`
links several registries into a peering overlay: a query hits the local
broker first and is forwarded to peers up to a hop limit, merging ranked
results -- the decentralized alternative to one UDDI node.  The fully
replicated/sharded store lives in :mod:`repro.discovery.replica`; the
single-active broker failover protocol in
:mod:`repro.discovery.failover`.
"""

from __future__ import annotations

import typing

from repro.discovery.description import ServiceDescription, ServiceRequest
from repro.discovery.log import EventLog, RegistryEvent, apply_event
from repro.discovery.matcher import MatchResult, SemanticMatcher

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.monitor import Monitor


class ServiceRegistry:
    """One broker's advertisement store with semantic search.

    Parameters
    ----------
    matcher:
        The semantic matcher used for searches.
    name:
        Broker name (diagnostics, peering).
    log:
        The event log this registry materializes.  Default: a private
        log, making the registry behave exactly like the pre-event-sourced
        version while still being replayable.  A pre-populated log is
        materialized at construction; *live* fan-out of one log to many
        consumers is the replica layer's job
        (:class:`~repro.discovery.replica.ReplicatedRegistry`).
    monitor:
        Optional :class:`~repro.simkernel.monitor.Monitor`; when present
        the registry counts ``disc.advertise`` / ``disc.search`` /
        ``disc.withdraw`` into the canonical catalog.
    """

    def __init__(self, matcher: SemanticMatcher, name: str = "registry",
                 *, log: EventLog | None = None,
                 monitor: "Monitor | None" = None) -> None:
        self.matcher = matcher
        self.name = name
        self.log = log if log is not None else EventLog()
        self.monitor = monitor
        self._services: dict[str, ServiceDescription] = {}
        # a pre-populated shared log materializes immediately
        self.applied_seq = 0
        for event in self.log.events():
            self._apply(event)
        self.advertise_count = 0
        self.search_count = 0
        self.withdraw_count = 0

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _apply(self, event: RegistryEvent) -> int:
        """Fold one log event into local state; returns withdrawals."""
        removed = apply_event(self._services, event)
        self.applied_seq = event.seq
        return removed

    def _count(self, counter: str, n: int = 1) -> None:
        if self.monitor is not None and n:
            self.monitor.counter(counter).add(n)

    @classmethod
    def rebuild(cls, matcher: SemanticMatcher, log: EventLog,
                upto_seq: int | None = None, name: str = "rebuilt",
                ) -> "ServiceRegistry":
        """A fresh registry deterministically replayed from ``log``.

        Replaying the same prefix always yields byte-identical
        :meth:`services` listings -- the recovery path after a broker
        crash, and the property the E13-D benchmark gates on.
        """
        registry = cls(matcher, name=name)
        for event in log.events(upto_seq=upto_seq):
            registry._apply(event)
        return registry

    # ------------------------------------------------------------------
    def advertise(self, service: ServiceDescription) -> None:
        """Register (or refresh) a service advertisement."""
        event = self.log.append_advertise(service,
                                          refresh=service.name in self._services)
        self._apply(event)
        self.advertise_count += 1
        self._count("disc.advertise")

    def withdraw(self, service_name: str) -> bool:
        """Remove an advertisement; True if it was present."""
        event = self.log.append_withdraw(service_name)
        removed = self._apply(event)
        self.withdraw_count += removed
        self._count("disc.withdraw", removed)
        return removed > 0

    def withdraw_host(self, host_node: int) -> int:
        """Drop every advertisement from ``host_node`` (its node went down).

        Returns the number withdrawn.  Churn processes call this via
        their ``on_change`` hook.
        """
        event = self.log.append_withdraw_host(host_node)
        removed = self._apply(event)
        self.withdraw_count += removed
        self._count("disc.withdraw", removed)
        return removed

    def get(self, service_name: str) -> ServiceDescription | None:
        """Look up one advertisement by name."""
        return self._services.get(service_name)

    def services(self) -> list[ServiceDescription]:
        """All current advertisements, by name order."""
        return [self._services[n] for n in sorted(self._services)]

    def __len__(self) -> int:
        return len(self._services)

    # ------------------------------------------------------------------
    def search(self, request: ServiceRequest, top_k: int | None = None) -> list[MatchResult]:
        """Ranked semantic matches among local advertisements."""
        self.search_count += 1
        self._count("disc.search")
        return self.matcher.rank(request, self.services(), top_k=top_k)


class DistributedBrokerNetwork:
    """A peering overlay of registries.

    Parameters
    ----------
    registries:
        The member brokers.
    peers:
        Adjacency as ``{broker_name: [peer_names]}``; defaults to a full
        mesh.

    Queries start at a home broker and propagate breadth-first up to
    ``max_hops`` peer hops; results are merged, deduplicated by service
    name (best result wins) and re-sorted.
    """

    def __init__(
        self,
        registries: list[ServiceRegistry],
        peers: dict[str, list[str]] | None = None,
    ) -> None:
        if not registries:
            raise ValueError("need at least one registry")
        self.registries = {r.name: r for r in registries}
        if len(self.registries) != len(registries):
            raise ValueError("registry names must be unique")
        if peers is None:
            peers = {
                name: [other for other in self.registries if other != name]
                for name in self.registries
            }
        for name, plist in peers.items():
            if name not in self.registries:
                raise KeyError(f"unknown broker {name!r}")
            for p in plist:
                if p not in self.registries:
                    raise KeyError(f"unknown peer {p!r}")
        self.peers = peers

    def home_of(self, host_node: int | None, assignment: typing.Callable[[int | None], str]) -> ServiceRegistry:
        """Resolve the home broker for a host via an assignment function."""
        return self.registries[assignment(host_node)]

    def withdraw_host(self, host_node: int) -> int:
        """Withdraw a dead host's services from **every** member broker.

        A service advertised (or cached) at several brokers would
        otherwise stay reachable through peering after its host died --
        the federated overlay's version of the stale-registry bug.
        Returns the total withdrawn across members.
        """
        return sum(registry.withdraw_host(host_node)
                   for registry in self.registries.values())

    def search(
        self,
        request: ServiceRequest,
        home: str,
        max_hops: int = 1,
        top_k: int | None = None,
    ) -> tuple[list[MatchResult], int]:
        """Federated search from ``home``; returns (results, brokers_asked)."""
        if home not in self.registries:
            raise KeyError(f"unknown broker {home!r}")
        visited = {home}
        frontier = [home]
        merged: dict[str, MatchResult] = {}
        hops = 0
        while frontier:
            for name in frontier:
                for result in self.registries[name].search(request):
                    prev = merged.get(result.service.name)
                    if prev is None or result.sort_key() < prev.sort_key():
                        merged[result.service.name] = result
            if hops >= max_hops:
                break
            nxt = []
            for name in frontier:
                for peer in self.peers.get(name, []):
                    if peer not in visited:
                        visited.add(peer)
                        nxt.append(peer)
            frontier = nxt
            hops += 1
        results = sorted(merged.values(), key=MatchResult.sort_key)
        if top_k is not None:
            results = results[:top_k]
        return results, len(visited)
