"""The append-only registry event log: discovery's source of truth.

"UDDI's present highly centralized model is not appropriate for our
scenario" (§3) -- and neither is a single in-memory dict.  Every mutation
of the service directory is an immutable :class:`RegistryEvent` appended
to an :class:`EventLog` with a monotonic sequence number; registries,
shard replicas and standby brokers are all *materializations* of a log
prefix.  Because :func:`apply_event` is a pure function of
``(state, event)``, any consumer replaying the same prefix reconstructs
byte-identical state -- the property the E13-D crash-storm benchmark
asserts, and the reason a broker crash can never lose advertisements
that reached the log.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.discovery.description import ServiceDescription

#: Legal event kinds. ``refresh`` re-advertises a known name; it applies
#: exactly like ``advertise`` and exists so metrics and debuggers can
#: tell liveness traffic from genuinely new services.
EVENT_KINDS = ("advertise", "refresh", "withdraw", "withdraw-host")


@dataclasses.dataclass(frozen=True)
class RegistryEvent:
    """One immutable entry of the discovery log.

    Attributes
    ----------
    seq:
        Monotonic sequence number, 1-based, assigned by the log.
    time_s:
        Virtual time the event was appended.
    kind:
        One of :data:`EVENT_KINDS`.
    service:
        The advertised profile (``advertise`` / ``refresh`` only).
    service_name:
        The withdrawn instance name (``withdraw`` only).
    host_node:
        The dead host (``withdraw-host`` only).
    """

    seq: int
    time_s: float
    kind: str
    service: ServiceDescription | None = None
    service_name: str | None = None
    host_node: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}")
        if self.kind in ("advertise", "refresh") and self.service is None:
            raise ValueError(f"{self.kind} events need a service")
        if self.kind == "withdraw" and not self.service_name:
            raise ValueError("withdraw events need a service_name")
        if self.kind == "withdraw-host" and self.host_node is None:
            raise ValueError("withdraw-host events need a host_node")

    @property
    def category(self) -> str | None:
        """The ontology class the event concerns (None for withdrawals,
        whose shard owner is whoever currently holds the name)."""
        return self.service.category if self.service is not None else None


def apply_event(state: dict[str, ServiceDescription], event: RegistryEvent,
                *, accept: typing.Callable[[ServiceDescription], bool] | None = None,
                ) -> int:
    """Apply one event to a ``name -> description`` map, in place.

    ``accept`` filters *advertisements only* (shard replicas own a subset
    of categories); withdrawals always apply, so a replica never keeps a
    name the log has withdrawn.  Returns the number of descriptions
    removed (0 for advertisements), letting callers count withdrawals.
    """
    if event.kind in ("advertise", "refresh"):
        if accept is None or accept(event.service):
            state[event.service.name] = event.service
        return 0
    if event.kind == "withdraw":
        return 1 if state.pop(event.service_name, None) is not None else 0
    # withdraw-host
    doomed = [n for n, s in state.items() if s.host_node == event.host_node]
    for name in doomed:
        del state[name]
    return len(doomed)


class EventLog:
    """An append-only, subscribable list of :class:`RegistryEvent`.

    Parameters
    ----------
    clock:
        Zero-argument callable stamping ``time_s`` on appends (pass
        ``lambda: sim.now``); defaults to a constant 0.0 for logs used
        outside a simulation.

    Consumers either *subscribe* (live registries receive each event as
    it lands) or *replay* (:meth:`events`/:meth:`replay` rebuild state
    from any prefix -- what a promoted standby does with the log tail).
    """

    def __init__(self, clock: typing.Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._events: list[RegistryEvent] = []
        self._subscribers: list[typing.Callable[[RegistryEvent], None]] = []

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _append(self, event: RegistryEvent) -> RegistryEvent:
        self._events.append(event)
        for fn in list(self._subscribers):
            fn(event)
        return event

    def append_advertise(self, service: ServiceDescription,
                         *, refresh: bool = False) -> RegistryEvent:
        """Append an ``advertise`` (or ``refresh``) of ``service``."""
        kind = "refresh" if refresh else "advertise"
        return self._append(RegistryEvent(self.last_seq + 1, self._clock(),
                                          kind, service=service))

    def append_withdraw(self, service_name: str) -> RegistryEvent:
        """Append a ``withdraw`` of one instance name."""
        return self._append(RegistryEvent(self.last_seq + 1, self._clock(),
                                          "withdraw", service_name=service_name))

    def append_withdraw_host(self, host_node: int) -> RegistryEvent:
        """Append a ``withdraw-host`` for every service on a dead node."""
        return self._append(RegistryEvent(self.last_seq + 1, self._clock(),
                                          "withdraw-host", host_node=int(host_node)))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when empty)."""
        return self._events[-1].seq if self._events else 0

    def events(self, after_seq: int = 0,
               upto_seq: int | None = None) -> list[RegistryEvent]:
        """Events with ``after_seq < seq <= upto_seq`` (the replayable tail).

        Sequence numbers are dense and 1-based, so this is a plain slice.
        """
        if after_seq < 0:
            raise ValueError("after_seq must be >= 0")
        end = len(self._events) if upto_seq is None else min(upto_seq, len(self._events))
        return self._events[after_seq:end]

    def replay(self, after_seq: int = 0, upto_seq: int | None = None,
               *, accept: typing.Callable[[ServiceDescription], bool] | None = None,
               into: dict[str, ServiceDescription] | None = None,
               ) -> dict[str, ServiceDescription]:
        """Materialize a log range into a ``name -> description`` map.

        Replaying ``[0, upto]`` into an empty map is the deterministic
        rebuild the acceptance tests rely on; replaying ``(synced, last]``
        into existing state is a standby's catch-up.
        """
        state = into if into is not None else {}
        for event in self.events(after_seq, upto_seq):
            apply_event(state, event, accept=accept)
        return state

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> typing.Iterator[RegistryEvent]:
        return iter(self._events)

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def subscribe(self, fn: typing.Callable[[RegistryEvent], None]) -> None:
        """Deliver every future append to ``fn`` (idempotent)."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: typing.Callable[[RegistryEvent], None]) -> None:
        """Stop delivering appends to ``fn`` (no-op when absent)."""
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(events={len(self._events)}, last_seq={self.last_seq})"
