"""The wireless network façade: hop-by-hop message delivery.

:class:`WirelessNetwork` ties together a :class:`~repro.network.topology.Topology`,
a :class:`~repro.network.radio.RadioModel`, per-node batteries and the
shared simulator.  It delivers messages hop by hop with serialization
delay, propagation latency, per-hop loss, and energy charged to both ends
of each hop; routes are min-hop BFS paths computed against the topology
*as it is when each hop starts*, so mobility and node death affect
in-flight messages (the paper's "frequent disconnections and network
topology changes").
"""

from __future__ import annotations

import copy
import dataclasses
import typing

import numpy as np

from repro.simkernel import Simulator, Monitor
from repro.network.energy import Battery, RadioEnergyModel
from repro.network.message import DeliveryReceipt, Message
from repro.network.radio import RadioModel
from repro.network.topology import Topology
from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, STATUS_ERROR, Tracer


def record_route_cache_metrics(topology: Topology, monitor: Monitor) -> None:
    """Fold the topology's route-cache stats into ``monitor``.

    Records the canonical ``net.route_cache.hits`` / ``.misses`` /
    ``.invalidations`` counters.  Idempotent: each call adds only the
    delta accumulated since the counters were last synced, so it is safe
    to call once per epoch or once at the end of a run.
    """
    for name, total in topology.route_cache_stats.items():
        counter = monitor.counter(f"net.route_cache.{name}")
        delta = total - counter.value
        if delta:
            counter.add(delta)


def _receiver_copy(message: Message) -> Message:
    """A per-receiver copy of a broadcast message.

    Keeps the ``msg_id`` (flooding/gossip dedup by id must keep working)
    but gives the receiver its own ``hops`` list and a shallow copy of the
    payload, so receivers cannot mutate each other's view.
    """
    return dataclasses.replace(
        message,
        hops=list(message.hops),
        payload=copy.copy(message.payload) if message.payload is not None else None,
    )


class NetworkNode:
    """One endpoint on the wireless network.

    Attributes
    ----------
    node_id:
        Index into the topology.
    battery:
        Energy reserve; radio activity draws from it.
    receive:
        Application callback ``(Message) -> None`` invoked on delivery;
        settable after construction (agents attach themselves here).
    """

    __slots__ = ("node_id", "battery", "receive", "name")

    def __init__(self, node_id: int, battery: Battery, name: str = "") -> None:
        self.node_id = node_id
        self.battery = battery
        self.receive: typing.Callable[[Message], None] | None = None
        self.name = name or f"node{node_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkNode({self.node_id}, {self.battery!r})"


class WirelessNetwork:
    """Event-driven multi-hop wireless network.

    Parameters
    ----------
    sim:
        Shared simulator.
    topology:
        Node positions / adjacency.
    radio:
        Link characteristics (bandwidth, latency, loss, range).  The
        topology's range and the radio's range should agree; the topology
        wins for connectivity, the radio drives timing/energy.
    energy_model:
        First-order radio energy model.
    batteries:
        Per-node batteries; nodes with depleted batteries are killed in
        the topology and can no longer relay.
    rng:
        Random stream for loss draws.
    monitor:
        Instrumentation sink (counters: ``net.sent``, ``net.delivered``,
        ``net.dropped``, ``net.hops``, ``net.energy_j``; series:
        ``net.latency``).
    tracer:
        Span/event sink (default: the shared no-op).  Each unicast send
        opens a ``net.send`` span that closes on delivery or drop, with
        ``net.hop`` events per relay -- the hop-level causality the flat
        counters cannot give.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        radio: RadioModel,
        energy_model: RadioEnergyModel | None = None,
        batteries: list[Battery] | None = None,
        rng: np.random.Generator | None = None,
        monitor: Monitor | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.radio = radio
        self.energy_model = energy_model or RadioEnergyModel()
        if batteries is None:
            batteries = [Battery(float("inf")) for _ in range(topology.n_nodes)]
        if len(batteries) != topology.n_nodes:
            raise ValueError("need one battery per topology node")
        self.nodes = [NetworkNode(i, batteries[i]) for i in range(topology.n_nodes)]
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.monitor = monitor or Monitor()
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        message: Message,
        on_complete: typing.Callable[[DeliveryReceipt], None] | None = None,
    ) -> None:
        """Route ``message`` from ``message.src`` to ``message.dst``.

        Delivery is asynchronous: ``on_complete`` (if given) receives the
        :class:`~repro.network.message.DeliveryReceipt` when the message
        arrives or is dropped.  The destination node's ``receive`` hook is
        invoked on successful delivery.
        """
        if message.dst is None:
            raise ValueError("unicast send requires a destination; use broadcast_local")
        self.monitor.counter("net.sent").add()
        tracer = self.tracer
        span = NOOP_SPAN
        if tracer.enabled:
            span = tracer.span("net.send", msg_id=message.msg_id, src=message.src,
                               dst=message.dst, bits=message.size_bits)
        if not self.topology.is_alive(message.src):
            # a dead radio cannot transmit: no routing, no battery charge
            self._drop(message, 0.0, on_complete, "dead-source", span)
            return
        self._hop(message, message.src, 0.0, on_complete, start_time=self.sim.now, span=span)

    def broadcast_local(self, src: int, message: Message) -> list[int]:
        """Deliver ``message`` to every living neighbor of ``src`` at once.

        Models a single radio broadcast: the sender pays one transmission
        (at full range), each neighbor pays one reception.  Returns the
        ids of neighbors that received it (loss drawn independently per
        receiver).  Used by flooding/gossip.

        Each receiver gets its *own copy* of the message (same ``msg_id``,
        fresh ``hops`` list, shallow-copied payload), exactly as each
        radio decodes its own bytes off the air -- a receiver appending to
        ``message.hops`` or mutating a dict/list payload cannot corrupt
        what the other receivers see.
        """
        if not self.topology.is_alive(src):
            return []
        neighbors = self.topology.neighbors(src)
        tx = self.energy_model.tx_cost(message.size_bits, self.radio.range_m)
        self._charge(src, tx)
        energy_counter = self.monitor.counter("net.energy_j")
        energy_counter.add(tx)
        loss = self.radio.loss_prob
        if loss and neighbors:
            # one vectorized draw; numpy Generators produce the identical
            # stream for rng.random(n) and n scalar rng.random() calls, so
            # results match the historical per-neighbor draw bit for bit
            draws = self.rng.random(len(neighbors))
            delivered = [nbr for nbr, d in zip(neighbors, draws) if not (d < loss)]
        else:
            delivered = list(neighbors)
        rx = self.energy_model.rx_cost(message.size_bits)
        for nbr in delivered:
            # per-receiver scalar adds: n IEEE754 additions are not rx*n,
            # and the counter's accumulation order is pinned by tests
            self._charge(nbr, rx)
            energy_counter.add(rx)
        if delivered:
            # one fan-out event instead of one heap push per receiver:
            # the batched event delivers to every surviving receiver in
            # ascending-id order, exactly the order the per-receiver
            # events (consecutive seq at equal time/priority) fired in
            self._fan_out_later(delivered, _receiver_copy(message),
                                self.radio.hop_time(message.size_bits))
        if self.tracer.enabled:
            self.tracer.event("net.broadcast", msg_id=message.msg_id, src=src,
                              reached=len(delivered), neighbors=len(neighbors))
        return delivered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _hop(
        self,
        message: Message,
        current: int,
        energy_so_far: float,
        on_complete: typing.Callable[[DeliveryReceipt], None] | None,
        start_time: float,
        span=NOOP_SPAN,
    ) -> None:
        dst = message.dst
        assert dst is not None
        if current == dst:
            receipt = DeliveryReceipt(
                delivered=True,
                time=self.sim.now,
                hops=message.hop_count,
                energy_j=energy_so_far,
            )
            self.monitor.counter("net.delivered").add()
            self.monitor.counter("net.hops").add(receipt.hops)
            self.monitor.series("net.latency").record(self.sim.now, self.sim.now - start_time)
            if self.tracer.enabled:
                span.set(hops=receipt.hops, energy_j=receipt.energy_j)
            span.end()
            node = self.nodes[dst]
            if node.receive is not None:
                node.receive(message)
            if on_complete is not None:
                on_complete(receipt)
            return

        profiler = self.sim.profiler
        if profiler is not None and profiler.enabled:
            # routing is the kernel's expected wall-clock hotspot; give it
            # its own frame so flamegraphs separate it from dispatch
            with profiler.frame("net.route", "network"):
                path = self.topology.shortest_path(current, dst)
        else:
            path = self.topology.shortest_path(current, dst)
        if path is None or len(path) < 2:
            self._drop(message, energy_so_far, on_complete, "no-route", span)
            return
        nxt = path[1]

        dist = self.topology.distance(current, nxt)
        tx = self.energy_model.tx_cost(message.size_bits, dist)
        rx = self.energy_model.rx_cost(message.size_bits)
        self._charge(current, tx)
        self.monitor.counter("net.energy_j").add(tx)

        if self.radio.loss_prob and self.rng.random() < self.radio.loss_prob:
            self._drop(message, energy_so_far + tx, on_complete, "loss", span)
            return

        self._charge(nxt, rx)
        self.monitor.counter("net.energy_j").add(rx)
        message.hops.append(nxt)
        if self.tracer.enabled:
            span.event("net.hop", msg_id=message.msg_id, src=current, relay=nxt,
                       energy_j=tx + rx)
        delay = self.radio.hop_time(message.size_bits)
        self.sim.schedule(
            delay,
            lambda: self._hop(message, nxt, energy_so_far + tx + rx, on_complete, start_time, span)
            if self.topology.is_alive(nxt)
            else self._drop(message, energy_so_far + tx + rx, on_complete, "dead-node", span),
            label=f"hop:{message.msg_id}",
        )

    def _drop(
        self,
        message: Message,
        energy: float,
        on_complete: typing.Callable[[DeliveryReceipt], None] | None,
        reason: str,
        span=NOOP_SPAN,
    ) -> None:
        self.monitor.counter("net.dropped").add()
        if self.tracer.enabled:
            span.set(drop_reason=reason)
        span.end(STATUS_ERROR)
        if on_complete is not None:
            on_complete(
                DeliveryReceipt(delivered=False, time=self.sim.now, hops=message.hop_count, energy_j=energy, reason=reason)
            )

    def _deliver_later(self, dst: int, message: Message, delay: float) -> None:
        def deliver() -> None:
            node = self.nodes[dst]
            if self.topology.is_alive(dst) and node.receive is not None:
                node.receive(message)

        self.sim.schedule(delay, deliver, label=f"bcast:{message.msg_id}")

    def _fan_out_later(self, targets: list[int], snapshot: Message, delay: float) -> None:
        """Schedule one event that delivers ``snapshot`` to every target.

        ``snapshot`` is a frozen copy taken at broadcast time; each
        receiver still gets its own :func:`_receiver_copy` of it at
        delivery, and liveness is re-checked per receiver at fire time --
        both exactly as the historical one-event-per-receiver form did.
        """

        def fan_out() -> None:
            topology = self.topology
            nodes = self.nodes
            for dst in targets:
                node = nodes[dst]
                if topology.is_alive(dst) and node.receive is not None:
                    node.receive(_receiver_copy(snapshot))

        self.sim.schedule(delay, fan_out, label=f"bcast:{snapshot.msg_id}")

    def sync_route_cache_metrics(self) -> None:
        """Record the topology's route-cache stats into this monitor."""
        record_route_cache_metrics(self.topology, self.monitor)

    def _charge(self, node_id: int, joules: float) -> None:
        battery = self.nodes[node_id].battery
        alive = battery.draw(joules)
        if not alive and self.topology.is_alive(node_id):
            self.topology.kill(node_id)
            self.monitor.counter("net.node_deaths").add()

    # ------------------------------------------------------------------
    # accounting helpers (used by cost estimators)
    # ------------------------------------------------------------------
    def unicast_time(self, src: int, dst: int, bits: float) -> float | None:
        """Predicted delivery time along the current min-hop route.

        Returns None when src/dst are partitioned.  Pure prediction: no
        energy is charged, nothing is scheduled.
        """
        path = self.topology.shortest_path(src, dst)
        if path is None:
            return None
        return (len(path) - 1) * self.radio.hop_time(bits)

    def unicast_energy(self, src: int, dst: int, bits: float) -> float | None:
        """Predicted total radio energy along the current min-hop route."""
        path = self.topology.shortest_path(src, dst)
        if path is None:
            return None
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.energy_model.tx_cost(bits, self.topology.distance(a, b))
            total += self.energy_model.rx_cost(bits)
        return total
