"""Messages exchanged over the simulated wireless network."""

from __future__ import annotations

import dataclasses
import itertools
import typing

_message_ids = itertools.count()


@dataclasses.dataclass
class Message:
    """One application-level message.

    Attributes
    ----------
    src, dst:
        Node ids.  ``dst`` of ``None`` means local broadcast.
    size_bits:
        Payload size on the wire; drives serialization delay and energy.
    kind:
        Application tag (e.g. ``"query"``, ``"reading"``, ``"acl"``).
    payload:
        Arbitrary Python object; never serialized (we simulate cost, not
        encoding).
    hops:
        Route taken so far; appended by the network on each hop.
    """

    src: int
    dst: int | None
    size_bits: float
    kind: str = "data"
    payload: typing.Any = None
    hops: list[int] = dataclasses.field(default_factory=list)
    msg_id: int = dataclasses.field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bits < 0:
            raise ValueError("size_bits must be non-negative")

    @property
    def hop_count(self) -> int:
        """Number of hops traversed so far."""
        return len(self.hops)


@dataclasses.dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of a send: whether and when the message arrived.

    Attributes
    ----------
    delivered:
        False when the message was dropped (loss, partition, dead node).
    time:
        Virtual arrival time (or drop time).
    hops:
        Hops traversed (including the failed hop for drops).
    energy_j:
        Total radio energy charged across all nodes for this message.
    reason:
        For drops: ``"loss"``, ``"no-route"``, ``"dead-node"``,
        ``"dead-source"``.
    """

    delivered: bool
    time: float
    hops: int
    energy_j: float
    reason: str = ""
