"""Wireless/pervasive network substrate.

This package simulates the "country roads" of the pervasive grid (the
paper's phrase): ad-hoc, short-range wireless networks connecting sensors,
handhelds and base stations.  The paper used GloMoSim for exactly this
purpose; we provide an equivalent discrete-event substrate:

* :mod:`~repro.network.geometry` -- vectorized positions/distances.
* :mod:`~repro.network.topology` -- unit-disc connectivity graph over node
  positions, neighbor queries, dynamic recomputation under mobility.
* :mod:`~repro.network.mobility` -- static placement and random-waypoint
  mobility.
* :mod:`~repro.network.radio` -- the first-order radio energy model
  (Heinzelman et al.), link bandwidth/latency/loss.
* :mod:`~repro.network.energy` -- per-node batteries.
* :mod:`~repro.network.message` -- messages and delivery receipts.
* :mod:`~repro.network.network` -- :class:`WirelessNetwork`, the façade
  that delivers messages hop-by-hop with latency, loss, energy accounting
  and disconnection churn.
* :mod:`~repro.network.routing` -- flooding, gossiping, spanning/
  aggregation trees and cluster formation (the routing techniques §4 of
  the paper names).
"""

from repro.network.geometry import pairwise_distances, distance, PopulationTooLarge
from repro.network.spatial import GridHashIndex
from repro.network.energy import Battery, BatteryBank, BatteryView, RadioEnergyModel
from repro.network.radio import RadioModel
from repro.network.message import Message, DeliveryReceipt
from repro.network.topology import Topology
from repro.network.mobility import StaticPlacement, RandomWaypoint, grid_positions, random_positions
from repro.network.network import WirelessNetwork, NetworkNode, record_route_cache_metrics

__all__ = [
    "pairwise_distances",
    "distance",
    "PopulationTooLarge",
    "GridHashIndex",
    "Battery",
    "BatteryBank",
    "BatteryView",
    "RadioEnergyModel",
    "RadioModel",
    "Message",
    "DeliveryReceipt",
    "Topology",
    "StaticPlacement",
    "RandomWaypoint",
    "grid_positions",
    "random_positions",
    "WirelessNetwork",
    "NetworkNode",
    "record_route_cache_metrics",
]
