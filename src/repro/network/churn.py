"""Node availability churn.

"Services may be coming up and going down frequently in those
environments." (§3)  :class:`ChurnProcess` toggles a set of nodes between
up and down with exponentially distributed on/off durations, driving both
the topology (dead nodes stop relaying) and any registered listeners
(e.g. service registries that must drop a host's advertisements).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.simkernel import Simulator
from repro.network.topology import Topology


class ChurnProcess:
    """Exponential on/off availability churn for a set of nodes.

    Parameters
    ----------
    sim, topology:
        The shared simulator and the topology to toggle.
    nodes:
        Node ids subject to churn (e.g. the short-lived mobile service
        hosts; base stations and grid gateways are normally excluded).
    mean_up_s / mean_down_s:
        Mean sojourn times of the up and down states.
    rng:
        Random stream (named, for reproducibility).
    on_change:
        Optional callback ``(node_id, up: bool) -> None`` fired after each
        transition -- registries subscribe here.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        nodes: typing.Iterable[int],
        rng: np.random.Generator,
        mean_up_s: float = 100.0,
        mean_down_s: float = 20.0,
        on_change: typing.Callable[[int, bool], None] | None = None,
    ) -> None:
        if mean_up_s <= 0 or mean_down_s <= 0:
            raise ValueError("mean sojourn times must be positive")
        self.sim = sim
        self.topology = topology
        self.nodes = sorted(set(nodes))
        self.rng = rng
        self.mean_up_s = mean_up_s
        self.mean_down_s = mean_down_s
        self.on_change = on_change
        self.transitions = 0
        self._started = False

    @property
    def availability(self) -> float:
        """Long-run fraction of time a churned node is up."""
        return self.mean_up_s / (self.mean_up_s + self.mean_down_s)

    def start(self) -> None:
        """Schedule the first down-transition for every churned node."""
        if self._started:
            raise RuntimeError("ChurnProcess already started")
        self._started = True
        for node in self.nodes:
            self._schedule_down(node)

    def _schedule_down(self, node: int) -> None:
        delay = float(self.rng.exponential(self.mean_up_s))
        self.sim.schedule(delay, lambda: self._go_down(node), label=f"churn-down:{node}")

    def _go_down(self, node: int) -> None:
        if self.topology.is_alive(node):
            self.topology.kill(node)
            self.transitions += 1
            if self.on_change is not None:
                self.on_change(node, False)
        delay = float(self.rng.exponential(self.mean_down_s))
        self.sim.schedule(delay, lambda: self._go_up(node), label=f"churn-up:{node}")

    def _go_up(self, node: int) -> None:
        if not self.topology.is_alive(node):
            self.topology.revive(node)
            self.transitions += 1
            if self.on_change is not None:
                self.on_change(node, True)
        self._schedule_down(node)
