"""Node placement and mobility models.

The paper stresses "dynamic network topologies" and "extreme variability"
as the qualitative difference from fixed-grid computing.  We provide:

* :func:`grid_positions` / :func:`random_positions` -- initial placement.
* :class:`StaticPlacement` -- no movement (building-embedded sensors).
* :class:`RandomWaypoint` -- the standard ad-hoc mobility model, used for
  handhelds, field units and mobile service hosts.

Mobility models advance in fixed ticks driven by the simulator; each tick
updates all positions vectorized and pushes them into the
:class:`~repro.network.topology.Topology` in one call.
"""

from __future__ import annotations

import numpy as np

from repro.simkernel import Simulator
from repro.network.topology import Topology


def grid_positions(n: int, area_m: float) -> np.ndarray:
    """Place ``n`` nodes on a near-square lattice filling ``area_m``².

    Used for building-embedded sensor deployments; deterministic.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    side = int(np.ceil(np.sqrt(n)))
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)[:n]
    if side > 1:
        pts *= area_m / (side - 1)
    else:
        pts[:] = area_m / 2.0
    return pts


def random_positions(n: int, area_m: float, rng: np.random.Generator) -> np.ndarray:
    """Place ``n`` nodes uniformly at random in the square ``[0, area_m]²``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return rng.uniform(0.0, area_m, size=(n, 2))


class StaticPlacement:
    """A mobility model that never moves anything (embedded sensors)."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def start(self, sim: Simulator) -> None:
        """No-op; present for interface symmetry with mobile models."""


class RandomWaypoint:
    """Random-waypoint mobility over a square area.

    Each mobile node picks a uniform destination and a uniform speed in
    ``[speed_min, speed_max]``, travels straight to it, pauses
    ``pause_s``, then repeats.  Positions are integrated in discrete ticks
    of ``tick_s`` seconds; all node updates in a tick are one vectorized
    pass.

    Parameters
    ----------
    topology:
        The topology whose nodes move.
    mobile_nodes:
        Ids of the nodes this model controls (others stay put).
    area_m:
        Side of the square arena.
    speed_min, speed_max:
        Speed range, m/s.
    pause_s:
        Pause at each waypoint, seconds.
    tick_s:
        Integration step, seconds.
    rng:
        Random source (from a named stream for reproducibility).
    """

    def __init__(
        self,
        topology: Topology,
        mobile_nodes: list[int],
        area_m: float,
        rng: np.random.Generator,
        speed_min: float = 0.5,
        speed_max: float = 2.0,
        pause_s: float = 5.0,
        tick_s: float = 1.0,
    ) -> None:
        if speed_min <= 0 or speed_max < speed_min:
            raise ValueError("require 0 < speed_min <= speed_max")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self.topology = topology
        self.mobile_nodes = np.asarray(sorted(mobile_nodes), dtype=np.intp)
        self.area_m = float(area_m)
        self.rng = rng
        self.speed_min = speed_min
        self.speed_max = speed_max
        self.pause_s = pause_s
        self.tick_s = tick_s
        m = len(self.mobile_nodes)
        self._targets = rng.uniform(0.0, area_m, size=(m, 2))
        self._speeds = rng.uniform(speed_min, speed_max, size=m)
        self._pause_left = np.zeros(m)
        self.ticks = 0

    def start(self, sim: Simulator) -> None:
        """Begin ticking on ``sim`` until the simulation ends."""
        sim.schedule(self.tick_s, lambda: self._tick(sim), label="mobility-tick")

    def _tick(self, sim: Simulator) -> None:
        self.step(self.tick_s)
        sim.schedule(self.tick_s, lambda: self._tick(sim), label="mobility-tick")

    def step(self, dt: float) -> None:
        """Advance all mobile nodes by ``dt`` seconds (vectorized)."""
        if len(self.mobile_nodes) == 0:
            return
        pos = self.topology.positions[self.mobile_nodes].copy()

        pausing = self._pause_left > 0.0
        self._pause_left[pausing] = np.maximum(self._pause_left[pausing] - dt, 0.0)

        moving = ~pausing
        if moving.any():
            delta = self._targets[moving] - pos[moving]
            dist = np.hypot(delta[:, 0], delta[:, 1])
            step = self._speeds[moving] * dt
            arrive = step >= dist

            # Nodes that arrive snap to target, start pausing, pick new waypoint.
            arrived_idx = np.flatnonzero(moving)[arrive]
            pos[arrived_idx] = self._targets[arrived_idx]
            self._pause_left[arrived_idx] = self.pause_s
            n_arrived = len(arrived_idx)
            if n_arrived:
                self._targets[arrived_idx] = self.rng.uniform(0.0, self.area_m, size=(n_arrived, 2))
                self._speeds[arrived_idx] = self.rng.uniform(self.speed_min, self.speed_max, size=n_arrived)

            # Nodes still travelling move along the unit direction.
            going_idx = np.flatnonzero(moving)[~arrive]
            if len(going_idx):
                d = dist[~arrive]
                unit = delta[~arrive] / d[:, None]
                pos[going_idx] += unit * (self._speeds[going_idx] * dt)[:, None]

        full = self.topology.positions.copy()
        full[self.mobile_nodes] = pos
        self.topology.move_all(full)
        self.ticks += 1
