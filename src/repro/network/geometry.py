"""Vectorized geometry helpers.

All positions in the substrate are ``(n, 2)`` float64 arrays in metres.
Distance computations are the inner loop of topology recomputation under
mobility, so they are fully vectorized (HPC guide: no Python loops on the
hot path, broadcast instead).

Scale guard: the dense ``(n, n)`` forms materialize O(n^2) floats -- at
100k nodes that is an 80 GB matrix plus temporaries.  The dense helpers
therefore refuse populations above an explicit threshold with a pointer
to the :class:`~repro.network.spatial.GridHashIndex` path (which
:class:`~repro.network.topology.Topology` selects automatically); the
block-wise evaluation below keeps the *temporaries* flat even for the
sizes that are allowed.
"""

from __future__ import annotations

import numpy as np

#: Largest population for which a dense (n, n) float64 distance matrix may
#: be materialized (~1.2 GB at the limit).  Above this, use the spatial
#: index (``Topology(index="grid")`` / ``repro.network.spatial``).
PAIRWISE_MAX_N = 12_000

#: Largest population for a dense (n, n) boolean adjacency (~1 GB at the
#: limit; the matrix is bytes, not float64, so the cap is higher).
ADJACENCY_MAX_N = 32_768

#: Target element budget per block of the block-wise distance evaluation
#: (keeps peak temporary memory ~256 MB regardless of n).
_BLOCK_ELEMENTS = 16 * 2**20


class PopulationTooLarge(ValueError):
    """A dense O(n^2) geometry helper was asked for an unsafe population."""

    def __init__(self, what: str, n: int, limit: int) -> None:
        super().__init__(
            f"{what} would materialize an O(n^2) array for n={n} (> {limit}); "
            f"at this scale use the grid-hash spatial index instead "
            f"(repro.network.spatial.GridHashIndex, or Topology(index='grid') "
            f"which large topologies select automatically)"
        )
        self.n = n
        self.limit = limit


def as_positions(positions: np.ndarray | list) -> np.ndarray:
    """Coerce to a float64 ``(n, 2)`` array, validating the shape."""
    arr = np.asarray(positions, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {arr.shape}")
    return arr


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 2-D points."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def pairwise_distances(positions: np.ndarray, *, max_n: int = PAIRWISE_MAX_N) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix.

    The direct ``hypot(dx, dy)`` form is used rather than the Gram-matrix
    identity because the latter suffers catastrophic cancellation near the
    diagonal (errors ~1e-7 m), which breaks exact-adjacency tests.  Rows
    are evaluated in blocks so peak temporary memory stays flat instead of
    growing as the ``(n, n, 2)`` broadcast would.

    Raises
    ------
    PopulationTooLarge
        When ``n > max_n`` (default :data:`PAIRWISE_MAX_N`): the result
        alone would be gigabytes; large-n callers belong on the spatial
        index, which never materializes O(n^2) state.
    """
    pos = as_positions(positions)
    n = len(pos)
    if n > max_n:
        raise PopulationTooLarge("pairwise_distances", n, max_n)
    out = np.empty((n, n), dtype=np.float64)
    for start, stop in _row_blocks(n):
        delta = pos[start:stop, None, :] - pos[None, :, :]
        np.hypot(delta[..., 0], delta[..., 1], out=out[start:stop])
    return out


def distances_from(positions: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Distances from every position to one ``point`` (vectorized)."""
    pos = as_positions(positions)
    delta = pos - np.asarray(point, dtype=np.float64)[None, :]
    return np.hypot(delta[:, 0], delta[:, 1])


def neighbors_within(positions: np.ndarray, radius: float,
                     *, max_n: int = ADJACENCY_MAX_N) -> np.ndarray:
    """Boolean ``(n, n)`` adjacency under the unit-disc model.

    ``adj[i, j]`` is True iff ``dist(i, j) <= radius`` and ``i != j`` (no
    self-loops).  Row blocks keep float64 temporaries flat; every element
    goes through the same ``np.hypot`` as :func:`pairwise_distances`, so
    results are bit-identical to thresholding that matrix.

    Raises
    ------
    PopulationTooLarge
        When ``n > max_n`` (default :data:`ADJACENCY_MAX_N`).
    """
    pos = as_positions(positions)
    n = len(pos)
    if n > max_n:
        raise PopulationTooLarge("neighbors_within", n, max_n)
    adj = np.empty((n, n), dtype=bool)
    for start, stop in _row_blocks(n):
        delta = pos[start:stop, None, :] - pos[None, :, :]
        adj[start:stop] = np.hypot(delta[..., 0], delta[..., 1]) <= radius
    np.fill_diagonal(adj, False)
    return adj


def _row_blocks(n: int):
    """Yield ``(start, stop)`` row ranges sized to the temporary budget."""
    if n == 0:
        return
    rows = max(1, _BLOCK_ELEMENTS // n)
    for start in range(0, n, rows):
        yield start, min(start + rows, n)
