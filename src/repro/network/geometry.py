"""Vectorized geometry helpers.

All positions in the substrate are ``(n, 2)`` float64 arrays in metres.
Distance computations are the inner loop of topology recomputation under
mobility, so they are fully vectorized (HPC guide: no Python loops on the
hot path, broadcast instead).
"""

from __future__ import annotations

import numpy as np


def as_positions(positions: np.ndarray | list) -> np.ndarray:
    """Coerce to a float64 ``(n, 2)`` array, validating the shape."""
    arr = np.asarray(positions, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {arr.shape}")
    return arr


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 2-D points."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix via broadcasting.

    The direct ``hypot(dx, dy)`` form is used rather than the Gram-matrix
    identity because the latter suffers catastrophic cancellation near the
    diagonal (errors ~1e-7 m), which breaks exact-adjacency tests.  At the
    scales of the paper's scenarios (n <= a few hundred) the (n, n, 2)
    temporary is negligible.
    """
    pos = as_positions(positions)
    delta = pos[:, None, :] - pos[None, :, :]
    return np.hypot(delta[..., 0], delta[..., 1])


def distances_from(positions: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Distances from every position to one ``point`` (vectorized)."""
    pos = as_positions(positions)
    delta = pos - np.asarray(point, dtype=np.float64)[None, :]
    return np.hypot(delta[:, 0], delta[:, 1])


def neighbors_within(positions: np.ndarray, radius: float) -> np.ndarray:
    """Boolean ``(n, n)`` adjacency under the unit-disc model.

    ``adj[i, j]`` is True iff ``0 < dist(i, j) <= radius`` (no self-loops).
    """
    d = pairwise_distances(positions)
    adj = d <= radius
    np.fill_diagonal(adj, False)
    return adj
