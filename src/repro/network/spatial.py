"""Uniform grid-hash spatial index for radio-neighborhood queries.

At smartdust scale the dense ``(n, n)`` distance pass in
:mod:`repro.network.geometry` is the topology bottleneck: every mobility
tick pays O(n^2) floats and O(n^2) bytes.  A unit-disc neighborhood query
only ever needs the points within ``radius``, so :class:`GridHashIndex`
buckets nodes into square cells of side ``radius``; any disc of that
radius is covered by the 3x3 block of cells around its centre, making a
neighbor query O(density) instead of O(n) and a full recompute under
mobility O(moved) instead of O(n^2).

Exactness: candidates gathered from the 3x3 block are filtered with the
same ``np.hypot`` float computation the dense path uses, so the surviving
neighbor set is *bit-identical* to a row of
:func:`repro.network.geometry.neighbors_within` -- proven by the fuzz
tests in ``tests/network/test_spatial_index.py``.  The cell hash uses
``floor(coord / cell)`` on float64; a point exactly on a cell boundary
lands in the higher cell, and since membership is only ever used to
*over*-approximate the disc (the exact filter runs afterwards), boundary
rounding cannot change results.
"""

from __future__ import annotations

import numpy as np


class GridHashIndex:
    """Spatial hash over ``(n, 2)`` positions with cell size = query radius.

    Parameters
    ----------
    positions:
        Initial ``(n, 2)`` float64 positions (the index keeps its own
        copy of the *cell coordinates*, not the positions; callers pass
        current positions into queries).
    radius:
        Query radius; also the cell side.  One index serves one radius.

    Notes
    -----
    The index stores every node, dead or alive -- liveness is a property
    of the topology, filtered at query time.  Cells are dict entries
    mapping ``(cx, cy)`` to a Python list of node ids; lists stay in
    insertion order, and queries sort the final id array, so results are
    deterministic regardless of update history.
    """

    __slots__ = ("radius", "_cell", "_cells", "_coords", "moves_applied")

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = float(radius)
        self._cell = float(radius)
        self._cells: dict[tuple[int, int], list[int]] = {}
        self._coords: np.ndarray = np.empty((0, 2), dtype=np.int64)
        #: Incremental single/bulk moves applied since construction
        #: (observability: the work a dense recompute would have re-done).
        self.moves_applied = 0
        self.rebuild(positions)

    # ------------------------------------------------------------------
    # construction / updates
    # ------------------------------------------------------------------
    def _cell_coords(self, positions: np.ndarray) -> np.ndarray:
        return np.floor(positions / self._cell).astype(np.int64)

    def rebuild(self, positions: np.ndarray) -> None:
        """Re-hash every node (used at construction and bulk resets)."""
        coords = self._cell_coords(np.asarray(positions, dtype=np.float64))
        cells: dict[tuple[int, int], list[int]] = {}
        for i, (cx, cy) in enumerate(map(tuple, coords)):
            cells.setdefault((int(cx), int(cy)), []).append(i)
        self._cells = cells
        self._coords = coords

    def move(self, node: int, new_position: np.ndarray) -> None:
        """Re-bucket one node after a position change (O(cell size))."""
        new = np.floor(np.asarray(new_position, dtype=np.float64) / self._cell).astype(np.int64)
        old = self._coords[node]
        if new[0] == old[0] and new[1] == old[1]:
            return
        self._remove_from_cell((int(old[0]), int(old[1])), node)
        self._cells.setdefault((int(new[0]), int(new[1])), []).append(node)
        self._coords[node] = new
        self.moves_applied += 1

    def move_all(self, positions: np.ndarray) -> int:
        """Re-bucket only the nodes whose cell changed; returns how many."""
        coords = self._cell_coords(np.asarray(positions, dtype=np.float64))
        changed = np.flatnonzero((coords != self._coords).any(axis=1))
        for i in changed:
            i = int(i)
            old = self._coords[i]
            self._remove_from_cell((int(old[0]), int(old[1])), i)
            cx, cy = int(coords[i, 0]), int(coords[i, 1])
            self._cells.setdefault((cx, cy), []).append(i)
        self._coords = coords
        self.moves_applied += len(changed)
        return len(changed)

    def _remove_from_cell(self, key: tuple[int, int], node: int) -> None:
        bucket = self._cells[key]
        bucket.remove(node)
        if not bucket:
            del self._cells[key]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def candidates_near(self, node: int) -> np.ndarray:
        """Ids in the 3x3 cell block around ``node`` (self excluded).

        A superset of the true disc neighborhood; callers apply the exact
        distance filter.  Unsorted (callers sort after filtering).
        """
        cx, cy = int(self._coords[node, 0]), int(self._coords[node, 1])
        cells = self._cells
        out: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if bucket:
                    out.extend(bucket)
        ids = np.asarray(out, dtype=np.intp)
        return ids[ids != node]

    def candidates_at(self, point: np.ndarray) -> np.ndarray:
        """Ids in the 3x3 cell block around an arbitrary point."""
        point = np.asarray(point, dtype=np.float64)
        cx = int(np.floor(point[0] / self._cell))
        cy = int(np.floor(point[1] / self._cell))
        cells = self._cells
        out: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if bucket:
                    out.extend(bucket)
        return np.asarray(out, dtype=np.intp)

    def neighbors_within(self, node: int, positions: np.ndarray) -> np.ndarray:
        """Exact unit-disc neighbors of ``node``: ``dist <= radius``, no self.

        Sorted ascending; bit-identical to the corresponding row of the
        dense :func:`~repro.network.geometry.neighbors_within` matrix.
        """
        ids = self.candidates_near(node)
        if not len(ids):
            return ids
        delta = positions[ids] - positions[node]
        dist = np.hypot(delta[:, 0], delta[:, 1])
        keep = ids[dist <= self.radius]
        keep.sort()
        return keep

    @property
    def n_cells(self) -> int:
        """Number of occupied cells (diagnostics)."""
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GridHashIndex(n={len(self._coords)}, cell={self._cell:.3g} m, "
                f"occupied={self.n_cells})")
