"""Connectivity graph over node positions.

:class:`Topology` maintains the unit-disc adjacency over the current node
positions and answers the graph queries the routing protocols need
(neighbors, shortest paths, BFS trees, connectivity).  Two interchangeable
adjacency backends sit behind one API:

* ``index="dense"`` -- the adjacency is one vectorized ``O(n^2)`` distance
  pass, recomputed wholesale when positions change.  At the paper's
  scenario scales (up to a few hundred nodes) this is cheapest and
  trivially correct.
* ``index="grid"`` -- a :class:`~repro.network.spatial.GridHashIndex`
  (cell size = radio range) answers neighbor queries in O(local density)
  and absorbs mobility *incrementally*: a ``move``/``move_all`` re-buckets
  only the nodes whose cell changed, and ``kill``/``revive`` touch no
  index state at all.  This is what lets E7-XL run 10k-100k nodes.

``index="auto"`` (the default) picks dense below
:data:`GRID_AUTO_THRESHOLD` nodes and grid above.  The two backends are
*bit-identical*: every surviving neighbor passed the same ``np.hypot``
comparison, neighbor lists are ascending, and the fuzz tests in
``tests/network/test_spatial_index.py`` drive both through the same
churn and compare every query.

Route cache
-----------
Graph queries are memoized behind the :attr:`Topology.version` generation
counter: ``kill``/``revive``/``move``/``block_links`` (mobility epochs,
battery deaths, partitions) bump the counter, and the first query at a new
generation discards every cached answer.  On an unchanged topology a
relayed hop therefore answers its route query from a dict lookup instead
of re-running BFS -- the dominant cost of E2/E3-style workloads, where
every epoch rebuilds the same aggregation tree.

Cached answers are bit-identical to uncached BFS: neighbor expansion
visits node ids in increasing order, so the parent map of a full BFS
agrees with the parent map of an early-stopped BFS on every node the
latter discovered, and path reconstruction from either yields the same
min-hop path.  Hit/miss/invalidation totals are kept on the topology
(:attr:`route_cache_hits` and friends);
:func:`repro.network.network.record_route_cache_metrics` folds them into
a :class:`~repro.simkernel.monitor.Monitor` under the canonical
``net.route_cache.*`` names.
"""

from __future__ import annotations

import collections
import typing

import numpy as np

from repro.network.geometry import (
    as_positions,
    distances_from,
    neighbors_within,
)
from repro.network.spatial import GridHashIndex

#: ``index="auto"`` switches from the dense matrix to the grid hash above
#: this many nodes (dense recompute is ~4M floats here; past that the
#: O(n^2) pass starts to dominate mobility ticks).
GRID_AUTO_THRESHOLD = 2048


class Topology:
    """Dynamic unit-disc topology.

    Parameters
    ----------
    positions:
        Initial ``(n, 2)`` node positions in metres.
    range_m:
        Communication radius of the unit-disc model.
    index:
        Adjacency backend: ``"auto"`` (default), ``"dense"``, or
        ``"grid"``.  Backends answer every query bit-identically; see the
        module docstring.
    """

    def __init__(self, positions: np.ndarray, range_m: float, *,
                 index: str = "auto") -> None:
        self._positions = as_positions(positions).copy()
        if range_m <= 0:
            raise ValueError("range_m must be positive")
        self.range_m = float(range_m)
        if index == "auto":
            index = "grid" if len(self._positions) > GRID_AUTO_THRESHOLD else "dense"
        if index not in ("dense", "grid"):
            raise ValueError(f"index must be 'auto', 'dense' or 'grid', got {index!r}")
        self.index_kind = index
        self._alive = np.ones(len(self._positions), dtype=bool)
        #: Severed links: symmetric ``(lo, hi)`` id pair -> stack depth.
        #: A dict, not an (n, n) matrix, so partitions cost O(blocked
        #: pairs) memory at any population size.
        self._blocked: dict[tuple[int, int], int] = {}
        self._adj: np.ndarray | None = None
        self._grid = GridHashIndex(self._positions, self.range_m) if index == "grid" else None
        self._version = 0
        # per-generation neighbor-list cache (grid mode; dense mode reads
        # rows straight off the cached matrix)
        self._nbr_cache: dict[int, np.ndarray] = {}
        self._nbr_cache_version = 0
        # route cache: all entries valid only for _cache_version == _version
        self._cache_version = 0
        self._path_cache: dict[tuple[int, int], list[int] | None] = {}
        self._parents_cache: dict[int, dict[int, int]] = {}
        self._hops_cache: dict[int, dict[int, int]] = {}
        self._dist_cache: dict[tuple[int, int], float] = {}
        #: Route queries (shortest path / BFS tree / hop counts) answered
        #: from the cache without running BFS.
        self.route_cache_hits = 0
        #: Route queries that ran BFS (and populated the cache).
        self.route_cache_misses = 0
        #: Times a topology change forced a non-empty cache to be discarded.
        self.route_cache_invalidations = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total number of nodes ever placed (dead ones included)."""
        return len(self._positions)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every topology change."""
        return self._version

    @property
    def positions(self) -> np.ndarray:
        """Current positions (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    def position_of(self, node: int) -> np.ndarray:
        """Position of one node (copy)."""
        return self._positions[node].copy()

    def is_alive(self, node: int) -> bool:
        """False once :meth:`kill` has been called for the node."""
        return bool(self._alive[node])

    def alive_nodes(self) -> list[int]:
        """Ids of all living nodes."""
        return [int(i) for i in np.flatnonzero(self._alive)]

    def move(self, node: int, position: np.ndarray) -> None:
        """Set one node's position (mobility models call this)."""
        self._positions[node] = np.asarray(position, dtype=np.float64)
        if self._grid is not None:
            self._grid.move(node, self._positions[node])
        self._invalidate()

    def move_all(self, positions: np.ndarray) -> None:
        """Replace all positions at once (bulk mobility step).

        Grid mode re-buckets only the nodes whose cell changed --
        incremental O(moved), not O(n^2)."""
        pos = as_positions(positions)
        if pos.shape != self._positions.shape:
            raise ValueError("positions shape mismatch")
        self._positions[:] = pos
        if self._grid is not None:
            self._grid.move_all(self._positions)
        self._invalidate()

    def kill(self, node: int) -> None:
        """Remove a node from the topology (battery death, destruction).

        Incremental in both backends: a cached dense matrix gets its row
        and column zeroed (O(n), not an O(n^2) recompute), and the grid
        index is untouched (liveness filters at query time).  Route
        caches still invalidate -- reachability changed."""
        if self._alive[node]:
            self._alive[node] = False
            if self._adj is not None:
                self._adj[node, :] = False
                self._adj[:, node] = False
                self._version += 1
            else:
                self._invalidate()

    def revive(self, node: int) -> None:
        """Bring a node back (used by disconnection churn models).

        Like :meth:`kill`, incremental: one O(n) row recompute patches a
        cached dense matrix, bit-identical to a full rebuild."""
        if not self._alive[node]:
            self._alive[node] = True
            if self._adj is not None:
                delta = self._positions - self._positions[node]
                row = np.hypot(delta[:, 0], delta[:, 1]) <= self.range_m
                row &= self._alive
                row[node] = False
                if self._blocked:
                    for (a, b) in self._blocked:
                        if a == node:
                            row[b] = False
                        elif b == node:
                            row[a] = False
                self._adj[node, :] = row
                self._adj[:, node] = row
                self._version += 1
            else:
                self._invalidate()

    @staticmethod
    def _pair(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def block_links(self, group_a: typing.Iterable[int], group_b: typing.Iterable[int]) -> None:
        """Sever every link between two node groups (network partition).

        Nodes stay alive -- only cross-group edges disappear from the
        adjacency, symmetrically.  Blocks stack: a link is usable again
        only once :meth:`unblock_links` has been called as many times as
        it was blocked (independent overlapping partitions compose).
        """
        blocked = self._blocked
        group_b = [int(n) for n in group_b]
        for a in group_a:
            a = int(a)
            for b in group_b:
                if a == b:
                    continue
                key = self._pair(a, b)
                blocked[key] = blocked.get(key, 0) + 1
        self._invalidate()

    def unblock_links(self, group_a: typing.Iterable[int], group_b: typing.Iterable[int]) -> None:
        """Restore links previously severed by :meth:`block_links`."""
        blocked = self._blocked
        group_b = [int(n) for n in group_b]
        for a in group_a:
            a = int(a)
            for b in group_b:
                if a == b:
                    continue
                key = self._pair(a, b)
                depth = blocked.get(key)
                if depth is not None:
                    if depth <= 1:
                        del blocked[key]
                    else:
                        blocked[key] = depth - 1
        self._invalidate()

    def _invalidate(self) -> None:
        self._adj = None
        self._version += 1

    def _route_cache(self) -> None:
        """Discard stale cached answers (lazy, on the next query)."""
        if self._cache_version != self._version:
            if self._path_cache or self._parents_cache or self._hops_cache or self._dist_cache:
                self.route_cache_invalidations += 1
                self._path_cache.clear()
                self._parents_cache.clear()
                self._hops_cache.clear()
                self._dist_cache.clear()
            self._cache_version = self._version

    @property
    def route_cache_stats(self) -> dict[str, int]:
        """Cumulative cache effectiveness: hits, misses, invalidations."""
        return {
            "hits": self.route_cache_hits,
            "misses": self.route_cache_misses,
            "invalidations": self.route_cache_invalidations,
        }

    # ------------------------------------------------------------------
    # adjacency & graph queries
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> np.ndarray:
        """Boolean ``(n, n)`` adjacency; dead nodes have no edges.

        In grid mode the dense matrix is assembled on demand (tests and
        small-scale callers); above the geometry module's dense cap this
        raises :class:`~repro.network.geometry.PopulationTooLarge` --
        iterate :meth:`neighbors` instead, which stays O(density).
        """
        if self._adj is None:
            adj = neighbors_within(self._positions, self.range_m)
            adj &= self._alive[:, None]
            adj &= self._alive[None, :]
            for (a, b) in self._blocked:
                adj[a, b] = False
                adj[b, a] = False
            self._adj = adj
        return self._adj

    def _neighbor_ids(self, node: int) -> np.ndarray:
        """Living neighbors of ``node``, ascending (both backends)."""
        if self._grid is None:
            return np.flatnonzero(self.adjacency[node])
        if self._nbr_cache_version != self._version:
            self._nbr_cache.clear()
            self._nbr_cache_version = self._version
        cached = self._nbr_cache.get(node)
        if cached is None:
            cached = self._grid_neighbor_ids(node)
            self._nbr_cache[node] = cached
        return cached

    def _grid_neighbor_ids(self, node: int) -> np.ndarray:
        if not self._alive[node]:
            return np.empty(0, dtype=np.intp)
        ids = self._grid.candidates_near(node)
        ids = ids[self._alive[ids]]
        if len(ids):
            delta = self._positions[ids] - self._positions[node]
            ids = ids[np.hypot(delta[:, 0], delta[:, 1]) <= self.range_m]
        if self._blocked and len(ids):
            blocked = self._blocked
            pair = self._pair
            ids = np.asarray([j for j in ids if pair(node, int(j)) not in blocked],
                             dtype=np.intp)
        ids = np.sort(ids)
        return ids

    def neighbors(self, node: int) -> list[int]:
        """Living neighbors of ``node`` within radio range."""
        return [int(i) for i in self._neighbor_ids(node)]

    def degree(self, node: int) -> int:
        """Number of living neighbors."""
        return len(self._neighbor_ids(node))

    def has_edge(self, a: int, b: int) -> bool:
        """True iff a and b are alive and within range of each other."""
        if self._grid is None:
            return bool(self.adjacency[a, b])
        if a == b or not (self._alive[a] and self._alive[b]):
            return False
        if self._blocked and self._pair(a, b) in self._blocked:
            return False
        delta = self._positions[a] - self._positions[b]
        return bool(np.hypot(delta[0], delta[1]) <= self.range_m)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (memoized per generation)."""
        self._route_cache()
        key = (a, b) if a <= b else (b, a)
        cached = self._dist_cache.get(key)
        if cached is None:
            delta = self._positions[a] - self._positions[b]
            cached = float(np.hypot(delta[0], delta[1]))
            self._dist_cache[key] = cached
        return cached

    def nearest_to(self, point: np.ndarray, alive_only: bool = True) -> int:
        """Id of the node nearest to ``point``."""
        dists = distances_from(self._positions, np.asarray(point, dtype=np.float64))
        if alive_only:
            dists = np.where(self._alive, dists, np.inf)
        return int(np.argmin(dists))

    def shortest_path(self, src: int, dst: int) -> list[int] | None:
        """Min-hop path from src to dst via BFS, or None if partitioned.

        Served from the route cache when the topology is unchanged since
        the answer was computed; a cached answer is exactly what a fresh
        BFS would return (deterministic lowest-id tie-breaking).
        """
        if src == dst:
            return [src]
        if not (self._alive[src] and self._alive[dst]):
            return None
        self._route_cache()
        key = (src, dst)
        if key in self._path_cache:
            self.route_cache_hits += 1
            cached = self._path_cache[key]
            return None if cached is None else list(cached)
        parent = self._parents_cache.get(src)
        if parent is None:
            self.route_cache_misses += 1
            parent = self._bfs_parents(src)
            self._parents_cache[src] = parent
        else:
            self.route_cache_hits += 1
        if dst not in parent:
            self._path_cache[key] = None
            return None
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        self._path_cache[key] = path
        return list(path)

    def hop_counts_from(self, root: int) -> dict[int, int]:
        """BFS hop distance from ``root`` to every reachable living node."""
        self._route_cache()
        hops = self._hops_cache.get(root)
        if hops is None:
            self.route_cache_misses += 1
            hops = {root: 0}
            frontier = collections.deque([root])
            while frontier:
                u = frontier.popleft()
                for v in self._neighbor_ids(u):
                    v = int(v)
                    if v not in hops:
                        hops[v] = hops[u] + 1
                        frontier.append(v)
            self._hops_cache[root] = hops
        else:
            self.route_cache_hits += 1
        return dict(hops)

    def bfs_tree(self, root: int) -> dict[int, int]:
        """Parent map of a min-hop spanning tree rooted at ``root``.

        The root maps to itself.  Unreachable nodes are absent.  Ties
        between candidate parents are broken by lowest node id, making the
        tree deterministic.
        """
        self._route_cache()
        parent = self._parents_cache.get(root)
        if parent is None:
            self.route_cache_misses += 1
            parent = self._bfs_parents(root)
            self._parents_cache[root] = parent
        else:
            self.route_cache_hits += 1
        tree = dict(parent)
        tree[root] = root
        return tree

    def _bfs_parents(self, root: int, stop_at: int | None = None) -> dict[int, int]:
        parent: dict[int, int] = {}
        visited = {root}
        frontier = collections.deque([root])
        while frontier:
            u = frontier.popleft()
            for v in self._neighbor_ids(u):
                v = int(v)
                if v not in visited:
                    visited.add(v)
                    parent[v] = u
                    if v == stop_at:
                        return parent
                    frontier.append(v)
        return parent

    def is_connected(self, among: typing.Iterable[int] | None = None) -> bool:
        """True iff all living nodes (or ``among``) are mutually reachable."""
        nodes = list(among) if among is not None else self.alive_nodes()
        if len(nodes) <= 1:
            return True
        reached = set(self.hop_counts_from(nodes[0]))
        return all(n in reached for n in nodes)

    def connected_component(self, node: int) -> set[int]:
        """All living nodes reachable from ``node`` (including itself)."""
        return set(self.hop_counts_from(node))
