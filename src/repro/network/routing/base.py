"""Shared result types for routing protocols."""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class DisseminationResult:
    """Outcome of pushing a message from a root to the whole network.

    Attributes
    ----------
    reached:
        Set of node ids that received the message (root included).
    messages:
        Number of radio broadcasts performed.
    energy_j:
        Total radio energy across all nodes.
    per_node_energy:
        Energy charged to each node id (length = topology.n_nodes).
    latency_s:
        Time from start until the last node received the message.
    """

    reached: set[int]
    messages: int
    energy_j: float
    per_node_energy: np.ndarray
    latency_s: float

    @property
    def coverage(self) -> float:
        """Fraction of intended nodes reached (filled in by callers)."""
        return float(len(self.reached))


@dataclasses.dataclass
class CollectionCost:
    """Cost of one convergecast round (all readings to the sink).

    Attributes
    ----------
    per_node_energy:
        Radio+CPU energy charged to each node id for this round.
    latency_s:
        Time until the sink holds the (aggregated or raw) result.
    messages:
        Point-to-point transmissions performed.
    bits_total:
        Total bits put on the air.
    participating:
        Node ids whose readings are represented at the sink.
    """

    per_node_energy: np.ndarray
    latency_s: float
    messages: int
    bits_total: float
    participating: set[int]

    @property
    def energy_j(self) -> float:
        """Total energy across all nodes."""
        return float(self.per_node_energy.sum())

    @property
    def max_node_energy_j(self) -> float:
        """Energy of the hottest node (drives network lifetime)."""
        return float(self.per_node_energy.max()) if len(self.per_node_energy) else 0.0
