"""Routing techniques for the sensor substrate.

Section 4 of the paper names the routing choices its estimates must cover:
"A particular network may use flooding technique to route data, while
another may use gossiping", plus the in-network aggregation structures
(cluster heads and aggregation trees) of TAG/LEACH.  This package
implements all four:

* :mod:`~repro.network.routing.flooding` -- blind rebroadcast dissemination.
* :mod:`~repro.network.routing.gossip` -- probabilistic forwarding.
* :mod:`~repro.network.routing.tree` -- min-hop aggregation trees and
  convergecast cost accounting (raw vs. in-network aggregated).
* :mod:`~repro.network.routing.cluster` -- LEACH-style cluster-head
  formation and two-tier collection.

Each protocol exposes both an *event-driven* execution (messages through
the :class:`~repro.network.network.WirelessNetwork`) and an *analytic*
cost function (per-node energy vector + latency) used by the dynamic
partitioner's estimators; tests assert the two agree.
"""

from repro.network.routing.base import CollectionCost, DisseminationResult
from repro.network.routing.flooding import Flooding
from repro.network.routing.gossip import Gossip
from repro.network.routing.tree import AggregationTree
from repro.network.routing.cluster import ClusterFormation

__all__ = [
    "CollectionCost",
    "DisseminationResult",
    "Flooding",
    "Gossip",
    "AggregationTree",
    "ClusterFormation",
]
