"""Flooding dissemination.

Every node that hears the message for the first time rebroadcasts it once.
Reliable and topology-oblivious, but every node transmits -- the energy
baseline that gossip and trees improve on.
"""

from __future__ import annotations


import numpy as np

from repro.network.energy import RadioEnergyModel
from repro.network.radio import RadioModel
from repro.network.routing.base import DisseminationResult
from repro.network.topology import Topology


class Flooding:
    """Analytic flooding model over a snapshot of the topology.

    The analytic form is exact for lossless radios: flooding reaches the
    whole connected component of the root, every reached node broadcasts
    once, and the last reception happens after ``eccentricity`` hop times.
    """

    def __init__(self, topology: Topology, radio: RadioModel, energy_model: RadioEnergyModel) -> None:
        self.topology = topology
        self.radio = radio
        self.energy_model = energy_model

    def disseminate(self, root: int, bits: float) -> DisseminationResult:
        """Flood ``bits`` from ``root``; return exact lossless-cost result."""
        topo = self.topology
        per_node = np.zeros(topo.n_nodes)
        hops = topo.hop_counts_from(root)
        reached = set(hops)

        tx = self.energy_model.tx_cost(bits, self.radio.range_m)
        rx = self.energy_model.rx_cost(bits)
        messages = 0
        for node in reached:
            # every reached node broadcasts exactly once...
            per_node[node] += tx
            messages += 1
            # ...and every living neighbor overhears it.
            for nbr in topo.neighbors(node):
                per_node[nbr] += rx

        eccentricity = max(hops.values()) if hops else 0
        latency = eccentricity * self.radio.hop_time(bits)
        return DisseminationResult(
            reached=reached,
            messages=messages,
            energy_j=float(per_node.sum()),
            per_node_energy=per_node,
            latency_s=latency,
        )
