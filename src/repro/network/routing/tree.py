"""Aggregation trees (TAG-style convergecast).

"Data centric routing techniques can be used to form aggregation trees in
sensor networks.  Data would be routed and aggregated through the
aggregation trees." (§4)

:class:`AggregationTree` is a min-hop spanning tree rooted at the sink.
Two convergecast modes are costed:

* **aggregated** -- each node combines its children's partial aggregates
  with its own reading and sends *one* fixed-size partial upward (TAG);
  per-level scheduling gives latency ``depth * hop_time``.
* **raw** -- no in-network combining: each node forwards every reading in
  its subtree, so a node at the root of a subtree of size ``s`` transmits
  ``s`` packets.  This is the "treat sensors as dumb data sources" mode
  whose cost the paper argues is prohibitive.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.network.energy import RadioEnergyModel
from repro.network.radio import RadioModel
from repro.network.routing.base import CollectionCost
from repro.network.topology import Topology


class AggregationTree:
    """A min-hop spanning tree over the living nodes reachable from ``root``.

    The tree is a snapshot: rebuild after topology changes (cheap -- one
    BFS).  ``parent[root] == root``.
    """

    def __init__(self, topology: Topology, root: int) -> None:
        self.topology = topology
        self.root = root
        self.parent = topology.bfs_tree(root)
        self.children: dict[int, list[int]] = collections.defaultdict(list)
        for child, par in self.parent.items():
            if child != root:
                self.children[par].append(child)
        for kids in self.children.values():
            kids.sort()
        self.depth_of: dict[int, int] = topology.hop_counts_from(root)
        # restrict to tree members (hop counts cover the same component)
        self.depth_of = {n: d for n, d in self.depth_of.items() if n in self.parent}

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """All tree members (root included), sorted."""
        return sorted(self.parent)

    @property
    def depth(self) -> int:
        """Height of the tree (0 for a root-only tree)."""
        return max(self.depth_of.values()) if self.depth_of else 0

    def subtree_sizes(self) -> dict[int, int]:
        """Number of nodes in each node's subtree (itself included)."""
        sizes = {n: 1 for n in self.parent}
        # process deepest first so children are final before parents
        for node in sorted(self.parent, key=lambda n: -self.depth_of[n]):
            if node != self.root:
                sizes[self.parent[node]] += sizes[node]
        return sizes

    def path_to_root(self, node: int) -> list[int]:
        """Tree path from ``node`` up to the root, inclusive."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    # ------------------------------------------------------------------
    # convergecast costing
    # ------------------------------------------------------------------
    def aggregated_collection(
        self,
        bits_partial: float,
        radio: RadioModel,
        energy_model: RadioEnergyModel,
        ops_per_merge: float = 10.0,
    ) -> CollectionCost:
        """Cost of one TAG-style aggregated convergecast round.

        Every non-root node transmits exactly one partial of
        ``bits_partial`` bits to its parent; parents pay reception per
        child plus a merge of ``ops_per_merge`` CPU operations per child.
        """
        topo = self.topology
        per_node = np.zeros(topo.n_nodes)
        messages = 0
        bits_total = 0.0
        for node in self.parent:
            if node == self.root:
                continue
            par = self.parent[node]
            dist = topo.distance(node, par)
            per_node[node] += energy_model.tx_cost(bits_partial, dist)
            per_node[par] += energy_model.rx_cost(bits_partial)
            per_node[par] += energy_model.cpu_cost(ops_per_merge)
            messages += 1
            bits_total += bits_partial
        latency = self.depth * radio.hop_time(bits_partial)
        return CollectionCost(
            per_node_energy=per_node,
            latency_s=latency,
            messages=messages,
            bits_total=bits_total,
            participating=set(self.parent),
        )

    def raw_collection(
        self,
        bits_reading: float,
        radio: RadioModel,
        energy_model: RadioEnergyModel,
    ) -> CollectionCost:
        """Cost of forwarding every raw reading to the root (no combining).

        A node whose subtree holds ``s`` readings transmits ``s`` packets
        to its parent.  Latency is dominated by the root's bottleneck
        inlink: the root must receive ``n - 1`` packets serially, plus the
        pipeline fill of ``depth`` hops.
        """
        topo = self.topology
        per_node = np.zeros(topo.n_nodes)
        sizes = self.subtree_sizes()
        messages = 0
        bits_total = 0.0
        for node in self.parent:
            if node == self.root:
                continue
            par = self.parent[node]
            dist = topo.distance(node, par)
            count = sizes[node]
            per_node[node] += count * energy_model.tx_cost(bits_reading, dist)
            per_node[par] += count * energy_model.rx_cost(bits_reading)
            messages += count
            bits_total += count * bits_reading
        n = len(self.parent)
        hop = radio.hop_time(bits_reading)
        latency = (max(n - 1, 0) + max(self.depth - 1, 0)) * hop
        return CollectionCost(
            per_node_energy=per_node,
            latency_s=latency,
            messages=messages,
            bits_total=bits_total,
            participating=set(self.parent),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregationTree(root={self.root}, nodes={len(self.parent)}, depth={self.depth})"
