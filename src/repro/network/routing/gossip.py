"""Gossip (probabilistic) dissemination.

Each node that hears the message forwards it to ``fanout`` randomly chosen
neighbors with probability ``forward_prob``.  Cheaper than flooding but
only probabilistically complete -- the coverage/energy tradeoff the
partitioner's estimates must account for ("A particular network may use
flooding ... while another may use gossiping").
"""

from __future__ import annotations

import collections

import numpy as np

from repro.network.energy import RadioEnergyModel
from repro.network.radio import RadioModel
from repro.network.routing.base import DisseminationResult
from repro.network.topology import Topology


class Gossip:
    """Round-based gossip over a topology snapshot.

    Parameters
    ----------
    forward_prob:
        Probability a hearing node forwards at all.
    fanout:
        Number of distinct random neighbors a forwarding node sends to
        (unicast, not broadcast -- classic push gossip).
    """

    def __init__(
        self,
        topology: Topology,
        radio: RadioModel,
        energy_model: RadioEnergyModel,
        rng: np.random.Generator,
        forward_prob: float = 0.8,
        fanout: int = 2,
    ) -> None:
        if not 0.0 < forward_prob <= 1.0:
            raise ValueError("forward_prob must be in (0, 1]")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.topology = topology
        self.radio = radio
        self.energy_model = energy_model
        self.rng = rng
        self.forward_prob = forward_prob
        self.fanout = fanout

    def disseminate(self, root: int, bits: float) -> DisseminationResult:
        """Run one gossip cascade; stochastic (draws from ``rng``)."""
        topo = self.topology
        per_node = np.zeros(topo.n_nodes)
        rx = self.energy_model.rx_cost(bits)
        hop_time = self.radio.hop_time(bits)

        reached = {root}
        frontier = collections.deque([(root, 0)])
        messages = 0
        max_round = 0
        while frontier:
            node, rnd = frontier.popleft()
            if self.rng.random() > self.forward_prob and node != root:
                continue
            neighbors = topo.neighbors(node)
            if not neighbors:
                continue
            k = min(self.fanout, len(neighbors))
            picks = self.rng.choice(len(neighbors), size=k, replace=False)
            for pick in picks:
                target = neighbors[int(pick)]
                dist = topo.distance(node, target)
                per_node[node] += self.energy_model.tx_cost(bits, dist)
                per_node[target] += rx
                messages += 1
                if target not in reached:
                    reached.add(target)
                    frontier.append((target, rnd + 1))
                    max_round = max(max_round, rnd + 1)

        return DisseminationResult(
            reached=reached,
            messages=messages,
            energy_j=float(per_node.sum()),
            per_node_energy=per_node,
            latency_s=max_round * hop_time,
        )

    def expected_coverage(self, root: int, bits: float, trials: int = 20) -> float:
        """Monte-Carlo estimate of the fraction of living nodes reached."""
        alive = len(self.topology.alive_nodes())
        if alive == 0:
            return 0.0
        total = 0
        for _ in range(trials):
            total += len(self.disseminate(root, bits).reached)
        return total / (trials * alive)
